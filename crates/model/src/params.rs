//! Network-wide parameters: latency and message size.

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of the multicast message in bytes.
///
/// The receive-send model's overheads have fixed and message-length-dependent
/// components (footnote 1 of the paper); once the message size is fixed, a
/// node's [`OverheadProfile`](crate::OverheadProfile) collapses into concrete
/// integer overheads and the size plays no further role in scheduling.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MessageSize(pub u64);

impl MessageSize {
    /// Size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Convenience constructor from kilobytes (1 KiB = 1024 bytes).
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        MessageSize(kib * 1024)
    }
}

impl fmt::Display for MessageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

/// Network-wide parameters of the receive-send model.
///
/// The model assumes a single interconnect type, so a single latency `L`
/// applies to every transmission regardless of the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetParams {
    latency: Time,
}

impl NetParams {
    /// Creates network parameters with the given latency `L` (time units).
    pub fn new(latency: u64) -> Self {
        NetParams {
            latency: Time::new(latency),
        }
    }

    /// The network latency `L` incurred by every transmission.
    #[inline]
    pub const fn latency(&self) -> Time {
        self.latency
    }

    /// A zero-latency network; useful for embedding the heterogeneous-node
    /// model, which folds latency into the per-node cost.
    pub const fn zero_latency() -> Self {
        NetParams {
            latency: Time::ZERO,
        }
    }
}

impl Default for NetParams {
    /// Latency of one time unit, matching the example of Figure 1.
    fn default() -> Self {
        NetParams::new(1)
    }
}

impl fmt::Display for NetParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L={}", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_size() {
        assert_eq!(MessageSize(2048).bytes(), 2048);
        assert_eq!(MessageSize::from_kib(2), MessageSize(2048));
        assert_eq!(MessageSize(16).to_string(), "16 B");
        assert!(MessageSize(1) < MessageSize(2));
    }

    #[test]
    fn net_params() {
        let net = NetParams::new(5);
        assert_eq!(net.latency(), Time::new(5));
        assert_eq!(NetParams::zero_latency().latency(), Time::ZERO);
        assert_eq!(NetParams::default().latency(), Time::new(1));
        assert_eq!(net.to_string(), "L=5");
    }

    #[test]
    fn serde_roundtrip() {
        let net = NetParams::new(3);
        let json = serde_json::to_string(&net).unwrap();
        let back: NetParams = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }
}
