//! Multicast problem instances.

use crate::error::ModelError;
use crate::node::{NodeId, NodeSpec};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A multicast set `S = {p_0, p_1, …, p_n}`: one source node `p_0` plus `n`
/// destination nodes, each described by its receive-send overheads.
///
/// Following the paper's convention, destinations are stored in
/// **non-decreasing order of overhead** (faster workstations first);
/// [`MulticastSet::new`] sorts its input and all node indices used elsewhere
/// in the workspace ([`NodeId`]) refer to this canonical order, with index 0
/// denoting the source.
///
/// The model assumes that the sending and receiving overheads are *directly
/// correlated* with node speed: no node may have a strictly smaller sending
/// overhead but strictly larger receiving overhead than another. Instances
/// violating this are rejected with [`ModelError::OverheadInversion`]. The
/// strict form of the paper's assumption (`o_send(p) < o_send(q)` **iff**
/// `o_recv(p) < o_recv(q)`) can additionally be checked with
/// [`MulticastSet::has_strict_correlation`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MulticastSet {
    source: NodeSpec,
    destinations: Vec<NodeSpec>,
}

impl MulticastSet {
    /// Builds a multicast set, sorting destinations into the canonical
    /// non-decreasing overhead order and validating the correlation
    /// assumption.
    pub fn new(source: NodeSpec, mut destinations: Vec<NodeSpec>) -> Result<Self, ModelError> {
        destinations.sort_by(|a, b| a.speed_cmp(b));
        let set = MulticastSet {
            source,
            destinations,
        };
        set.check_correlation()?;
        Ok(set)
    }

    /// Builds a homogeneous multicast set of `n` destinations identical to
    /// the source — the degenerate case in which the receive-send model
    /// reduces to a homogeneous overhead model.
    pub fn homogeneous(spec: NodeSpec, n: usize) -> Self {
        MulticastSet {
            source: spec,
            destinations: vec![spec; n],
        }
    }

    fn check_correlation(&self) -> Result<(), ModelError> {
        // A violation is a pair p, q with send(p) < send(q) but
        // recv(p) > recv(q). Scan nodes grouped by sending overhead in
        // increasing order; every node must receive at least as slowly as the
        // slowest receiver among strictly faster senders.
        let mut all: Vec<NodeSpec> = Vec::with_capacity(self.destinations.len() + 1);
        all.push(self.source);
        all.extend_from_slice(&self.destinations);
        all.sort_by(|a, b| a.speed_cmp(b));

        let mut max_recv_smaller_send = Time::ZERO;
        let mut i = 0;
        while i < all.len() {
            let send = all[i].send();
            let mut j = i;
            let mut group_min_recv = Time::MAX;
            let mut group_max_recv = Time::ZERO;
            while j < all.len() && all[j].send() == send {
                group_min_recv = group_min_recv.min(all[j].recv());
                group_max_recv = group_max_recv.max(all[j].recv());
                j += 1;
            }
            if i > 0 && group_min_recv < max_recv_smaller_send {
                // Find a concrete witness pair for the error message.
                let slower = all[i..j]
                    .iter()
                    .find(|s| s.recv() < max_recv_smaller_send)
                    .copied()
                    .unwrap_or(all[i]);
                let faster = all[..i]
                    .iter()
                    .filter(|s| s.send() < send)
                    .max_by_key(|s| s.recv())
                    .copied()
                    .unwrap_or(all[0]);
                if faster.send() < slower.send() && faster.recv() > slower.recv() {
                    return Err(ModelError::OverheadInversion {
                        faster: (faster.send().raw(), faster.recv().raw()),
                        slower: (slower.send().raw(), slower.recv().raw()),
                    });
                }
            }
            max_recv_smaller_send = max_recv_smaller_send.max(group_max_recv);
            i = j;
        }
        Ok(())
    }

    /// The source node `p_0`.
    #[inline]
    pub fn source(&self) -> NodeSpec {
        self.source
    }

    /// Number of destination nodes `n`.
    #[inline]
    pub fn num_destinations(&self) -> usize {
        self.destinations.len()
    }

    /// Total number of participating nodes, `n + 1`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.destinations.len() + 1
    }

    /// The `i`-th destination (0-based, i.e. `p_{i+1}` in the paper's
    /// numbering), in the canonical non-decreasing overhead order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_destinations()`.
    #[inline]
    pub fn destination(&self, i: usize) -> NodeSpec {
        self.destinations[i]
    }

    /// The destinations in canonical order.
    #[inline]
    pub fn destinations(&self) -> &[NodeSpec] {
        &self.destinations
    }

    /// Looks up a node by its [`NodeId`]: id 0 is the source, id `i ≥ 1` is
    /// the destination `p_i`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn spec(&self, id: NodeId) -> NodeSpec {
        if id.is_source() {
            self.source
        } else {
            self.destinations[id.index() - 1]
        }
    }

    /// Iterates over `(NodeId, NodeSpec)` for every participating node,
    /// source first.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, NodeSpec)> + '_ {
        std::iter::once((NodeId::SOURCE, self.source)).chain(
            self.destinations
                .iter()
                .enumerate()
                .map(|(i, &s)| (NodeId(i + 1), s)),
        )
    }

    /// Iterates over the destination ids `p_1, …, p_n` in canonical order.
    pub fn destination_ids(&self) -> impl Iterator<Item = NodeId> {
        (1..=self.destinations.len()).map(NodeId)
    }

    /// The maximum receive-send ratio `α_max` over *all* participating nodes
    /// (source included), as in Theorem 1.
    pub fn alpha_max(&self) -> f64 {
        self.iter_nodes()
            .map(|(_, s)| s.receive_send_ratio())
            .fold(f64::MIN, f64::max)
    }

    /// The minimum receive-send ratio `α_min` over all participating nodes.
    pub fn alpha_min(&self) -> f64 {
        self.iter_nodes()
            .map(|(_, s)| s.receive_send_ratio())
            .fold(f64::MAX, f64::min)
    }

    /// The receiving-overhead spread `β = max_i o_recv(p_i) − min_i
    /// o_recv(p_i)` over the **destinations**, as in Theorem 1.
    ///
    /// Returns zero for an instance with no destinations.
    pub fn beta(&self) -> Time {
        if self.destinations.is_empty() {
            return Time::ZERO;
        }
        let max = self
            .destinations
            .iter()
            .map(|s| s.recv())
            .max()
            .unwrap_or(Time::ZERO);
        let min = self
            .destinations
            .iter()
            .map(|s| s.recv())
            .min()
            .unwrap_or(Time::ZERO);
        max - min
    }

    /// Whether all participating nodes have identical overheads.
    pub fn is_homogeneous(&self) -> bool {
        self.iter_nodes().all(|(_, s)| s == self.source)
    }

    /// Whether the instance satisfies the paper's *strict* correlation
    /// assumption: `o_send(p) < o_send(q)` **iff** `o_recv(p) < o_recv(q)`
    /// for every pair of participating nodes.
    pub fn has_strict_correlation(&self) -> bool {
        let mut all: Vec<NodeSpec> = self.iter_nodes().map(|(_, s)| s).collect();
        all.sort_by(|a, b| a.speed_cmp(b));
        all.windows(2).all(|w| {
            let (a, b) = (w[0], w[1]);
            // Sorted by (send, recv): strict iff fails only when sends are
            // equal but recvs differ, or sends differ but recvs are equal.
            if a.send() == b.send() {
                a.recv() == b.recv()
            } else {
                a.recv() < b.recv()
            }
        })
    }

    /// Number of *distinct* node types (distinct overhead pairs) among the
    /// participating nodes — the `k` of Theorem 2.
    pub fn num_distinct_types(&self) -> usize {
        let mut all: Vec<NodeSpec> = self.iter_nodes().map(|(_, s)| s).collect();
        all.sort_by(|a, b| a.speed_cmp(b));
        all.dedup();
        all.len()
    }

    /// Returns a new multicast set containing only the destinations selected
    /// by `keep` (a predicate over the canonical destination index). The
    /// source is unchanged. Useful for building sub-multicasts in tests and
    /// experiments.
    pub fn restrict<F: FnMut(usize, NodeSpec) -> bool>(&self, mut keep: F) -> MulticastSet {
        let destinations = self
            .destinations
            .iter()
            .enumerate()
            .filter(|&(i, &s)| keep(i, s))
            .map(|(_, &s)| s)
            .collect();
        MulticastSet {
            source: self.source,
            destinations,
        }
    }
}

impl fmt::Display for MulticastSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "source {} -> [", self.source)?;
        for (i, d) in self.destinations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> MulticastSet {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        MulticastSet::new(slow, vec![slow, fast, fast, fast]).unwrap()
    }

    #[test]
    fn destinations_are_sorted() {
        let set = figure1();
        assert_eq!(set.num_destinations(), 4);
        assert_eq!(set.num_nodes(), 5);
        assert_eq!(set.destination(0), NodeSpec::new(1, 1));
        assert_eq!(set.destination(3), NodeSpec::new(2, 3));
        // NodeId access: 0 = source, 1..=4 destinations.
        assert_eq!(set.spec(NodeId(0)), NodeSpec::new(2, 3));
        assert_eq!(set.spec(NodeId(1)), NodeSpec::new(1, 1));
        assert_eq!(set.spec(NodeId(4)), NodeSpec::new(2, 3));
    }

    #[test]
    fn iteration_orders() {
        let set = figure1();
        let ids: Vec<usize> = set.iter_nodes().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        let dest_ids: Vec<usize> = set.destination_ids().map(|id| id.index()).collect();
        assert_eq!(dest_ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn alpha_and_beta() {
        let set = figure1();
        // Fast nodes: ratio 1. Slow nodes: ratio 1.5.
        assert!((set.alpha_max() - 1.5).abs() < 1e-12);
        assert!((set.alpha_min() - 1.0).abs() < 1e-12);
        // Destination receive overheads are {1,1,1,3}; spread is 2.
        assert_eq!(set.beta(), Time::new(2));
    }

    #[test]
    fn inversion_is_rejected() {
        // (1, 9) sends faster than (2, 3) but receives slower: inversion.
        let err = MulticastSet::new(
            NodeSpec::new(1, 1),
            vec![NodeSpec::new(1, 9), NodeSpec::new(2, 3)],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::OverheadInversion { .. }));
    }

    #[test]
    fn inversion_involving_source_is_rejected() {
        let err = MulticastSet::new(NodeSpec::new(1, 9), vec![NodeSpec::new(2, 3)]).unwrap_err();
        assert!(matches!(err, ModelError::OverheadInversion { .. }));
    }

    #[test]
    fn weak_monotonicity_is_accepted() {
        // Same send overhead, different recv overheads: allowed by the weak
        // check but not by the strict correlation assumption.
        let set = MulticastSet::new(
            NodeSpec::new(1, 1),
            vec![NodeSpec::new(2, 3), NodeSpec::new(2, 4)],
        )
        .unwrap();
        assert!(!set.has_strict_correlation());

        let strict = figure1();
        assert!(strict.has_strict_correlation());
    }

    #[test]
    fn homogeneous_and_types() {
        let homo = MulticastSet::homogeneous(NodeSpec::new(3, 4), 5);
        assert!(homo.is_homogeneous());
        assert_eq!(homo.num_distinct_types(), 1);
        assert_eq!(homo.beta(), Time::ZERO);

        let set = figure1();
        assert!(!set.is_homogeneous());
        assert_eq!(set.num_distinct_types(), 2);
    }

    #[test]
    fn empty_destination_list() {
        let set = MulticastSet::new(NodeSpec::new(2, 2), vec![]).unwrap();
        assert_eq!(set.num_destinations(), 0);
        assert_eq!(set.beta(), Time::ZERO);
        assert!(set.is_homogeneous());
    }

    #[test]
    fn restrict_keeps_source_and_filters_destinations() {
        let set = figure1();
        let fast_only = set.restrict(|_, s| s.send() == Time::new(1));
        assert_eq!(fast_only.num_destinations(), 3);
        assert_eq!(fast_only.source(), NodeSpec::new(2, 3));
        let none = set.restrict(|_, _| false);
        assert_eq!(none.num_destinations(), 0);
    }

    #[test]
    fn display_and_serde() {
        let set = figure1();
        let text = set.to_string();
        assert!(text.starts_with("source (send=2, recv=3) -> ["));
        let json = serde_json::to_string(&set).unwrap();
        let back: MulticastSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}
