//! # hnow-model
//!
//! Parameterized communication models and problem instances for multicast
//! scheduling in **heterogeneous networks of workstations** (HNOWs), as used
//! by Libeskind-Hadas and Hartline, *"Efficient Multicast in Heterogeneous
//! Networks of Workstations"*, ICPP Workshop on Network-Based Computing,
//! 2000.
//!
//! The central abstraction is the **heterogeneous receive-send model** of
//! Banikazemi et al.: every node `p` has a *sending overhead*
//! [`NodeSpec::send`] and a *receiving overhead* [`NodeSpec::recv`], and every
//! transmission additionally incurs the global network latency
//! [`NetParams::latency`]. While a node incurs a send or receive overhead it
//! cannot perform any other communication.
//!
//! A multicast problem instance is a [`MulticastSet`]: one source node plus a
//! list of destination nodes, kept in the canonical non-decreasing overhead
//! order that the paper's algorithms assume. Limited-heterogeneity instances
//! (a fixed number `k` of workstation *types*) are described by
//! [`ClassTable`] and [`TypedMulticast`].
//!
//! The [`models`] module additionally provides the reference models that the
//! paper positions itself against (the heterogeneous-node model, the one-port
//! model, the postal model and LogP), each of which can be converted into a
//! receive-send instance so that the scheduling algorithms in `hnow-core` can
//! be exercised uniformly.
//!
//! ## Quick example
//!
//! ```
//! use hnow_model::{MulticastSet, NetParams, NodeSpec};
//!
//! // Figure 1 of the paper: slow source, three fast and one slow destination.
//! let slow = NodeSpec::new(2, 3);
//! let fast = NodeSpec::new(1, 1);
//! let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap();
//! let net = NetParams::new(1);
//!
//! assert_eq!(set.num_destinations(), 4);
//! assert_eq!(net.latency().raw(), 1);
//! // Destinations are kept sorted by non-decreasing overhead.
//! assert!(set.destination(0).send() <= set.destination(3).send());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chunk;
pub mod class;
pub mod error;
pub mod models;
pub mod multicast;
pub mod node;
pub mod overhead;
pub mod params;
pub mod time;

pub use chunk::ChunkProfile;
pub use class::{ClassTable, NodeClass, TypedMulticast};
pub use error::ModelError;
pub use multicast::MulticastSet;
pub use node::{NodeId, NodeSpec};
pub use overhead::OverheadProfile;
pub use params::{MessageSize, NetParams};
pub use time::Time;
