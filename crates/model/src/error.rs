//! Error types for instance construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A node was declared with a zero sending overhead. The paper requires
    /// positive integer sending overheads; a zero would let a node transmit
    /// infinitely fast and degenerate the scheduling problem.
    ZeroSendOverhead {
        /// Index of the offending node within the input destination list
        /// (or `usize::MAX` for the source).
        index: usize,
    },
    /// Two nodes violate the model's correlation assumption: one has a
    /// strictly smaller sending overhead but a strictly larger receiving
    /// overhead than the other, so the nodes cannot be totally ordered by
    /// "speed".
    OverheadInversion {
        /// The faster-sending node's (send, recv) overheads.
        faster: (u64, u64),
        /// The slower-sending node's (send, recv) overheads.
        slower: (u64, u64),
    },
    /// A limited-heterogeneity instance referenced a class index that does
    /// not exist in its [`ClassTable`](crate::ClassTable).
    UnknownClass {
        /// The out-of-range class index.
        class: usize,
        /// Number of classes in the table.
        num_classes: usize,
    },
    /// A class table was constructed with no classes.
    EmptyClassTable,
    /// A typed multicast's per-class destination counts had the wrong length.
    CountLengthMismatch {
        /// Length of the supplied count vector.
        got: usize,
        /// Number of classes expected.
        expected: usize,
    },
    /// An overhead profile evaluated to a zero sending overhead at the given
    /// message size.
    DegenerateProfile {
        /// Message size (bytes) at which the profile degenerated.
        message_size: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroSendOverhead { index } => {
                if *index == usize::MAX {
                    write!(f, "source node has a zero sending overhead")
                } else {
                    write!(f, "destination {index} has a zero sending overhead")
                }
            }
            ModelError::OverheadInversion { faster, slower } => write!(
                f,
                "overhead inversion: node with send overhead {} has receive overhead {} while \
                 node with larger send overhead {} has smaller receive overhead {}",
                faster.0, faster.1, slower.0, slower.1
            ),
            ModelError::UnknownClass { class, num_classes } => write!(
                f,
                "class index {class} out of range (table has {num_classes} classes)"
            ),
            ModelError::EmptyClassTable => write!(f, "class table must contain at least one class"),
            ModelError::CountLengthMismatch { got, expected } => write!(
                f,
                "per-class count vector has length {got} but the class table has {expected} classes"
            ),
            ModelError::DegenerateProfile { message_size } => write!(
                f,
                "overhead profile evaluates to a zero sending overhead at message size {message_size}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (ModelError::ZeroSendOverhead { index: 3 }, "destination 3"),
            (
                ModelError::ZeroSendOverhead { index: usize::MAX },
                "source node",
            ),
            (
                ModelError::OverheadInversion {
                    faster: (1, 9),
                    slower: (2, 3),
                },
                "inversion",
            ),
            (
                ModelError::UnknownClass {
                    class: 7,
                    num_classes: 3,
                },
                "out of range",
            ),
            (ModelError::EmptyClassTable, "at least one class"),
            (
                ModelError::CountLengthMismatch {
                    got: 2,
                    expected: 3,
                },
                "length 2",
            ),
            (
                ModelError::DegenerateProfile { message_size: 0 },
                "message size 0",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(ModelError::EmptyClassTable);
    }
}
