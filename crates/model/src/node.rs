//! Node identifiers and per-node communication parameters.

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Index of a node within a multicast set.
///
/// By convention (following the paper) index `0` is the source `p_0` and
/// indices `1..=n` are the destinations `p_1, …, p_n` in non-decreasing order
/// of overhead.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The source node `p_0`.
    pub const SOURCE: NodeId = NodeId(0);

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Whether this is the multicast source.
    #[inline]
    pub const fn is_source(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_source() {
            write!(f, "p0 (source)")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// Per-node communication parameters in the heterogeneous receive-send model.
///
/// * `send` — the sending overhead `o_send(p)`: time the node is busy when it
///   transmits the multicast message to one other node.
/// * `recv` — the receiving overhead `o_recv(p)`: time the node is busy when
///   it receives the message.
///
/// The paper assumes positive integer overheads; [`NodeSpec::new`] enforces a
/// positive sending overhead and allows a zero receiving overhead only so
/// that simpler reference models (e.g. the heterogeneous-node model, which
/// has no explicit receive cost) can be embedded — see
/// [`models`](crate::models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeSpec {
    send: Time,
    recv: Time,
}

impl NodeSpec {
    /// Creates a node specification from raw overhead values.
    ///
    /// # Panics
    ///
    /// Panics if `send == 0`; use [`NodeSpec::try_new`] for a fallible
    /// constructor.
    pub fn new(send: u64, recv: u64) -> Self {
        Self::try_new(send, recv).expect("sending overhead must be positive")
    }

    /// Fallible constructor; returns `None` if `send == 0`.
    pub fn try_new(send: u64, recv: u64) -> Option<Self> {
        if send == 0 {
            None
        } else {
            Some(NodeSpec {
                send: Time::new(send),
                recv: Time::new(recv),
            })
        }
    }

    /// The sending overhead `o_send(p)`.
    #[inline]
    pub const fn send(&self) -> Time {
        self.send
    }

    /// The receiving overhead `o_recv(p)`.
    #[inline]
    pub const fn recv(&self) -> Time {
        self.recv
    }

    /// The receive-send ratio `α = o_recv / o_send` used by Theorem 1.
    ///
    /// Published measurements place this ratio between roughly 1.05 and 1.85
    /// for real workstation clusters; the approximation bound of the greedy
    /// algorithm depends on the extremes of this ratio across a multicast
    /// set.
    #[inline]
    pub fn receive_send_ratio(&self) -> f64 {
        self.recv.as_f64() / self.send.as_f64()
    }

    /// Ordering key used to sort destinations "fast first": non-decreasing
    /// sending overhead, ties broken by receiving overhead.
    #[inline]
    pub fn speed_key(&self) -> (Time, Time) {
        (self.send, self.recv)
    }

    /// Compares two nodes by speed (faster = smaller overheads first).
    #[inline]
    pub fn speed_cmp(&self, other: &NodeSpec) -> Ordering {
        self.speed_key().cmp(&other.speed_key())
    }

    /// Whether `self` is at least as fast as `other` in *both* coordinates.
    #[inline]
    pub fn dominates(&self, other: &NodeSpec) -> bool {
        self.send <= other.send && self.recv <= other.recv
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(send={}, recv={})", self.send, self.recv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_basics() {
        assert!(NodeId::SOURCE.is_source());
        assert!(!NodeId(3).is_source());
        assert_eq!(NodeId::from(5).index(), 5);
        assert_eq!(NodeId(0).to_string(), "p0 (source)");
        assert_eq!(NodeId(4).to_string(), "p4");
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn spec_construction() {
        let s = NodeSpec::new(2, 3);
        assert_eq!(s.send(), Time::new(2));
        assert_eq!(s.recv(), Time::new(3));
        assert_eq!(NodeSpec::try_new(0, 3), None);
        assert!(NodeSpec::try_new(1, 0).is_some());
    }

    #[test]
    #[should_panic(expected = "sending overhead must be positive")]
    fn zero_send_panics() {
        let _ = NodeSpec::new(0, 1);
    }

    #[test]
    fn ratio() {
        let s = NodeSpec::new(2, 3);
        assert!((s.receive_send_ratio() - 1.5).abs() < 1e-12);
        let fast = NodeSpec::new(20, 21);
        assert!((fast.receive_send_ratio() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn speed_ordering() {
        let fast = NodeSpec::new(1, 1);
        let mid = NodeSpec::new(1, 2);
        let slow = NodeSpec::new(2, 3);
        assert_eq!(fast.speed_cmp(&slow), Ordering::Less);
        assert_eq!(fast.speed_cmp(&mid), Ordering::Less);
        assert_eq!(slow.speed_cmp(&slow), Ordering::Equal);
        assert!(fast.dominates(&slow));
        assert!(!slow.dominates(&fast));
        assert!(fast.dominates(&fast));
    }

    #[test]
    fn display_format() {
        assert_eq!(NodeSpec::new(2, 3).to_string(), "(send=2, recv=3)");
    }

    #[test]
    fn serde_roundtrip() {
        let s = NodeSpec::new(4, 7);
        let json = serde_json::to_string(&s).unwrap();
        let back: NodeSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
