//! Chunked (streaming) payload profiles.
//!
//! The paper's model sends one atomic payload per multicast; a live stream
//! instead emits a *train* of chunks through the same schedule tree, with
//! chunk `c + 1` released a fixed interval after chunk `c` and, optionally,
//! a per-chunk playout deadline. A [`ChunkProfile`] describes that train on
//! a session request; the occupancy kernel in `hnow-sim` turns it into
//! per-chunk send/receive events that share the one-port discipline (and,
//! under injected loss, per-chunk NACK/repair, so a late repair degrades
//! only that chunk).
//!
//! All fields are integers (ticks of [`crate::Time`]), so the profile — and
//! every request embedding it — stays `Eq` and hashable, and serialized
//! reports stay byte-identical per seed.

use serde::{Deserialize, Serialize};

/// How a session's payload is chunked into a streaming train.
///
/// A profile with `chunks <= 1` is the atomic single-payload session of the
/// base model: the simulator treats it exactly like a request with no
/// profile at all (pinned by byte-identity tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkProfile {
    /// Number of chunks in the train (at least 1).
    pub chunks: u32,
    /// Release interval between consecutive chunks, in time units: chunk
    /// `c` becomes available at the source at `arrival + c * interval`.
    pub interval: u64,
    /// Optional per-chunk playout deadline, in time units past the chunk's
    /// release: chunk `c` misses its deadline when its last (non-failed)
    /// member receives it after `release(c) + deadline`. Misses are
    /// reported, not enforced — the stream degrades instead of wedging.
    pub deadline: Option<u64>,
    /// Whether the source pipelines the train: with `true` (the default)
    /// the source starts sending chunk `c + 1` as soon as its own port is
    /// free and the chunk is released, overlapping it with chunk `c`'s
    /// descent; with `false` it re-sends one-shot style, waiting for the
    /// whole tree to finish chunk `c` first.
    pub pipelined: bool,
}

impl ChunkProfile {
    /// Creates a pipelined train of `chunks` chunks released every
    /// `interval` ticks, with no deadline. `chunks` is clamped to at
    /// least 1.
    pub fn new(chunks: u32, interval: u64) -> Self {
        ChunkProfile {
            chunks: chunks.max(1),
            interval,
            deadline: None,
            pipelined: true,
        }
    }

    /// Sets a per-chunk playout deadline (ticks past each chunk's release).
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Switches the train to sequential one-shot re-sends: chunk `c + 1`
    /// only starts once every member has received chunk `c` (the baseline
    /// E14 compares pipelining against).
    pub fn sequential(mut self) -> Self {
        self.pipelined = false;
        self
    }

    /// Whether this profile describes an actual multi-chunk train (the
    /// simulator's chunk machinery only engages when this is true).
    pub fn is_streaming(&self) -> bool {
        self.chunks > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_clamps_and_builds() {
        let p = ChunkProfile::new(0, 10);
        assert_eq!(p.chunks, 1);
        assert!(!p.is_streaming());
        let p = ChunkProfile::new(8, 25).with_deadline(100).sequential();
        assert_eq!(p.chunks, 8);
        assert_eq!(p.interval, 25);
        assert_eq!(p.deadline, Some(100));
        assert!(!p.pipelined);
        assert!(p.is_streaming());
    }

    #[test]
    fn profile_round_trips_through_serde() {
        let p = ChunkProfile::new(4, 50).with_deadline(200);
        let json = serde_json::to_string(&p).unwrap();
        let back: ChunkProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
