//! Integer time arithmetic.
//!
//! The paper assumes all model parameters (overheads and latency) are
//! positive integers measured in a common unit. [`Time`] is a thin newtype
//! over `u64` used both for instants (delivery/reception times) and for
//! durations (overheads, latency); mixing the two is harmless in this model
//! because every quantity is a non-negative offset from the start of the
//! multicast at time zero.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A non-negative integer instant or duration.
///
/// Arithmetic panics on overflow in debug builds (standard integer
/// semantics); the magnitudes involved in multicast scheduling (overheads of
/// at most a few thousand time units, at most a few million nodes) are far
/// below the `u64` range, and the checked constructors in the rest of the
/// workspace keep inputs small.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The instant zero (start of the multicast).
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinity" sentinel by
    /// dynamic programs and branch-and-bound searches.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a raw integer number of time units.
    #[inline]
    pub const fn new(units: u64) -> Self {
        Time(units)
    }

    /// Returns the raw number of time units.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `self` as an `f64`, for ratio computations and reporting.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition, clamping at [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Whether this is the zero instant.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(units: u64) -> Self {
        Time(units)
    }
}

impl From<u32> for Time {
    fn from(units: u32) -> Self {
        Time(u64::from(units))
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_raw_roundtrip() {
        assert_eq!(Time::new(17).raw(), 17);
        assert_eq!(Time::from(17u64), Time::new(17));
        assert_eq!(u64::from(Time::new(17)), 17);
        assert_eq!(Time::ZERO.raw(), 0);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::new(1).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(5);
        let b = Time::new(3);
        assert_eq!(a + b, Time::new(8));
        assert_eq!(a - b, Time::new(2));
        assert_eq!(a * 4, Time::new(20));
        assert_eq!(4 * a, Time::new(20));
        let mut c = a;
        c += b;
        assert_eq!(c, Time::new(8));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_and_extrema() {
        assert!(Time::new(2) < Time::new(3));
        assert_eq!(Time::new(2).max(Time::new(3)), Time::new(3));
        assert_eq!(Time::new(2).min(Time::new(3)), Time::new(2));
        assert!(Time::MAX > Time::new(u64::MAX - 1));
    }

    #[test]
    fn checked_and_saturating() {
        assert_eq!(Time::new(3).checked_sub(Time::new(5)), None);
        assert_eq!(Time::new(5).checked_sub(Time::new(3)), Some(Time::new(2)));
        assert_eq!(Time::new(3).saturating_sub(Time::new(5)), Time::ZERO);
        assert_eq!(Time::MAX.checked_add(Time::new(1)), None);
        assert_eq!(Time::MAX.saturating_add(Time::new(1)), Time::MAX);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1u64, 2, 3, 4].iter().map(|&v| Time::new(v)).sum();
        assert_eq!(total, Time::new(10));
    }

    #[test]
    fn display_and_serde() {
        assert_eq!(Time::new(42).to_string(), "42");
        let json = serde_json::to_string(&Time::new(42)).unwrap();
        assert_eq!(json, "42");
        let back: Time = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Time::new(42));
    }
}
