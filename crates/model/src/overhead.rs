//! Message-length-dependent overhead profiles.
//!
//! Footnote 1 of the paper notes that the receive-send model of Banikazemi
//! et al. has both fixed and message-length-dependent components for the
//! sending overhead, the receiving overhead and the latency. For a multicast
//! of a given message length the components are combined into single integer
//! values. [`OverheadProfile`] captures the per-node affine cost functions
//! and performs exactly that collapse.

use crate::error::ModelError;
use crate::node::NodeSpec;
use crate::params::MessageSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bytes per "payload unit" used by the per-unit cost components.
///
/// Using a kilobyte granularity keeps the evaluated integer overheads in a
/// realistic range (tens to thousands of microsecond-scale units) for message
/// sizes from a few bytes up to megabytes.
pub const BYTES_PER_UNIT: u64 = 1024;

/// Affine overhead model for a single workstation class:
/// `overhead(m) = fixed + per_unit * ceil(m / 1024)`.
///
/// All costs are expressed in the same abstract integer time unit used by
/// the rest of the workspace (think microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OverheadProfile {
    /// Fixed component of the sending overhead.
    pub send_fixed: u64,
    /// Per-KiB component of the sending overhead.
    pub send_per_unit: u64,
    /// Fixed component of the receiving overhead.
    pub recv_fixed: u64,
    /// Per-KiB component of the receiving overhead.
    pub recv_per_unit: u64,
}

impl OverheadProfile {
    /// Creates a new profile from its four affine coefficients.
    pub const fn new(
        send_fixed: u64,
        send_per_unit: u64,
        recv_fixed: u64,
        recv_per_unit: u64,
    ) -> Self {
        OverheadProfile {
            send_fixed,
            send_per_unit,
            recv_fixed,
            recv_per_unit,
        }
    }

    /// A profile with no message-length dependence: constant overheads.
    pub const fn constant(send: u64, recv: u64) -> Self {
        OverheadProfile::new(send, 0, recv, 0)
    }

    /// Number of payload units a message of `size` occupies (at least one for
    /// a non-empty message, zero for an empty one).
    fn units(size: MessageSize) -> u64 {
        size.bytes().div_ceil(BYTES_PER_UNIT)
    }

    /// Evaluates the profile at a message size, producing the concrete
    /// per-multicast overheads.
    ///
    /// Returns [`ModelError::DegenerateProfile`] if the evaluated sending
    /// overhead would be zero (e.g. an all-zero profile with an empty
    /// message), because the receive-send model requires positive sending
    /// overheads.
    pub fn at(&self, size: MessageSize) -> Result<NodeSpec, ModelError> {
        let units = Self::units(size);
        let send = self.send_fixed + self.send_per_unit * units;
        let recv = self.recv_fixed + self.recv_per_unit * units;
        NodeSpec::try_new(send, recv).ok_or(ModelError::DegenerateProfile {
            message_size: size.bytes(),
        })
    }

    /// The receive-send ratio of this profile at a given message size.
    pub fn ratio_at(&self, size: MessageSize) -> Result<f64, ModelError> {
        Ok(self.at(size)?.receive_send_ratio())
    }
}

impl fmt::Display for OverheadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "send {}+{}/KiB, recv {}+{}/KiB",
            self.send_fixed, self.send_per_unit, self.recv_fixed, self.recv_per_unit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_ignores_message_size() {
        let p = OverheadProfile::constant(2, 3);
        let small = p.at(MessageSize(1)).unwrap();
        let large = p.at(MessageSize::from_kib(512)).unwrap();
        assert_eq!(small, large);
        assert_eq!(small, NodeSpec::new(2, 3));
    }

    #[test]
    fn affine_profile_scales_with_size() {
        let p = OverheadProfile::new(10, 2, 20, 5);
        // 4 KiB => 4 units.
        let spec = p.at(MessageSize::from_kib(4)).unwrap();
        assert_eq!(spec, NodeSpec::new(10 + 8, 20 + 20));
        // 1 byte still counts as one unit.
        let spec1 = p.at(MessageSize(1)).unwrap();
        assert_eq!(spec1, NodeSpec::new(12, 25));
        // Empty message: only fixed parts.
        let spec0 = p.at(MessageSize(0)).unwrap();
        assert_eq!(spec0, NodeSpec::new(10, 20));
    }

    #[test]
    fn partial_units_round_up() {
        let p = OverheadProfile::new(0, 3, 0, 3);
        // 1500 bytes → 2 units.
        let spec = p.at(MessageSize(1500)).unwrap();
        assert_eq!(spec, NodeSpec::new(6, 6));
    }

    #[test]
    fn degenerate_profile_is_rejected() {
        let p = OverheadProfile::new(0, 0, 5, 0);
        assert_eq!(
            p.at(MessageSize(0)),
            Err(ModelError::DegenerateProfile { message_size: 0 })
        );
        // With a per-unit send component a non-empty message is fine.
        let p2 = OverheadProfile::new(0, 1, 5, 0);
        assert!(p2.at(MessageSize(10)).is_ok());
    }

    #[test]
    fn ratio_shifts_with_message_size() {
        // Receive side has a larger per-unit cost, so the ratio grows with
        // the message size — the behaviour reported for real clusters.
        let p = OverheadProfile::new(10, 1, 10, 2);
        let small = p.ratio_at(MessageSize::from_kib(1)).unwrap();
        let large = p.ratio_at(MessageSize::from_kib(100)).unwrap();
        assert!(large > small);
    }

    #[test]
    fn display() {
        let p = OverheadProfile::new(1, 2, 3, 4);
        assert_eq!(p.to_string(), "send 1+2/KiB, recv 3+4/KiB");
    }
}
