//! Workstation classes and limited-heterogeneity instances.
//!
//! Section 4 of the paper considers HNOWs with *limited heterogeneity*: an
//! arbitrary number of workstations drawn from a fixed number `k` of distinct
//! workstation **types**. [`ClassTable`] describes the available types (each
//! with a message-length-dependent [`OverheadProfile`]) and
//! [`TypedMulticast`] describes a multicast as "a source of type `s` plus
//! `i_j` destinations of type `j`", the exact state shape used by the
//! dynamic program of Theorem 2.

use crate::error::ModelError;
use crate::multicast::MulticastSet;
use crate::node::{NodeId, NodeSpec};
use crate::overhead::OverheadProfile;
use crate::params::MessageSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A workstation type: a human-readable name plus its overhead profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeClass {
    /// Descriptive name ("fast-ethernet-pc", "legacy-sparc", …).
    pub name: String,
    /// Affine overhead model of this type.
    pub profile: OverheadProfile,
}

impl NodeClass {
    /// Creates a class from a name and profile.
    pub fn new(name: impl Into<String>, profile: OverheadProfile) -> Self {
        NodeClass {
            name: name.into(),
            profile,
        }
    }

    /// Creates a class with constant (message-length-independent) overheads.
    pub fn constant(name: impl Into<String>, send: u64, recv: u64) -> Self {
        NodeClass::new(name, OverheadProfile::constant(send, recv))
    }
}

impl fmt::Display for NodeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.profile)
    }
}

/// The set of workstation types present in a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassTable {
    classes: Vec<NodeClass>,
}

impl ClassTable {
    /// Creates a table from a non-empty list of classes.
    pub fn new(classes: Vec<NodeClass>) -> Result<Self, ModelError> {
        if classes.is_empty() {
            return Err(ModelError::EmptyClassTable);
        }
        Ok(ClassTable { classes })
    }

    /// Number of distinct types, the `k` of Theorem 2.
    #[inline]
    pub fn k(&self) -> usize {
        self.classes.len()
    }

    /// The classes in declaration order.
    #[inline]
    pub fn classes(&self) -> &[NodeClass] {
        &self.classes
    }

    /// A single class by index.
    pub fn class(&self, index: usize) -> Result<&NodeClass, ModelError> {
        self.classes.get(index).ok_or(ModelError::UnknownClass {
            class: index,
            num_classes: self.classes.len(),
        })
    }

    /// Evaluates every class's profile at the given message size.
    pub fn specs_at(&self, size: MessageSize) -> Result<Vec<NodeSpec>, ModelError> {
        self.classes.iter().map(|c| c.profile.at(size)).collect()
    }
}

/// A limited-heterogeneity multicast instance: a source of class
/// `source_class` plus `counts[j]` destinations of class `j`, with the class
/// overheads already evaluated at a concrete message size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypedMulticast {
    specs: Vec<NodeSpec>,
    names: Vec<String>,
    source_class: usize,
    counts: Vec<usize>,
}

impl TypedMulticast {
    /// Creates a typed multicast directly from per-class overheads.
    pub fn new(
        specs: Vec<NodeSpec>,
        source_class: usize,
        counts: Vec<usize>,
    ) -> Result<Self, ModelError> {
        if specs.is_empty() {
            return Err(ModelError::EmptyClassTable);
        }
        if counts.len() != specs.len() {
            return Err(ModelError::CountLengthMismatch {
                got: counts.len(),
                expected: specs.len(),
            });
        }
        if source_class >= specs.len() {
            return Err(ModelError::UnknownClass {
                class: source_class,
                num_classes: specs.len(),
            });
        }
        let names = (0..specs.len()).map(|i| format!("type-{i}")).collect();
        Ok(TypedMulticast {
            specs,
            names,
            source_class,
            counts,
        })
    }

    /// Creates a typed multicast from a class table evaluated at a message
    /// size.
    pub fn from_classes(
        table: &ClassTable,
        size: MessageSize,
        source_class: usize,
        counts: Vec<usize>,
    ) -> Result<Self, ModelError> {
        let specs = table.specs_at(size)?;
        let mut typed = TypedMulticast::new(specs, source_class, counts)?;
        typed.names = table.classes().iter().map(|c| c.name.clone()).collect();
        Ok(typed)
    }

    /// Groups the destinations of an arbitrary [`MulticastSet`] into classes
    /// of identical overheads, producing the typed view used by the Theorem 2
    /// dynamic program. The source always contributes a class (possibly with
    /// zero destinations of that class).
    pub fn from_multicast_set(set: &MulticastSet) -> Self {
        let mut specs: Vec<NodeSpec> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let class_of = |spec: NodeSpec, specs: &mut Vec<NodeSpec>, counts: &mut Vec<usize>| {
            if let Some(pos) = specs.iter().position(|&s| s == spec) {
                pos
            } else {
                specs.push(spec);
                counts.push(0);
                specs.len() - 1
            }
        };
        let source_class = class_of(set.source(), &mut specs, &mut counts);
        for &d in set.destinations() {
            let c = class_of(d, &mut specs, &mut counts);
            counts[c] += 1;
        }
        let names = (0..specs.len()).map(|i| format!("type-{i}")).collect();
        TypedMulticast {
            specs,
            names,
            source_class,
            counts,
        }
    }

    /// Number of distinct types `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.specs.len()
    }

    /// The class index of the source node.
    #[inline]
    pub fn source_class(&self) -> usize {
        self.source_class
    }

    /// Per-class destination counts `i_1, …, i_k`.
    #[inline]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Overheads of class `c`.
    #[inline]
    pub fn spec_of(&self, c: usize) -> NodeSpec {
        self.specs[c]
    }

    /// All class overheads.
    #[inline]
    pub fn specs(&self) -> &[NodeSpec] {
        &self.specs
    }

    /// Class names (for reporting).
    #[inline]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Total number of destinations `n = Σ i_j`.
    #[inline]
    pub fn total_destinations(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Expands the typed instance into an explicit [`MulticastSet`].
    ///
    /// The expansion pushes destinations class by class in declaration order;
    /// because [`MulticastSet::new`] sorts stably by overhead, destinations
    /// of equal-speed classes keep their class-then-ordinal order, which is
    /// what [`TypedMulticast::node_ids_for_class`] relies on.
    pub fn to_multicast_set(&self) -> Result<MulticastSet, ModelError> {
        let mut destinations = Vec::with_capacity(self.total_destinations());
        for (c, &count) in self.counts.iter().enumerate() {
            destinations.extend(std::iter::repeat_n(self.specs[c], count));
        }
        MulticastSet::new(self.specs[self.source_class], destinations)
    }

    /// Whether this instance is in canonical class order: classes strictly
    /// increasing by overhead (no duplicate overhead pairs).
    pub fn is_canonical(&self) -> bool {
        self.specs
            .windows(2)
            .all(|w| w[0].speed_cmp(&w[1]) == std::cmp::Ordering::Less)
    }

    /// Returns the canonical form of this instance: classes sorted by
    /// overhead (fastest first) with duplicate overhead pairs merged into a
    /// single class, counts summed, and the source class remapped.
    ///
    /// Two typed instances drawn from the same physical cluster describe the
    /// same planning problem even when their classes appear in different
    /// orders (for example, [`TypedMulticast::from_multicast_set`] numbers
    /// classes by first appearance, so the source's class always comes
    /// first). Canonicalization gives all of them one signature, which is
    /// what lets a Theorem 2 DP table — and the cache holding it — be shared
    /// across every multicast over the cluster regardless of who the source
    /// is. Canonicalizing an already-canonical instance is the identity.
    pub fn canonical(&self) -> TypedMulticast {
        let mut order: Vec<usize> = (0..self.specs.len()).collect();
        order.sort_by(|&a, &b| self.specs[a].speed_cmp(&self.specs[b]));
        let mut specs: Vec<NodeSpec> = Vec::with_capacity(self.specs.len());
        let mut names: Vec<String> = Vec::with_capacity(self.specs.len());
        let mut counts: Vec<usize> = Vec::with_capacity(self.specs.len());
        let mut map = vec![0usize; self.specs.len()];
        for &old in &order {
            if specs.last() == Some(&self.specs[old]) {
                map[old] = specs.len() - 1;
                counts[specs.len() - 1] += self.counts[old];
            } else {
                map[old] = specs.len();
                specs.push(self.specs[old]);
                names.push(self.names[old].clone());
                counts.push(self.counts[old]);
            }
        }
        TypedMulticast {
            specs,
            names,
            source_class: map[self.source_class],
            counts,
        }
    }

    /// The [`NodeId`]s (in the canonical order of
    /// [`TypedMulticast::to_multicast_set`]) that belong to class `c`.
    ///
    /// Used by the dynamic program to turn its class-level schedule into a
    /// concrete schedule tree over node ids.
    pub fn node_ids_for_class(&self, class: usize) -> Vec<NodeId> {
        self.node_ids_by_class().swap_remove(class)
    }

    /// [`TypedMulticast::node_ids_for_class`] for every class at once, with
    /// a single expansion and stable sort — what per-session hot paths (the
    /// traffic engine's plan binding) should call.
    pub fn node_ids_by_class(&self) -> Vec<Vec<NodeId>> {
        // Reproduce the expansion + stable sort performed by
        // `to_multicast_set` and record where each class's copies land.
        let mut slots: Vec<(NodeSpec, usize)> = Vec::with_capacity(self.total_destinations());
        for (c, &count) in self.counts.iter().enumerate() {
            slots.extend(std::iter::repeat_n((self.specs[c], c), count));
        }
        slots.sort_by(|a, b| a.0.speed_cmp(&b.0));
        let mut by_class = vec![Vec::new(); self.specs.len()];
        for (i, &(_, c)) in slots.iter().enumerate() {
            by_class[c].push(NodeId(i + 1));
        }
        by_class
    }
}

impl fmt::Display for TypedMulticast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "source class {} -> counts {:?} over {} types",
            self.names[self.source_class],
            self.counts,
            self.k()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_classes() -> ClassTable {
        ClassTable::new(vec![
            NodeClass::constant("fast", 1, 1),
            NodeClass::constant("slow", 2, 3),
        ])
        .unwrap()
    }

    #[test]
    fn class_table_basics() {
        let table = two_classes();
        assert_eq!(table.k(), 2);
        assert_eq!(table.class(0).unwrap().name, "fast");
        assert!(matches!(
            table.class(9),
            Err(ModelError::UnknownClass { class: 9, .. })
        ));
        assert!(matches!(
            ClassTable::new(vec![]),
            Err(ModelError::EmptyClassTable)
        ));
        let specs = table.specs_at(MessageSize(0)).unwrap();
        assert_eq!(specs, vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)]);
    }

    #[test]
    fn typed_multicast_validation() {
        let specs = vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)];
        assert!(TypedMulticast::new(specs.clone(), 0, vec![1, 2]).is_ok());
        assert!(matches!(
            TypedMulticast::new(specs.clone(), 5, vec![1, 2]),
            Err(ModelError::UnknownClass { .. })
        ));
        assert!(matches!(
            TypedMulticast::new(specs.clone(), 0, vec![1]),
            Err(ModelError::CountLengthMismatch { .. })
        ));
        assert!(matches!(
            TypedMulticast::new(vec![], 0, vec![]),
            Err(ModelError::EmptyClassTable)
        ));
    }

    #[test]
    fn figure1_as_typed_instance() {
        // Slow source, three fast destinations, one slow destination.
        let typed =
            TypedMulticast::from_classes(&two_classes(), MessageSize(0), 1, vec![3, 1]).unwrap();
        assert_eq!(typed.k(), 2);
        assert_eq!(typed.total_destinations(), 4);
        let set = typed.to_multicast_set().unwrap();
        assert_eq!(set.source(), NodeSpec::new(2, 3));
        assert_eq!(set.num_destinations(), 4);
        assert_eq!(set.destination(0), NodeSpec::new(1, 1));
        assert_eq!(set.destination(3), NodeSpec::new(2, 3));
    }

    #[test]
    fn node_ids_follow_canonical_order() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            1,
            vec![3, 1],
        )
        .unwrap();
        // Fast destinations occupy ids 1..=3, the slow one id 4.
        assert_eq!(
            typed.node_ids_for_class(0),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(typed.node_ids_for_class(1), vec![NodeId(4)]);
    }

    #[test]
    fn roundtrip_from_multicast_set() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
                NodeSpec::new(4, 6),
            ],
        )
        .unwrap();
        let typed = TypedMulticast::from_multicast_set(&set);
        assert_eq!(typed.k(), 3);
        assert_eq!(typed.total_destinations(), 4);
        assert_eq!(typed.spec_of(typed.source_class()), NodeSpec::new(2, 3));
        let back = typed.to_multicast_set().unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn equal_speed_classes_keep_declaration_order() {
        // Two classes with identical overheads: ids are assigned class 0
        // first, then class 1 (stable sort).
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(1, 1)],
            0,
            vec![2, 2],
        )
        .unwrap();
        assert_eq!(typed.node_ids_for_class(0), vec![NodeId(1), NodeId(2)]);
        assert_eq!(typed.node_ids_for_class(1), vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn node_ids_by_class_matches_the_per_class_view() {
        let typed = TypedMulticast::new(
            vec![
                NodeSpec::new(2, 3),
                NodeSpec::new(1, 1),
                NodeSpec::new(4, 6),
            ],
            0,
            vec![2, 3, 1],
        )
        .unwrap();
        let all = typed.node_ids_by_class();
        assert_eq!(all.len(), typed.k());
        for (c, ids) in all.iter().enumerate() {
            assert_eq!(ids, &typed.node_ids_for_class(c));
        }
        let mut flat: Vec<usize> = all.iter().flatten().map(|id| id.index()).collect();
        flat.sort_unstable();
        assert_eq!(flat, (1..=typed.total_destinations()).collect::<Vec<_>>());
    }

    #[test]
    fn canonical_sorts_and_remaps_the_source() {
        // from_multicast_set numbers the (slow) source's class first; the
        // canonical form lists the fast class first and remaps the source.
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
            ],
        )
        .unwrap();
        let typed = TypedMulticast::from_multicast_set(&set);
        assert_eq!(typed.specs()[0], NodeSpec::new(2, 3));
        assert!(!typed.is_canonical());
        let canon = typed.canonical();
        assert!(canon.is_canonical());
        assert_eq!(canon.specs(), &[NodeSpec::new(1, 1), NodeSpec::new(2, 3)]);
        assert_eq!(canon.counts(), &[2, 1]);
        assert_eq!(canon.source_class(), 1);
        // Same planning problem: identical expanded multicast set.
        assert_eq!(canon.to_multicast_set().unwrap(), set);
        // Canonicalization is idempotent.
        assert_eq!(canon.canonical(), canon);
    }

    #[test]
    fn canonical_merges_duplicate_classes() {
        let typed = TypedMulticast::new(
            vec![
                NodeSpec::new(2, 3),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
            ],
            2,
            vec![1, 2, 4],
        )
        .unwrap();
        assert!(!typed.is_canonical());
        let canon = typed.canonical();
        assert_eq!(canon.specs(), &[NodeSpec::new(1, 1), NodeSpec::new(2, 3)]);
        assert_eq!(canon.counts(), &[2, 5]);
        assert_eq!(canon.source_class(), 1);
        assert_eq!(canon.total_destinations(), typed.total_destinations());
        assert_eq!(
            canon.to_multicast_set().unwrap(),
            typed.to_multicast_set().unwrap()
        );
    }

    #[test]
    fn two_instances_over_one_cluster_share_a_canonical_signature() {
        // Different sources, different class orderings — one signature.
        let fast = NodeSpec::new(1, 1);
        let slow = NodeSpec::new(2, 3);
        let a = TypedMulticast::from_multicast_set(
            &MulticastSet::new(slow, vec![fast, fast, slow]).unwrap(),
        );
        let b = TypedMulticast::from_multicast_set(
            &MulticastSet::new(fast, vec![fast, slow, slow]).unwrap(),
        );
        assert_ne!(a.specs(), b.specs());
        assert_eq!(a.canonical().specs(), b.canonical().specs());
    }

    #[test]
    fn display() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            1,
            vec![3, 1],
        )
        .unwrap();
        assert!(typed.to_string().contains("type-1"));
        assert!(NodeClass::constant("fast", 1, 1)
            .to_string()
            .contains("fast"));
    }
}
