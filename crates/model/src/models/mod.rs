//! Communication models.
//!
//! The workspace's scheduling algorithms all operate on the **heterogeneous
//! receive-send model** (a [`MulticastSet`] plus [`NetParams`]). This module
//! bundles that pair into an [`Instance`] and provides the reference models
//! the paper discusses in its introduction — the heterogeneous-node model of
//! Banikazemi et al. and Hall et al., the classical one-port model, the
//! postal model and LogP — each with a documented embedding into the
//! receive-send model so the same algorithms can be exercised on instances
//! originating from any of them.
//!
//! The embeddings are *faithful for scheduling purposes*: they preserve the
//! time at which a node may begin forwarding the message and the time at
//! which a destination has fully received it. Where a model leaves a
//! parameter unconstrained (e.g. the one-port model has no separate receive
//! cost), the embedding uses the neutral value and says so in its docs.

mod hetero_node;
mod logp;
mod one_port;
mod postal;

pub use hetero_node::HeteroNodeModel;
pub use logp::LogPModel;
pub use one_port::OnePortModel;
pub use postal::PostalModel;

use crate::error::ModelError;
use crate::multicast::MulticastSet;
use crate::params::NetParams;
use serde::{Deserialize, Serialize};

/// A complete receive-send multicast instance: the participating nodes plus
/// the network parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Source and destination overheads.
    pub set: MulticastSet,
    /// Network latency.
    pub net: NetParams,
}

impl Instance {
    /// Bundles a multicast set and network parameters.
    pub fn new(set: MulticastSet, net: NetParams) -> Self {
        Instance { set, net }
    }

    /// Number of destinations.
    pub fn num_destinations(&self) -> usize {
        self.set.num_destinations()
    }
}

/// A model that can be embedded into the receive-send model.
pub trait IntoReceiveSend {
    /// Produces the equivalent receive-send instance.
    fn to_instance(&self) -> Result<Instance, ModelError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    #[test]
    fn instance_bundle() {
        let set = MulticastSet::new(NodeSpec::new(1, 1), vec![NodeSpec::new(2, 3)]).unwrap();
        let inst = Instance::new(set.clone(), NetParams::new(2));
        assert_eq!(inst.num_destinations(), 1);
        assert_eq!(inst.set, set);
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }
}
