//! The homogeneous one-port model.
//!
//! Every node can take part in at most one transmission per communication
//! step, each transmission takes exactly one step, and all nodes are
//! identical — the classical setting in which binomial-tree broadcast is
//! optimal and completes in `⌈log2(n+1)⌉` steps.
//!
//! The embedding sets `o_send = step`, `o_recv = 0`, `L = 0`: a receiver
//! obtains the message at the moment the sender's step completes and can
//! immediately begin its own sends, exactly as in the one-port model.

use super::{Instance, IntoReceiveSend};
use crate::error::ModelError;
use crate::multicast::MulticastSet;
use crate::node::NodeSpec;
use crate::params::NetParams;
use serde::{Deserialize, Serialize};

/// A broadcast instance in the homogeneous one-port model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnePortModel {
    /// Number of destination nodes.
    pub destinations: usize,
    /// Duration of one communication step.
    pub step: u64,
}

impl OnePortModel {
    /// Creates a one-port instance with `destinations` receivers and the
    /// given step length.
    pub fn new(destinations: usize, step: u64) -> Self {
        OnePortModel { destinations, step }
    }

    /// The optimal broadcast completion time in this model:
    /// `⌈log2(n+1)⌉ · step` (binomial tree).
    pub fn optimal_completion(&self) -> u64 {
        let total = self.destinations as u64 + 1;
        let rounds = 64 - (total - 1).leading_zeros() as u64;
        rounds * self.step
    }
}

impl IntoReceiveSend for OnePortModel {
    fn to_instance(&self) -> Result<Instance, ModelError> {
        let spec = NodeSpec::try_new(self.step, 0)
            .ok_or(ModelError::ZeroSendOverhead { index: usize::MAX })?;
        Ok(Instance::new(
            MulticastSet::homogeneous(spec, self.destinations),
            NetParams::zero_latency(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding() {
        let m = OnePortModel::new(7, 2);
        let inst = m.to_instance().unwrap();
        assert_eq!(inst.set.num_destinations(), 7);
        assert!(inst.set.is_homogeneous());
        assert_eq!(inst.set.source(), NodeSpec::new(2, 0));
    }

    #[test]
    fn optimal_completion_is_log_rounds() {
        // 7 destinations + source = 8 nodes → 3 rounds.
        assert_eq!(OnePortModel::new(7, 1).optimal_completion(), 3);
        assert_eq!(OnePortModel::new(7, 5).optimal_completion(), 15);
        // 8 destinations + source = 9 nodes → 4 rounds.
        assert_eq!(OnePortModel::new(8, 1).optimal_completion(), 4);
        // Single destination → 1 round.
        assert_eq!(OnePortModel::new(1, 1).optimal_completion(), 1);
        // No destinations → 0 rounds.
        assert_eq!(OnePortModel::new(0, 1).optimal_completion(), 0);
    }

    #[test]
    fn zero_step_is_rejected() {
        assert!(OnePortModel::new(3, 0).to_instance().is_err());
    }
}
