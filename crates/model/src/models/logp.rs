//! The LogP model of Culler et al. (1993).
//!
//! LogP characterises a homogeneous machine by the network latency `L`, the
//! per-message processor overhead `o` (paid on both send and receive), the
//! gap `g` (minimum interval between consecutive sends of one processor) and
//! the processor count `P`.
//!
//! The embedding into the receive-send model is the standard one used when
//! comparing single-message broadcast algorithms: the sender is occupied
//! `max(o, g)` per transmission (it cannot start the next send before the
//! gap has elapsed), the receiver is occupied `o`, and the wire latency is
//! `L`. For a single short message this reproduces LogP's arrival times
//! exactly when `g ≤ o`, and is the usual conservative approximation when
//! `g > o` (the receive overhead is still `o`, but back-to-back sends are
//! spaced by `g`).

use super::{Instance, IntoReceiveSend};
use crate::error::ModelError;
use crate::multicast::MulticastSet;
use crate::node::NodeSpec;
use crate::params::NetParams;
use serde::{Deserialize, Serialize};

/// A broadcast instance in the LogP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogPModel {
    /// Wire latency `L`.
    pub latency: u64,
    /// Per-message processor overhead `o`.
    pub overhead: u64,
    /// Gap `g` between consecutive sends of a processor.
    pub gap: u64,
    /// Total processor count `P` (including the source).
    pub processors: usize,
}

impl LogPModel {
    /// Creates a LogP instance.
    pub fn new(latency: u64, overhead: u64, gap: u64, processors: usize) -> Self {
        LogPModel {
            latency,
            overhead,
            gap,
            processors,
        }
    }
}

impl IntoReceiveSend for LogPModel {
    fn to_instance(&self) -> Result<Instance, ModelError> {
        let send = self.overhead.max(self.gap).max(1);
        let spec = NodeSpec::new(send, self.overhead);
        let destinations = self.processors.saturating_sub(1);
        Ok(Instance::new(
            MulticastSet::homogeneous(spec, destinations),
            NetParams::new(self.latency),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn embedding() {
        let m = LogPModel::new(6, 2, 4, 8);
        let inst = m.to_instance().unwrap();
        assert_eq!(inst.set.num_destinations(), 7);
        assert_eq!(inst.set.source(), NodeSpec::new(4, 2));
        assert_eq!(inst.net.latency(), Time::new(6));
    }

    #[test]
    fn overhead_dominated_machine() {
        let m = LogPModel::new(1, 5, 2, 4);
        let inst = m.to_instance().unwrap();
        assert_eq!(inst.set.source(), NodeSpec::new(5, 5));
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        // All-zero overhead/gap still yields a positive send overhead.
        let inst = LogPModel::new(0, 0, 0, 2).to_instance().unwrap();
        assert_eq!(inst.set.source(), NodeSpec::new(1, 0));
        // A single processor means no destinations.
        assert_eq!(
            LogPModel::new(1, 1, 1, 1)
                .to_instance()
                .unwrap()
                .num_destinations(),
            0
        );
    }
}
