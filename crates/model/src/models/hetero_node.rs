//! The heterogeneous-node model of Banikazemi et al. (1998) and
//! Hall et al. (1998).
//!
//! Each node `x` has a single *message initiation cost* `c(x)`; when `x`
//! sends to `y`, `x` is busy for `c(x)` time units and `y` holds the message
//! (and may itself begin sending) at time `c(x)` after the send began. There
//! is no separate receive cost and no network latency term.
//!
//! The embedding into the receive-send model sets `o_send(x) = c(x)`,
//! `o_recv(x) = 0` and `L = 0`, which reproduces exactly the same delivery
//! dynamics: a destination may forward the message the instant its parent
//! finishes the corresponding send.

use super::{Instance, IntoReceiveSend};
use crate::error::ModelError;
use crate::multicast::MulticastSet;
use crate::node::NodeSpec;
use crate::params::NetParams;
use serde::{Deserialize, Serialize};

/// A multicast instance in the heterogeneous-node model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeteroNodeModel {
    /// Message initiation cost of the source node.
    pub source_cost: u64,
    /// Message initiation costs of the destination nodes.
    pub destination_costs: Vec<u64>,
}

impl HeteroNodeModel {
    /// Creates an instance from per-node initiation costs.
    pub fn new(source_cost: u64, destination_costs: Vec<u64>) -> Self {
        HeteroNodeModel {
            source_cost,
            destination_costs,
        }
    }
}

impl IntoReceiveSend for HeteroNodeModel {
    fn to_instance(&self) -> Result<Instance, ModelError> {
        let source = NodeSpec::try_new(self.source_cost, 0)
            .ok_or(ModelError::ZeroSendOverhead { index: usize::MAX })?;
        let destinations = self
            .destination_costs
            .iter()
            .enumerate()
            .map(|(i, &c)| NodeSpec::try_new(c, 0).ok_or(ModelError::ZeroSendOverhead { index: i }))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Instance::new(
            MulticastSet::new(source, destinations)?,
            NetParams::zero_latency(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn embedding() {
        let m = HeteroNodeModel::new(3, vec![1, 2, 5]);
        let inst = m.to_instance().unwrap();
        assert_eq!(inst.net.latency(), Time::ZERO);
        assert_eq!(inst.set.source(), NodeSpec::new(3, 0));
        assert_eq!(inst.set.num_destinations(), 3);
        assert_eq!(inst.set.destination(0), NodeSpec::new(1, 0));
        assert_eq!(inst.set.destination(2), NodeSpec::new(5, 0));
    }

    #[test]
    fn zero_cost_is_rejected() {
        assert!(matches!(
            HeteroNodeModel::new(0, vec![1]).to_instance(),
            Err(ModelError::ZeroSendOverhead { index: usize::MAX })
        ));
        assert!(matches!(
            HeteroNodeModel::new(1, vec![1, 0]).to_instance(),
            Err(ModelError::ZeroSendOverhead { index: 1 })
        ));
    }
}
