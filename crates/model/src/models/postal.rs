//! The postal model of Bar-Noy and Kipnis (1994).
//!
//! A sender is occupied for one time unit per message; the message reaches
//! its destination `λ ≥ 1` time units after the send began, at which point
//! the destination may itself start sending. All nodes are identical.
//!
//! The embedding sets `o_send = 1`, `L = λ − 1`, `o_recv = 0`: the
//! destination holds the message `λ` units after the send began and is not
//! otherwise occupied, matching the postal semantics.

use super::{Instance, IntoReceiveSend};
use crate::error::ModelError;
use crate::multicast::MulticastSet;
use crate::node::NodeSpec;
use crate::params::NetParams;
use serde::{Deserialize, Serialize};

/// A broadcast instance in the postal model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostalModel {
    /// Number of destination nodes.
    pub destinations: usize,
    /// The postal latency `λ ≥ 1`.
    pub lambda: u64,
}

impl PostalModel {
    /// Creates a postal-model instance. `lambda` values below 1 are clamped
    /// to 1 (the model requires `λ ≥ 1`).
    pub fn new(destinations: usize, lambda: u64) -> Self {
        PostalModel {
            destinations,
            lambda: lambda.max(1),
        }
    }
}

impl IntoReceiveSend for PostalModel {
    fn to_instance(&self) -> Result<Instance, ModelError> {
        let spec = NodeSpec::new(1, 0);
        Ok(Instance::new(
            MulticastSet::homogeneous(spec, self.destinations),
            NetParams::new(self.lambda - 1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn embedding() {
        let m = PostalModel::new(5, 4);
        let inst = m.to_instance().unwrap();
        assert_eq!(inst.net.latency(), Time::new(3));
        assert_eq!(inst.set.num_destinations(), 5);
        assert_eq!(inst.set.source(), NodeSpec::new(1, 0));
    }

    #[test]
    fn lambda_one_reduces_to_one_port() {
        let inst = PostalModel::new(3, 1).to_instance().unwrap();
        assert_eq!(inst.net.latency(), Time::ZERO);
    }

    #[test]
    fn lambda_is_clamped_to_at_least_one() {
        assert_eq!(PostalModel::new(3, 0).lambda, 1);
    }
}
