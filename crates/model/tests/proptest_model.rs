//! Property-based tests of the core model data structures.

use hnow_model::{MulticastSet, NodeSpec, Time, TypedMulticast};
use proptest::prelude::*;

/// Inversion-free spec lists: (send, send + extra) pairs, monotonised.
fn arb_specs(max_len: usize) -> impl Strategy<Value = Vec<NodeSpec>> {
    prop::collection::vec((1u64..=30, 0u64..=40), 1..=max_len).prop_map(|raw| {
        let mut raw: Vec<(u64, u64)> = raw.into_iter().map(|(s, e)| (s, s + e)).collect();
        raw.sort_unstable();
        let mut last = 0;
        raw.into_iter()
            .map(|(s, r)| {
                let r = r.max(last);
                last = r;
                NodeSpec::new(s, r)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Construction keeps destinations sorted, preserves the multiset of
    /// specs, and exposes consistent aggregate quantities.
    #[test]
    fn multicast_set_canonical_form(specs in arb_specs(24)) {
        let source = specs[0];
        let dests = specs[1..].to_vec();
        let set = MulticastSet::new(source, dests.clone()).unwrap();
        // Sorted non-decreasing by (send, recv).
        for pair in set.destinations().windows(2) {
            prop_assert!(pair[0].speed_key() <= pair[1].speed_key());
        }
        // Same multiset of destination specs.
        let mut a: Vec<_> = dests.iter().map(|s| s.speed_key()).collect();
        let mut b: Vec<_> = set.destinations().iter().map(|s| s.speed_key()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Aggregates.
        prop_assert!(set.alpha_max() >= set.alpha_min());
        prop_assert!(set.num_distinct_types() >= 1);
        prop_assert!(set.num_distinct_types() <= set.num_nodes());
        if set.num_destinations() > 0 {
            let max_recv = set.destinations().iter().map(|s| s.recv()).max().unwrap();
            prop_assert!(set.beta() <= max_recv);
        } else {
            prop_assert_eq!(set.beta(), Time::ZERO);
        }
        // Node-id access is consistent with iteration order.
        for (id, spec) in set.iter_nodes() {
            prop_assert_eq!(set.spec(id), spec);
        }
    }

    /// Grouping a set into types and expanding it back is lossless.
    #[test]
    fn typed_multicast_roundtrip(specs in arb_specs(20)) {
        let set = MulticastSet::new(specs[0], specs[1..].to_vec()).unwrap();
        let typed = TypedMulticast::from_multicast_set(&set);
        prop_assert_eq!(typed.total_destinations(), set.num_destinations());
        prop_assert_eq!(typed.k(), set.num_distinct_types());
        let back = typed.to_multicast_set().unwrap();
        prop_assert_eq!(back, set.clone());
        // Every destination id is claimed by exactly one class.
        let mut claimed: Vec<usize> = (0..typed.k())
            .flat_map(|c| typed.node_ids_for_class(c))
            .map(|id| id.index())
            .collect();
        claimed.sort_unstable();
        prop_assert_eq!(claimed, (1..=set.num_destinations()).collect::<Vec<_>>());
    }

    /// Inverted overhead pairs are always rejected.
    #[test]
    fn inversions_are_rejected(send_gap in 1u64..=10, recv_gap in 1u64..=10) {
        let faster_sender = NodeSpec::new(5, 5 + recv_gap);
        let slower_sender = NodeSpec::new(5 + send_gap, 5);
        let result = MulticastSet::new(NodeSpec::new(1, 1), vec![faster_sender, slower_sender]);
        prop_assert!(result.is_err());
    }

    /// Time arithmetic behaves like plain integers.
    #[test]
    fn time_arithmetic(a in 0u64..=1_000_000, b in 0u64..=1_000_000, k in 0u64..=1000) {
        let ta = Time::new(a);
        let tb = Time::new(b);
        prop_assert_eq!((ta + tb).raw(), a + b);
        prop_assert_eq!((ta * k).raw(), a * k);
        prop_assert_eq!(ta.max(tb).raw(), a.max(b));
        prop_assert_eq!(ta.saturating_sub(tb).raw(), a.saturating_sub(b));
        prop_assert_eq!(ta.checked_sub(tb).map(Time::raw), a.checked_sub(b));
        prop_assert_eq!(ta < tb, a < b);
    }
}
