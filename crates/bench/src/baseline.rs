//! Machine-readable perf-baseline harness.
//!
//! The Criterion targets under `benches/` are great for interactive A/B
//! comparisons but produce no artifact a later PR can diff against. This
//! module times a **fixed scenario grid** over the workspace's hot paths —
//! DP table builds (sequential and shell-parallel), greedy planning, and the
//! batched `plan_many` facade — and renders the results as a serializable
//! [`BaselineReport`], written to `BENCH_core.json` by the `perf_baseline`
//! example binary. The checked-in file is the repo's perf trajectory: one
//! point per PR that touches a hot path.
//!
//! Wall-clock numbers vary across machines; the grid, case names and JSON
//! schema are what stay fixed, so trajectory diffs are apples-to-apples on
//! any single machine (such as the CI runner, which regenerates the quick
//! grid on every push).

use hnow_core::algorithms::dp::{DpFillMode, DpTable};
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::planner::{find, plan_many_with, PlanContext, PlanRequest, Planner};
use hnow_model::{MessageSize, NetParams, TypedMulticast};
use hnow_workload::{standard_class_table, two_class_table};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Grid size of the harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// Tiny grid for CI smoke runs: finishes in well under a second.
    Quick,
    /// The full trajectory grid: a few seconds on a laptop-class machine.
    Full,
}

impl BaselineMode {
    fn label(self) -> &'static str {
        match self {
            BaselineMode::Quick => "quick",
            BaselineMode::Full => "full",
        }
    }
}

/// One timed case of the grid.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineCase {
    /// Stable case identifier, `group/variant/size`.
    pub name: String,
    /// Hot-path family (`dp_build`, `greedy`, `plan_many`).
    pub group: String,
    /// Problem size: destinations for single-instance cases, total requests
    /// for batch cases.
    pub size: u64,
    /// Timed iterations (after one untimed warm-up).
    pub iters: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u64,
}

/// The serialized baseline artifact (`BENCH_core.json`).
#[derive(Debug, Clone, Serialize)]
pub struct BaselineReport {
    /// Schema version of this artifact; bump when cases are renamed.
    pub schema: u32,
    /// Grid size the report was produced with (`quick` or `full`).
    pub mode: String,
    /// All timed cases, in grid order.
    pub cases: Vec<BaselineCase>,
}

/// Times `routine` for `iters` iterations after one untimed warm-up.
pub fn time_case(
    group: &str,
    name: String,
    size: u64,
    iters: u64,
    mut routine: impl FnMut(),
) -> BaselineCase {
    routine();
    let mut samples: Vec<u64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        routine();
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    samples.sort_unstable();
    let min_ns = samples.first().copied().unwrap_or(0);
    let median_ns = samples.get(samples.len() / 2).copied().unwrap_or(0);
    let mean_ns = samples.iter().sum::<u64>() / samples.len().max(1) as u64;
    BaselineCase {
        name,
        group: group.to_string(),
        size,
        iters,
        min_ns,
        median_ns,
        mean_ns,
    }
}

/// Runs the whole grid and returns the report.
pub fn run(mode: BaselineMode) -> BaselineReport {
    let mut cases = Vec::new();
    dp_build_cases(mode, &mut cases);
    greedy_cases(mode, &mut cases);
    plan_many_cases(mode, &mut cases);
    BaselineReport {
        schema: 1,
        mode: mode.label().to_string(),
        cases,
    }
}

/// DP table builds over the standard workload class tables, including a
/// sequential-vs-parallel pair at one size so the shell-parallel speedup is
/// part of the trajectory once a parallel rayon is in use.
fn dp_build_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let size = MessageSize::from_kib(4);
    let two = two_class_table();
    let four = standard_class_table();

    let (k2_sizes, k4_per_class, iters): (&[usize], &[usize], u64) = match mode {
        BaselineMode::Quick => (&[16], &[2], 3),
        BaselineMode::Full => (&[16, 64, 128, 256], &[2, 4], 5),
    };

    for &n in k2_sizes {
        let typed = TypedMulticast::from_classes(&two, size, 0, vec![n / 2, n - n / 2]).unwrap();
        cases.push(time_case(
            "dp_build",
            format!("dp_build/k2/{n}"),
            n as u64,
            iters,
            || {
                black_box(DpTable::build(black_box(&typed), net));
            },
        ));
    }
    for &per_class in k4_per_class {
        let typed = TypedMulticast::from_classes(&four, size, 0, vec![per_class; 4]).unwrap();
        let n = per_class * 4;
        cases.push(time_case(
            "dp_build",
            format!("dp_build/k4/{n}"),
            n as u64,
            iters,
            || {
                black_box(DpTable::build(black_box(&typed), net));
            },
        ));
    }

    // Fill-mode pair at one mid-size point.
    let n = match mode {
        BaselineMode::Quick => 32,
        BaselineMode::Full => 128,
    };
    let typed = TypedMulticast::from_classes(&two, size, 0, vec![n / 2, n / 2]).unwrap();
    for (variant, fill_mode) in [
        ("sequential", DpFillMode::Sequential),
        ("parallel", DpFillMode::Parallel),
    ] {
        cases.push(time_case(
            "dp_build",
            format!("dp_build/k2-{variant}/{n}"),
            n as u64,
            iters,
            || {
                black_box(DpTable::build_with_mode(black_box(&typed), net, fill_mode));
            },
        ));
    }
}

/// Refined greedy planning across cluster sizes.
fn greedy_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let size = MessageSize::from_kib(4);
    let four = standard_class_table();
    let (sizes, iters): (&[usize], u64) = match mode {
        BaselineMode::Quick => (&[256], 5),
        BaselineMode::Full => (&[64, 1024, 4096], 10),
    };
    for &n in sizes {
        let typed = TypedMulticast::from_classes(
            &four,
            size,
            0,
            vec![n / 4, n / 4, n / 4, n - 3 * (n / 4)],
        )
        .unwrap();
        let set = typed.to_multicast_set().unwrap();
        cases.push(time_case(
            "greedy",
            format!("greedy/refined/{n}"),
            n as u64,
            iters,
            || {
                black_box(greedy_with_options(
                    black_box(&set),
                    net,
                    GreedyOptions::REFINED,
                ));
            },
        ));
    }
}

/// Batched planning through the `plan_many` facade with a shared DP cache:
/// many sub-multicasts over one two-class cluster, planned by the greedy and
/// exact-DP planners — the paper's precompute-once, answer-everything usage.
fn plan_many_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(1);
    let size = MessageSize::from_kib(4);
    let two = two_class_table();
    let (max_per_class, iters): (usize, u64) = match mode {
        BaselineMode::Quick => (4, 3),
        BaselineMode::Full => (12, 5),
    };
    let mut requests = Vec::new();
    for a in 0..=max_per_class {
        for b in 0..=max_per_class {
            if a + b == 0 {
                continue;
            }
            let typed = TypedMulticast::from_classes(&two, size, 0, vec![a, b]).unwrap();
            requests.push(PlanRequest::new(typed.to_multicast_set().unwrap(), net).with_seed(7));
        }
    }
    let planners: Vec<&dyn Planner> = ["greedy+leaf", "dp-optimal"]
        .iter()
        .map(|name| find(name).expect("registry planner"))
        .collect();
    let batch = requests.len() as u64;
    cases.push(time_case(
        "plan_many",
        format!("plan_many/greedy+dp/{batch}"),
        batch,
        iters,
        || {
            // A fresh context per iteration: the measurement includes the
            // one shared table build plus every cache-served request.
            let ctx = PlanContext::new();
            black_box(plan_many_with(&planners, black_box(&requests), &ctx));
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_produces_the_expected_cases() {
        let report = run(BaselineMode::Quick);
        assert_eq!(report.schema, 1);
        assert_eq!(report.mode, "quick");
        let names: Vec<&str> = report.cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "dp_build/k2/16",
                "dp_build/k4/8",
                "dp_build/k2-sequential/32",
                "dp_build/k2-parallel/32",
                "greedy/refined/256",
                "plan_many/greedy+dp/24",
            ]
        );
        for case in &report.cases {
            assert!(case.iters > 0);
            assert!(case.min_ns <= case.median_ns);
            assert!(case.min_ns > 0, "{} measured nothing", case.name);
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let report = run(BaselineMode::Quick);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"schema\""));
        assert!(json.contains("dp_build/k2/16"));
    }
}
