//! Machine-readable perf-baseline harness.
//!
//! The Criterion targets under `benches/` are great for interactive A/B
//! comparisons but produce no artifact a later PR can diff against. This
//! module times a **fixed scenario grid** over the workspace's hot paths —
//! DP table builds (sequential and shell-parallel), greedy planning, the
//! batched `plan_many` facade, a traffic-engine soak, a sharded-cluster
//! soak (`sharded_soak`, the dispatcher + gateway-stitching path), a
//! thread-scaling soak (`parallel_soak`, the same sharded run under 1- and
//! 8-thread rayon pools), a control-plane soak (`control_plane`, the
//! epoch-batched service loop with admission toggled on and off), and a
//! lossy-repair soak (`lossy_soak`, the flat engine under 5% injected loss
//! with NACK-driven repair, per repairer placement), a streaming soak
//! (`stream_soak`, the flat engine moving 8-chunk trains, pipelined and
//! sequential, against the atomic anchor), and a telemetry-overhead group
//! (`telemetry_overhead`, the pipelined train untraced, with an attached
//! trace sink, and with the time-series collector) — and
//! renders the
//! results as a serializable [`BaselineReport`], written to
//! `BENCH_core.json` by the `perf_baseline` example binary. The checked-in
//! file is the repo's perf trajectory: one point per PR that touches a hot
//! path, and [`compare`] diffs two reports entry by entry — the CI
//! perf-gate runs it (`perf_baseline --compare BENCH_core.json`) to fail on
//! gross `dp_build` regressions.
//!
//! Wall-clock numbers vary across machines; the grid, case names and JSON
//! schema are what stay fixed, so trajectory diffs are apples-to-apples on
//! any single machine (such as the CI runner, which regenerates the quick
//! grid on every push).

use hnow_core::algorithms::dp::{DpFillMode, DpTable};
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::planner::{find, plan_many_with, PlanContext, PlanRequest, Planner};
use hnow_core::RepairPlacement;
use hnow_model::{ChunkProfile, MessageSize, NetParams, TypedMulticast};
use hnow_sim::cluster::{ControlConfig, RebalanceConfig, ShardedCluster};
use hnow_sim::sessions::TrafficEngine;
use hnow_sim::{LossProfile, RunConfig};
use hnow_workload::traffic::{ChurnProfile, NodePool, TrafficPattern};
use hnow_workload::{standard_class_table, two_class_table, ShardMap, ShardedPattern};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// Grid size of the harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// Tiny grid for CI smoke runs: finishes in well under a second.
    Quick,
    /// The full trajectory grid: a few seconds on a laptop-class machine.
    Full,
}

impl BaselineMode {
    fn label(self) -> &'static str {
        match self {
            BaselineMode::Quick => "quick",
            BaselineMode::Full => "full",
        }
    }
}

/// One timed case of the grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineCase {
    /// Stable case identifier, `group/variant/size`.
    pub name: String,
    /// Hot-path family (`dp_build`, `greedy`, `plan_many`).
    pub group: String,
    /// Problem size: destinations for single-instance cases, total requests
    /// for batch cases.
    pub size: u64,
    /// Timed iterations (after one untimed warm-up).
    pub iters: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u64,
}

/// The serialized baseline artifact (`BENCH_core.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Schema version of this artifact; bump when cases are renamed.
    pub schema: u32,
    /// Grid size the report was produced with (`quick` or `full`).
    pub mode: String,
    /// All timed cases, in grid order.
    pub cases: Vec<BaselineCase>,
}

/// Times `routine` for `iters` iterations after one untimed warm-up.
pub fn time_case(
    group: &str,
    name: String,
    size: u64,
    iters: u64,
    mut routine: impl FnMut(),
) -> BaselineCase {
    routine();
    let mut samples: Vec<u64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        routine();
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    samples.sort_unstable();
    let min_ns = samples.first().copied().unwrap_or(0);
    let median_ns = samples.get(samples.len() / 2).copied().unwrap_or(0);
    let mean_ns = samples.iter().sum::<u64>() / samples.len().max(1) as u64;
    BaselineCase {
        name,
        group: group.to_string(),
        size,
        iters,
        min_ns,
        median_ns,
        mean_ns,
    }
}

/// Runs the whole grid and returns the report.
pub fn run(mode: BaselineMode) -> BaselineReport {
    let mut cases = Vec::new();
    dp_build_cases(mode, &mut cases);
    greedy_cases(mode, &mut cases);
    plan_many_cases(mode, &mut cases);
    traffic_soak_cases(mode, &mut cases);
    sharded_soak_cases(mode, &mut cases);
    parallel_soak_cases(mode, &mut cases);
    control_plane_cases(mode, &mut cases);
    lossy_soak_cases(mode, &mut cases);
    stream_soak_cases(mode, &mut cases);
    telemetry_overhead_cases(mode, &mut cases);
    BaselineReport {
        schema: 1,
        mode: mode.label().to_string(),
        cases,
    }
}

/// DP table builds over the standard workload class tables, including a
/// sequential-vs-parallel pair at one size so the shell-parallel speedup is
/// part of the trajectory once a parallel rayon is in use.
fn dp_build_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let size = MessageSize::from_kib(4);
    let two = two_class_table();
    let four = standard_class_table();

    // The quick grid keeps k2/64 (~3 ms/build): it is the least noisy case
    // shared with the full grid, which is what the CI perf-gate compares.
    let (k2_sizes, k4_per_class, iters): (&[usize], &[usize], u64) = match mode {
        BaselineMode::Quick => (&[16, 64], &[2], 3),
        BaselineMode::Full => (&[16, 64, 128, 256], &[2, 4], 5),
    };

    for &n in k2_sizes {
        let typed = TypedMulticast::from_classes(&two, size, 0, vec![n / 2, n - n / 2]).unwrap();
        cases.push(time_case(
            "dp_build",
            format!("dp_build/k2/{n}"),
            n as u64,
            iters,
            || {
                black_box(DpTable::build(black_box(&typed), net));
            },
        ));
    }
    for &per_class in k4_per_class {
        let typed = TypedMulticast::from_classes(&four, size, 0, vec![per_class; 4]).unwrap();
        let n = per_class * 4;
        cases.push(time_case(
            "dp_build",
            format!("dp_build/k4/{n}"),
            n as u64,
            iters,
            || {
                black_box(DpTable::build(black_box(&typed), net));
            },
        ));
    }

    // Fill-mode pair at one mid-size point.
    let n = match mode {
        BaselineMode::Quick => 32,
        BaselineMode::Full => 128,
    };
    let typed = TypedMulticast::from_classes(&two, size, 0, vec![n / 2, n / 2]).unwrap();
    for (variant, fill_mode) in [
        ("sequential", DpFillMode::Sequential),
        ("parallel", DpFillMode::Parallel),
    ] {
        cases.push(time_case(
            "dp_build",
            format!("dp_build/k2-{variant}/{n}"),
            n as u64,
            iters,
            || {
                black_box(DpTable::build_with_mode(black_box(&typed), net, fill_mode));
            },
        ));
    }
}

/// Refined greedy planning across cluster sizes.
fn greedy_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let size = MessageSize::from_kib(4);
    let four = standard_class_table();
    let (sizes, iters): (&[usize], u64) = match mode {
        BaselineMode::Quick => (&[256], 5),
        BaselineMode::Full => (&[64, 1024, 4096], 10),
    };
    for &n in sizes {
        let typed = TypedMulticast::from_classes(
            &four,
            size,
            0,
            vec![n / 4, n / 4, n / 4, n - 3 * (n / 4)],
        )
        .unwrap();
        let set = typed.to_multicast_set().unwrap();
        cases.push(time_case(
            "greedy",
            format!("greedy/refined/{n}"),
            n as u64,
            iters,
            || {
                black_box(greedy_with_options(
                    black_box(&set),
                    net,
                    GreedyOptions::REFINED,
                ));
            },
        ));
    }
}

/// Batched planning through the `plan_many` facade with a shared DP cache:
/// many sub-multicasts over one two-class cluster, planned by the greedy and
/// exact-DP planners — the paper's precompute-once, answer-everything usage.
fn plan_many_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(1);
    let size = MessageSize::from_kib(4);
    let two = two_class_table();
    let (max_per_class, iters): (usize, u64) = match mode {
        BaselineMode::Quick => (4, 3),
        BaselineMode::Full => (12, 5),
    };
    let mut requests = Vec::new();
    for a in 0..=max_per_class {
        for b in 0..=max_per_class {
            if a + b == 0 {
                continue;
            }
            let typed = TypedMulticast::from_classes(&two, size, 0, vec![a, b]).unwrap();
            requests.push(PlanRequest::new(typed.to_multicast_set().unwrap(), net).with_seed(7));
        }
    }
    let planners: Vec<&dyn Planner> = ["greedy+leaf", "dp-optimal"]
        .iter()
        .map(|name| find(name).expect("registry planner"))
        .collect();
    let batch = requests.len() as u64;
    cases.push(time_case(
        "plan_many",
        format!("plan_many/greedy+dp/{batch}"),
        batch,
        iters,
        || {
            // A fresh context per iteration: the measurement includes the
            // one shared table build plus every cache-served request.
            let ctx = PlanContext::new();
            black_box(plan_many_with(&planners, black_box(&requests), &ctx));
        },
    ));
}

/// End-to-end traffic-engine soak: a seeded Poisson session stream planned
/// in batches and executed against shared node state — the sessions-at-scale
/// hot path (plan_many + canonical DP-cache + the busy-interval DES).
fn traffic_soak_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let pool = NodePool::new(
        two_class_table(),
        MessageSize::from_kib(4),
        match mode {
            BaselineMode::Quick => &[16, 8],
            BaselineMode::Full => &[32, 16],
        },
    )
    .expect("soak pool is valid");
    let (sessions, iters) = match mode {
        BaselineMode::Quick => (64usize, 3u64),
        BaselineMode::Full => (512, 5),
    };
    let pattern = TrafficPattern::poisson(12.0, 6);
    let requests = pattern
        .generate(&pool, sessions, 0xBEEF)
        .expect("soak pattern is valid");
    for planner in ["greedy+leaf", "dp-optimal"] {
        let engine = TrafficEngine::with_config(&pool, net, &RunConfig::for_planner(planner));
        cases.push(time_case(
            "traffic_soak",
            format!("traffic_soak/{planner}/{sessions}"),
            sessions as u64,
            iters,
            || {
                black_box(engine.run(black_box(&requests)).expect("soak run succeeds"));
            },
        ));
    }
}

/// End-to-end sharded-cluster soak: the same seeded session stream (with a
/// cross-shard component) served by the sharded dispatcher — per-shard plan
/// caches, gateway stitching for cross-shard sessions, and the lazily-primed
/// component simulation. The companion `traffic_soak` group covers the flat
/// engine, so the pair tracks the sharded speedup over the trajectory.
fn sharded_soak_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let pool = NodePool::new(
        two_class_table(),
        MessageSize::from_kib(4),
        match mode {
            BaselineMode::Quick => &[16, 8],
            BaselineMode::Full => &[32, 16],
        },
    )
    .expect("soak pool is valid");
    let shards = 4;
    let (sessions, iters) = match mode {
        BaselineMode::Quick => (64usize, 3u64),
        BaselineMode::Full => (512, 5),
    };
    let map = ShardMap::partition(&pool, shards).expect("soak partition is valid");
    let pattern = ShardedPattern::poisson(12.0, 6, 0.1);
    let requests = pattern
        .generate(&map, sessions, 0xBEEF)
        .expect("soak pattern is valid");
    for planner in ["greedy+leaf", "dp-optimal"] {
        let cluster = ShardedCluster::with_config(
            &pool,
            net,
            &RunConfig::for_planner(planner).sharded(shards),
        )
        .expect("soak cluster is valid");
        cases.push(time_case(
            "sharded_soak",
            format!("sharded_soak/{planner}/{sessions}"),
            sessions as u64,
            iters,
            || {
                black_box(
                    cluster
                        .run(black_box(&requests))
                        .expect("soak run succeeds"),
                );
            },
        ));
    }
}

/// Thread-scaling soak over the sharded cluster: one seeded intra-only
/// stream (8 shards, cross fraction 0, so the contact graph yields 8
/// node-disjoint components) run under a 1-thread and an 8-thread rayon
/// pool. The unified kernel guarantees byte-identical reports for both
/// cases; the *pair of timings* is the trajectory of the component
/// fan-out's real parallel speedup (≈1x on a single-core host, where the
/// workers time-slice one core).
fn parallel_soak_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let pool = NodePool::new(
        two_class_table(),
        MessageSize::from_kib(4),
        match mode {
            BaselineMode::Quick => &[16, 8],
            BaselineMode::Full => &[256, 128],
        },
    )
    .expect("soak pool is valid");
    let shards = 8;
    let (sessions, iters) = match mode {
        BaselineMode::Quick => (256usize, 2u64),
        BaselineMode::Full => (100_000, 3),
    };
    let map = ShardMap::partition(&pool, shards).expect("soak partition is valid");
    let pattern = ShardedPattern::poisson(2.0, 5, 0.0);
    let requests = pattern
        .generate(&map, sessions, 0xBEEF)
        .expect("soak pattern is valid");
    for threads in [1usize, 8] {
        let config = RunConfig::default().sharded(shards).with_threads(threads);
        let cluster =
            ShardedCluster::with_config(&pool, net, &config).expect("soak cluster is valid");
        cases.push(time_case(
            "parallel_soak",
            format!("parallel_soak/threads{threads}/{sessions}"),
            sessions as u64,
            iters,
            || {
                black_box(
                    cluster
                        .run(black_box(&requests))
                        .expect("soak run succeeds"),
                );
            },
        ));
    }
}

/// Control-plane soak: the same churned, partly-cross-shard stream served
/// by the epoch-batched service loop at 8 shards, with the admission
/// controller toggled on and off (rebalancing and the load-aware gateway
/// policy stay on in both). The pair prices the control plane itself:
/// `admission-on` adds intent building, the virtual-clock sort and
/// shedding on top of the identical per-epoch planning and simulation.
fn control_plane_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let pool = NodePool::new(
        two_class_table(),
        MessageSize::from_kib(4),
        match mode {
            BaselineMode::Quick => &[16, 8],
            BaselineMode::Full => &[32, 16],
        },
    )
    .expect("soak pool is valid");
    let shards = 8;
    let (sessions, iters) = match mode {
        BaselineMode::Quick => (64usize, 2u64),
        BaselineMode::Full => (512, 3),
    };
    let map = ShardMap::partition(&pool, shards).expect("soak partition is valid");
    let mut pattern = ShardedPattern::poisson(8.0, 5, 0.15);
    pattern.base.churn = Some(ChurnProfile {
        impatient_fraction: 0.4,
        mean_patience: 60.0,
    });
    let requests = pattern
        .generate(&map, sessions, 0xBEEF)
        .expect("soak pattern is valid");
    for (variant, admission) in [("admission-on", true), ("admission-off", false)] {
        let config = RunConfig::default()
            .sharded(shards)
            .with_control(ControlConfig {
                epoch: 32,
                admission,
                policy: "load-aware".to_string(),
                rebalance: Some(RebalanceConfig::default()),
            });
        let cluster =
            ShardedCluster::with_config(&pool, net, &config).expect("soak cluster is valid");
        cases.push(time_case(
            "control_plane",
            format!("control_plane/{variant}/{sessions}"),
            sessions as u64,
            iters,
            || {
                black_box(
                    cluster
                        .run(black_box(&requests))
                        .expect("soak run succeeds"),
                );
            },
        ));
    }
}

/// Lossy-traffic soak: the `traffic_soak` stream re-run under 5% injected
/// iid loss with NACK-driven repair, once per repairer placement (plus the
/// lossless anchor with the fault layer disabled). The anchor-vs-lossy gap
/// prices the repair machinery itself — keyed loss draws, the band-2 repair
/// events and the extra port occupancy — and the placement pair tracks how
/// much of that cost is queueing behind the source's one port.
fn lossy_soak_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let pool = NodePool::new(
        two_class_table(),
        MessageSize::from_kib(4),
        match mode {
            BaselineMode::Quick => &[16, 8],
            BaselineMode::Full => &[32, 16],
        },
    )
    .expect("soak pool is valid");
    let (sessions, iters) = match mode {
        BaselineMode::Quick => (64usize, 2u64),
        BaselineMode::Full => (512, 3),
    };
    let pattern = TrafficPattern::poisson(12.0, 6);
    let requests = pattern
        .generate(&pool, sessions, 0xBEEF)
        .expect("soak pattern is valid");
    let variants: [(&str, Option<LossProfile>, RepairPlacement); 3] = [
        ("lossless", None, RepairPlacement::SourceOnly),
        (
            "source-only",
            Some(LossProfile::iid(0.05, 0xFA)),
            RepairPlacement::SourceOnly,
        ),
        (
            "subtree-root",
            Some(LossProfile::iid(0.05, 0xFA)),
            RepairPlacement::SubtreeRoot,
        ),
    ];
    for (variant, loss, repair) in variants {
        let config = RunConfig {
            loss,
            repair,
            ..RunConfig::default()
        };
        let engine = TrafficEngine::with_config(&pool, net, &config);
        cases.push(time_case(
            "lossy_soak",
            format!("lossy_soak/{variant}/{sessions}"),
            sessions as u64,
            iters,
            || {
                black_box(engine.run(black_box(&requests)).expect("soak run succeeds"));
            },
        ));
    }
}

/// Streaming soak: the `lossy_soak` pool re-offered as 8-chunk trains,
/// once pipelined and once sequential, against the atomic anchor. The
/// anchor-vs-pipelined gap prices the chunk-train machinery itself (8× the
/// kernel events per session); the pipelined-vs-sequential pair tracks the
/// cost of the settle-gated release discipline on the same event volume.
fn stream_soak_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    let net = NetParams::new(2);
    let pool = NodePool::new(
        two_class_table(),
        MessageSize::from_kib(4),
        match mode {
            BaselineMode::Quick => &[16, 8],
            BaselineMode::Full => &[32, 16],
        },
    )
    .expect("soak pool is valid");
    let (sessions, iters) = match mode {
        BaselineMode::Quick => (64usize, 2u64),
        BaselineMode::Full => (256, 3),
    };
    let pattern = TrafficPattern::poisson(40.0, 6);
    let requests = pattern
        .generate(&pool, sessions, 0xBEEF)
        .expect("soak pattern is valid");
    let variants: [(&str, Option<ChunkProfile>); 3] = [
        ("atomic", None),
        ("pipelined8", Some(ChunkProfile::new(8, 8))),
        ("sequential8", Some(ChunkProfile::new(8, 8).sequential())),
    ];
    for (variant, chunks) in variants {
        let config = RunConfig {
            chunks,
            ..RunConfig::default()
        };
        let engine = TrafficEngine::with_config(&pool, net, &config);
        cases.push(time_case(
            "stream_soak",
            format!("stream_soak/{variant}/{sessions}"),
            sessions as u64,
            iters,
            || {
                black_box(engine.run(black_box(&requests)).expect("soak run succeeds"));
            },
        ));
    }
}

/// Telemetry overhead over the `stream_soak` pipelined train (the
/// workspace's event-densest scenario, 8× the kernel events per session):
/// `off` re-times the untraced anchor inside this group so the pair shares
/// one machine state; `sink` attaches an in-memory trace sink (every
/// kernel event constructed, remapped and pushed); `timeseries` folds the
/// same stream into the report's windowed telemetry section. The pinned
/// claim is that `off` stays within 2% of `stream_soak/pipelined8` — the
/// disabled path costs one `Option<&Recorder>` branch per emission site —
/// while `sink`/`off` prices the active machinery on the trajectory.
fn telemetry_overhead_cases(mode: BaselineMode, cases: &mut Vec<BaselineCase>) {
    use hnow_telemetry::{MemorySink, TelemetryConfig};
    use std::sync::Arc;
    let net = NetParams::new(2);
    let pool = NodePool::new(
        two_class_table(),
        MessageSize::from_kib(4),
        match mode {
            BaselineMode::Quick => &[16, 8],
            BaselineMode::Full => &[32, 16],
        },
    )
    .expect("soak pool is valid");
    let (sessions, iters) = match mode {
        BaselineMode::Quick => (64usize, 2u64),
        BaselineMode::Full => (256, 3),
    };
    let pattern = TrafficPattern::poisson(40.0, 6);
    let requests = pattern
        .generate(&pool, sessions, 0xBEEF)
        .expect("soak pattern is valid");
    let sink = Arc::new(MemorySink::new());
    let variants: [(&str, Option<TelemetryConfig>); 3] = [
        ("off", None),
        ("sink", Some(TelemetryConfig::new().with_sink(sink.clone()))),
        (
            "timeseries",
            Some(TelemetryConfig::new().with_timeseries(64)),
        ),
    ];
    for (variant, telemetry) in variants {
        let config = RunConfig {
            chunks: Some(ChunkProfile::new(8, 8)),
            telemetry,
            ..RunConfig::default()
        };
        let engine = TrafficEngine::with_config(&pool, net, &config);
        cases.push(time_case(
            "telemetry_overhead",
            format!("telemetry_overhead/{variant}/{sessions}"),
            sessions as u64,
            iters,
            || {
                black_box(engine.run(black_box(&requests)).expect("soak run succeeds"));
                // Keep the sink's buffer from growing across iterations —
                // the measurement prices emission, not reallocation of an
                // ever-larger Vec.
                sink.take();
            },
        ));
    }
}

/// How one baseline entry moved between two reports.
#[derive(Debug, Clone, Serialize)]
pub struct CaseDelta {
    /// Case name shared by both reports (or present in only one).
    pub name: String,
    /// Minimum-iteration time in the old report, if present.
    pub old_min_ns: Option<u64>,
    /// Minimum-iteration time in the new report, if present.
    pub new_min_ns: Option<u64>,
    /// `new / old` (minimum times); `None` unless both sides are present
    /// and the old time is non-zero.
    pub ratio: Option<f64>,
}

/// The result of comparing two baseline reports.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineComparison {
    /// One delta per case name appearing in either report, in new-report
    /// order (cases only in the old report follow at the end).
    pub deltas: Vec<CaseDelta>,
    /// Human-readable descriptions of every gate violation.
    pub regressions: Vec<String>,
}

impl BaselineComparison {
    /// Whether the gate passed (no regression beyond the factor).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Old-side minimum below which a case informs but never gates:
/// microsecond-scale entries are dominated by machine differences and
/// shared-runner jitter, so gating them would make CI flaky with no code
/// change. 100 µs keeps the millisecond-scale DP kernels (the cases a
/// regression would actually show up in) under the gate.
pub const GATE_MIN_NS: u64 = 100_000;

/// Compares `new` against `old`, gating on the cases of `gate_group`: any
/// such case present in both reports, with an old minimum of at least
/// [`GATE_MIN_NS`], whose minimum time grew by more than `gate_factor`× is
/// a regression. The minimum over iterations is used because it is the most
/// noise-robust statistic a small sample offers; `gate_factor` should stay
/// generous (the CI gate uses 3×) since the two reports may come from
/// differently loaded machines.
pub fn compare(
    old: &BaselineReport,
    new: &BaselineReport,
    gate_group: &str,
    gate_factor: f64,
) -> BaselineComparison {
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    let old_case = |name: &str| old.cases.iter().find(|c| c.name == name);
    for case in &new.cases {
        let old_min = old_case(&case.name).map(|c| c.min_ns);
        let ratio = old_min
            .filter(|&m| m > 0)
            .map(|m| case.min_ns as f64 / m as f64);
        if case.group == gate_group && old_min.is_some_and(|m| m >= GATE_MIN_NS) {
            if let Some(r) = ratio {
                if r > gate_factor {
                    regressions.push(format!(
                        "{}: min {} ns -> {} ns ({:.2}x > {:.2}x budget)",
                        case.name,
                        old_min.unwrap_or(0),
                        case.min_ns,
                        r,
                        gate_factor
                    ));
                }
            }
        }
        deltas.push(CaseDelta {
            name: case.name.clone(),
            old_min_ns: old_min,
            new_min_ns: Some(case.min_ns),
            ratio,
        });
    }
    for case in &old.cases {
        if !new.cases.iter().any(|c| c.name == case.name) {
            deltas.push(CaseDelta {
                name: case.name.clone(),
                old_min_ns: Some(case.min_ns),
                new_min_ns: None,
                ratio: None,
            });
        }
    }
    BaselineComparison {
        deltas,
        regressions,
    }
}

/// Renders a comparison as an aligned text table, one line per case.
pub fn render_comparison(comparison: &BaselineComparison) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>14} {:>14} {:>8}\n",
        "case", "old min (ns)", "new min (ns)", "ratio"
    ));
    for delta in &comparison.deltas {
        let fmt_side = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        let ratio = match delta.ratio {
            Some(r) => format!("{r:.2}x"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<34} {:>14} {:>14} {:>8}\n",
            delta.name,
            fmt_side(delta.old_min_ns),
            fmt_side(delta.new_min_ns),
            ratio
        ));
    }
    for regression in &comparison.regressions {
        out.push_str(&format!("REGRESSION: {regression}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_produces_the_expected_cases() {
        let report = run(BaselineMode::Quick);
        assert_eq!(report.schema, 1);
        assert_eq!(report.mode, "quick");
        let names: Vec<&str> = report.cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "dp_build/k2/16",
                "dp_build/k2/64",
                "dp_build/k4/8",
                "dp_build/k2-sequential/32",
                "dp_build/k2-parallel/32",
                "greedy/refined/256",
                "plan_many/greedy+dp/24",
                "traffic_soak/greedy+leaf/64",
                "traffic_soak/dp-optimal/64",
                "sharded_soak/greedy+leaf/64",
                "sharded_soak/dp-optimal/64",
                "parallel_soak/threads1/256",
                "parallel_soak/threads8/256",
                "control_plane/admission-on/64",
                "control_plane/admission-off/64",
                "lossy_soak/lossless/64",
                "lossy_soak/source-only/64",
                "lossy_soak/subtree-root/64",
                "stream_soak/atomic/64",
                "stream_soak/pipelined8/64",
                "stream_soak/sequential8/64",
                "telemetry_overhead/off/64",
                "telemetry_overhead/sink/64",
                "telemetry_overhead/timeseries/64",
            ]
        );
        for case in &report.cases {
            assert!(case.iters > 0);
            assert!(case.min_ns <= case.median_ns);
            assert!(case.min_ns > 0, "{} measured nothing", case.name);
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let report = run(BaselineMode::Quick);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"schema\""));
        assert!(json.contains("dp_build/k2/16"));
        assert!(json.contains("traffic_soak/greedy+leaf/64"));
        // The artifact round-trips, which is what `--compare` relies on.
        let back: BaselineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cases.len(), report.cases.len());
        assert_eq!(back.cases[0].min_ns, report.cases[0].min_ns);
    }

    fn synthetic_report(entries: &[(&str, &str, u64)]) -> BaselineReport {
        BaselineReport {
            schema: 1,
            mode: "quick".to_string(),
            cases: entries
                .iter()
                .map(|&(name, group, min_ns)| BaselineCase {
                    name: name.to_string(),
                    group: group.to_string(),
                    size: 1,
                    iters: 1,
                    min_ns,
                    median_ns: min_ns,
                    mean_ns: min_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn comparison_gates_only_the_requested_group() {
        let old = synthetic_report(&[
            ("dp_build/k2/64", "dp_build", 4 * GATE_MIN_NS),
            ("dp_build/k2/16", "dp_build", 100),
            ("greedy/refined/256", "greedy", 4 * GATE_MIN_NS),
            ("dp_build/gone", "dp_build", 50),
        ]);
        let new = synthetic_report(&[
            ("dp_build/k2/64", "dp_build", 10 * GATE_MIN_NS),
            ("dp_build/k2/16", "dp_build", 10_000),
            ("greedy/refined/256", "greedy", 400 * GATE_MIN_NS),
            ("traffic_soak/new/64", "traffic_soak", 9),
        ]);
        // 2.5x on the gated group's above-floor entry with a 3x budget:
        // passes. The 100x greedy blow-up is outside the gated group, and
        // the 100x on the microsecond-scale dp_build/k2/16 is under the
        // noise floor — both only inform.
        let ok = compare(&old, &new, "dp_build", 3.0);
        assert!(ok.passed(), "{:?}", ok.regressions);
        assert_eq!(ok.deltas.len(), 5, "union of both case sets");
        let gone = ok
            .deltas
            .iter()
            .find(|d| d.name == "dp_build/gone")
            .unwrap();
        assert_eq!(gone.new_min_ns, None);
        let added = ok
            .deltas
            .iter()
            .find(|d| d.name == "traffic_soak/new/64")
            .unwrap();
        assert_eq!(added.old_min_ns, None);
        assert_eq!(added.ratio, None);

        // A tighter budget trips the gate, on the above-floor entry only.
        let bad = compare(&old, &new, "dp_build", 2.0);
        assert!(!bad.passed());
        assert_eq!(bad.regressions.len(), 1);
        assert!(bad.regressions[0].contains("dp_build/k2/64"));
        let rendered = render_comparison(&bad);
        assert!(rendered.contains("REGRESSION"));
        assert!(rendered.contains("2.50x"));
    }

    #[test]
    fn comparing_a_report_against_itself_passes() {
        let report = run(BaselineMode::Quick);
        let comparison = compare(&report, &report, "dp_build", 3.0);
        assert!(comparison.passed());
        assert!(comparison
            .deltas
            .iter()
            .all(|d| d.ratio.is_none() || (d.ratio.unwrap() - 1.0).abs() < 1e-12));
    }
}
