//! Shared helpers for the Criterion benchmark targets.
//!
//! The actual benchmark definitions live under `benches/`; this library crate
//! only exists so the bench package has a compilation unit and a place for
//! small utilities reused by several bench targets.

/// Deterministic seeds used across all bench targets so that repeated runs
/// measure identical workloads.
pub const BENCH_SEEDS: [u64; 4] = [0xC0FFEE, 0xBADCAFE, 0x5EED, 0x1CEB00DA];

/// Standard destination-count scale used by throughput-style benches.
pub const BENCH_SIZES: [usize; 5] = [16, 64, 256, 1024, 4096];
