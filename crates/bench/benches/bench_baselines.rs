//! E8 — baseline comparison: construction cost of every scheduling strategy
//! on the same heterogeneous cluster (their *quality* is compared by the
//! experiment harness; this bench tracks planning overhead).
//!
//! Drives `Planner::construct` directly with a request built once outside
//! the measured loop, so the numbers isolate pure schedule construction —
//! no per-iteration instance clone, no timing/bounds evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnow_bench::BENCH_SEEDS;
use hnow_core::planner::{self, PlanContext, PlanRequest};
use hnow_model::NetParams;
use hnow_workload::bimodal_cluster;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let net = NetParams::new(3);
    let set = bimodal_cluster(512, 0.25, BENCH_SEEDS[1]).expect("valid instance");
    let request = PlanRequest::new(set, net).with_seed(BENCH_SEEDS[2]);
    let ctx = PlanContext::new();
    let mut group = c.benchmark_group("baseline_construction_n512");
    for name in [
        "greedy",
        "greedy+leaf",
        "fnf",
        "binomial",
        "chain",
        "star",
        "random",
    ] {
        let p = planner::find(name).expect("planner registered");
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| p.construct(black_box(&request), &ctx))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
