//! E8 — baseline comparison: construction cost of every scheduling strategy
//! on the same heterogeneous cluster (their *quality* is compared by the
//! experiment harness; this bench tracks planning overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnow_bench::BENCH_SEEDS;
use hnow_core::{build_schedule, Strategy};
use hnow_model::NetParams;
use hnow_workload::bimodal_cluster;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let net = NetParams::new(3);
    let set = bimodal_cluster(512, 0.25, BENCH_SEEDS[1]).expect("valid instance");
    let mut group = c.benchmark_group("baseline_construction_n512");
    for strategy in [
        Strategy::Greedy,
        Strategy::GreedyRefined,
        Strategy::FastestNodeFirst,
        Strategy::Binomial,
        Strategy::Chain,
        Strategy::Star,
        Strategy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &s| b.iter(|| build_schedule(s, black_box(&set), net, BENCH_SEEDS[2])),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
