//! Batched planning throughput: requests/sec of
//! `hnow_core::planner::plan_many` fanning a mixed request batch across the
//! heuristic planner fleet, at 1/4/8 rayon threads — the first BENCH
//! baseline for the batching layer.
//!
//! Two extra groups isolate the two effects the facade stacks on top of the
//! raw algorithms: the rayon fan-out (thread count sweep) and the Theorem 2
//! DP-table cache (cold cache per batch vs one shared, pre-warmed cache).
//!
//! The vendored rayon stand-in now runs real worker threads, so the thread
//! count sweep measures actual parallel execution: on a multi-core host the
//! 4- and 8-thread points report the fan-out's genuine scaling curve, while
//! on a single core all points collapse to sequential throughput (the
//! workers time-slice one CPU).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hnow_bench::BENCH_SEEDS;
use hnow_core::planner::{self, plan_many_with, PlanContext, PlanRequest, Planner};
use hnow_model::NetParams;
use hnow_workload::{bimodal_cluster, default_message_size, fast_slow_mix, two_class_table};
use std::hint::black_box;

/// Number of requests per batch.
const BATCH: usize = 64;

/// A mixed batch: bimodal clusters of several sizes and latencies.
fn heuristic_requests() -> Vec<PlanRequest> {
    (0..BATCH)
        .map(|i| {
            let n = [16, 24, 32, 48][i % 4];
            let slow_fraction = [0.25, 0.5][i % 2];
            let set = bimodal_cluster(
                n,
                slow_fraction,
                BENCH_SEEDS[i % BENCH_SEEDS.len()] ^ i as u64,
            )
            .expect("valid bimodal cluster");
            PlanRequest::new(set, NetParams::new(1 + (i % 3) as u64)).with_seed(7)
        })
        .collect()
}

/// A batch drawn from one two-class table at one latency, so the DP planner
/// can serve every request from a single whole-network table.
fn dp_requests() -> Vec<PlanRequest> {
    let table = two_class_table();
    let size = default_message_size();
    (0..BATCH)
        .map(|i| {
            let n = 8 + (i % 8);
            let slow_fraction = [0.25, 0.5, 0.75][i % 3];
            let spec = fast_slow_mix(&table, 0, 1, n, slow_fraction, true);
            let set = spec.multicast_set(size).expect("valid cluster");
            PlanRequest::new(set, NetParams::new(2))
        })
        .collect()
}

fn fleet() -> Vec<&'static dyn Planner> {
    [
        "greedy",
        "greedy+leaf",
        "fnf",
        "binomial",
        "chain",
        "star",
        "random",
    ]
    .iter()
    .map(|name| planner::find(name).expect("planner registered"))
    .collect()
}

fn bench_plan_many_threads(c: &mut Criterion) {
    let requests = heuristic_requests();
    let planners = fleet();
    let mut group = c.benchmark_group("plan_many_64req_x_7planners");
    group.throughput(Throughput::Elements(BATCH as u64));
    for threads in [1usize, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                pool.install(|| planner::plan_many(black_box(&planners), black_box(&requests)))
            })
        });
    }
    group.finish();
}

fn bench_dp_table_cache(c: &mut Criterion) {
    let requests = dp_requests();
    let dp: Vec<&dyn Planner> = vec![planner::find("dp-optimal").expect("registered")];
    let mut group = c.benchmark_group("plan_many_dp_cache_64req");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("cold_cache_per_batch", |b| {
        b.iter(|| plan_many_with(black_box(&dp), black_box(&requests), &PlanContext::new()))
    });
    let warm = PlanContext::new();
    // Warm the cache once; the measured iterations then only pay lookups.
    let _ = plan_many_with(&dp, &requests, &warm);
    group.bench_function("shared_warm_cache", |b| {
        b.iter(|| plan_many_with(black_box(&dp), black_box(&requests), black_box(&warm)))
    });
    group.finish();
}

criterion_group!(benches, bench_plan_many_threads, bench_dp_table_cache);
criterion_main!(benches);
