//! E1 — Figure 1: cost of planning and evaluating the paper's example
//! instance with every relevant algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::algorithms::optimal::optimal_schedule;
use hnow_core::schedule::evaluate;
use hnow_experiments::figure1::{figure1_instance, figure1a_schedule};
use hnow_sim::execute;
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let (set, net) = figure1_instance();
    let tree = figure1a_schedule();

    let mut group = c.benchmark_group("figure1");
    group.bench_function("evaluate_schedule_a", |b| {
        b.iter(|| evaluate(black_box(&tree), black_box(&set), net).unwrap())
    });
    group.bench_function("greedy_plain", |b| {
        b.iter(|| greedy_with_options(black_box(&set), net, GreedyOptions::PLAIN))
    });
    group.bench_function("greedy_refined", |b| {
        b.iter(|| greedy_with_options(black_box(&set), net, GreedyOptions::REFINED))
    });
    group.bench_function("exact_optimum", |b| {
        b.iter(|| optimal_schedule(black_box(&set), net))
    });
    group.bench_function("simulate_schedule_a", |b| {
        b.iter(|| execute(black_box(&tree), black_box(&set), net).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
