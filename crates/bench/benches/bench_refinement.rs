//! E7 — the leaf refinement pass: its cost relative to the greedy
//! construction it post-processes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnow_bench::{BENCH_SEEDS, BENCH_SIZES};
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::schedule::refine_leaves;
use hnow_model::NetParams;
use hnow_workload::bimodal_cluster;
use std::hint::black_box;

fn bench_refinement(c: &mut Criterion) {
    let net = NetParams::new(3);
    let mut group = c.benchmark_group("leaf_refinement");
    for &n in BENCH_SIZES.iter().take(4) {
        let set = bimodal_cluster(n, 0.25, BENCH_SEEDS[0]).expect("valid instance");
        let plain = greedy_with_options(&set, net, GreedyOptions::PLAIN);
        group.bench_with_input(BenchmarkId::new("refine_only", n), &n, |b, _| {
            b.iter(|| refine_leaves(black_box(&plain), black_box(&set), net).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy_plus_refine", n), &n, |b, _| {
            b.iter(|| greedy_with_options(black_box(&set), net, GreedyOptions::REFINED))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
