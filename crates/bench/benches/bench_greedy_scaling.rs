//! E2 — Lemma 1: the greedy algorithm scales as O(n log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hnow_bench::BENCH_SEEDS;
use hnow_core::greedy_schedule;
use hnow_model::NetParams;
use hnow_workload::RandomClusterConfig;
use std::hint::black_box;

fn bench_greedy_scaling(c: &mut Criterion) {
    let net = NetParams::new(2);
    let mut group = c.benchmark_group("greedy_scaling");
    for &n in &[64usize, 256, 1024, 4096, 16384] {
        let set = RandomClusterConfig {
            destinations: n,
            ..RandomClusterConfig::default()
        }
        .generate(BENCH_SEEDS[0])
        .expect("valid instance");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| greedy_schedule(black_box(set), net))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy_scaling);
criterion_main!(benches);
