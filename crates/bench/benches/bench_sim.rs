//! E9 — simulator throughput: discrete-event execution of planned schedules,
//! nominal and perturbed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hnow_bench::{BENCH_SEEDS, BENCH_SIZES};
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_model::NetParams;
use hnow_sim::{execute, execute_with_specs, PerturbConfig};
use hnow_workload::RandomClusterConfig;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let net = NetParams::new(2);
    let mut group = c.benchmark_group("simulator");
    for &n in BENCH_SIZES.iter().take(4) {
        let set = RandomClusterConfig {
            destinations: n,
            ..RandomClusterConfig::default()
        }
        .generate(BENCH_SEEDS[3])
        .expect("valid instance");
        let tree = greedy_with_options(&set, net, GreedyOptions::REFINED);
        let perturbed = PerturbConfig::new(0.25, BENCH_SEEDS[0]).perturb(&set);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("nominal", n), &n, |b, _| {
            b.iter(|| execute(black_box(&tree), black_box(&set), net).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("perturbed", n), &n, |b, _| {
            b.iter(|| execute_with_specs(black_box(&tree), black_box(&perturbed), net).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
