//! E4 + E5 — Lemma 2 / Lemma 3 machinery: layered exhaustive search,
//! layeredness checking, and the power-of-two rounding construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnow_bench::BENCH_SEEDS;
use hnow_core::algorithms::optimal::{search, Objective, SearchOptions};
use hnow_core::algorithms::transform::power_of_two_rounding;
use hnow_core::greedy_schedule;
use hnow_core::schedule::is_layered;
use hnow_model::NetParams;
use hnow_workload::RandomClusterConfig;
use std::hint::black_box;

fn bench_layered(c: &mut Criterion) {
    let net = NetParams::new(1);
    let mut group = c.benchmark_group("layered");
    group.sample_size(20);
    for &n in &[5usize, 7] {
        let set = RandomClusterConfig {
            destinations: n,
            min_send: 2,
            max_send: 12,
            min_ratio: 1.0,
            max_ratio: 1.8,
            random_source: true,
        }
        .generate(BENCH_SEEDS[2])
        .expect("valid instance");
        group.bench_with_input(
            BenchmarkId::new("layered_delivery_search", n),
            &set,
            |b, set| {
                b.iter(|| {
                    search(
                        black_box(set),
                        net,
                        SearchOptions {
                            objective: Objective::Delivery,
                            layered_only: true,
                            node_budget: 5_000_000,
                        },
                    )
                })
            },
        );
    }
    let big = RandomClusterConfig {
        destinations: 1024,
        ..RandomClusterConfig::default()
    }
    .generate(BENCH_SEEDS[3])
    .expect("valid instance");
    let tree = greedy_schedule(&big, net);
    group.bench_function("is_layered_n1024", |b| {
        b.iter(|| is_layered(black_box(&tree), black_box(&big), net).unwrap())
    });
    group.bench_function("power_of_two_rounding_n1024", |b| {
        b.iter(|| power_of_two_rounding(black_box(&big)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_layered);
criterion_main!(benches);
