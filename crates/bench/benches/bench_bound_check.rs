//! E3 — Theorem 1: cost of the exact reference solver used to audit the
//! approximation bound (branch-and-bound on small instances).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnow_bench::BENCH_SEEDS;
use hnow_core::algorithms::optimal::{search, SearchOptions};
use hnow_core::bounds::{lower_bound, theorem1_bound};
use hnow_model::NetParams;
use hnow_workload::RandomClusterConfig;
use std::hint::black_box;

fn bench_bound_check(c: &mut Criterion) {
    let net = NetParams::new(2);
    let mut group = c.benchmark_group("bound_check");
    group.sample_size(20);
    for &n in &[5usize, 7, 9] {
        let set = RandomClusterConfig {
            destinations: n,
            min_send: 5,
            max_send: 40,
            min_ratio: 1.05,
            max_ratio: 1.85,
            random_source: true,
        }
        .generate(BENCH_SEEDS[1])
        .expect("valid instance");
        group.bench_with_input(BenchmarkId::new("exact_search", n), &set, |b, set| {
            b.iter(|| {
                search(
                    black_box(set),
                    net,
                    SearchOptions {
                        node_budget: 5_000_000,
                        ..SearchOptions::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("bound_terms", n), &set, |b, set| {
            b.iter(|| {
                let lb = lower_bound(black_box(set), net);
                theorem1_bound(set, lb.value)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_check);
criterion_main!(benches);
