//! E6 — Theorem 2: the limited-heterogeneity dynamic program scales
//! polynomially (O(n^{2k})) in the cluster size for fixed k.
//!
//! Sizes up to k2/n=512 and k4/per_class=8 are only tractable because of the
//! allocation-free fill kernel; the `dp_fill_mode` group compares the
//! shell-parallel path, the sequential path and the pre-kernel reference
//! fill head to head at one size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hnow_core::algorithms::dp::{DpFillMode, DpTable};
use hnow_model::{MessageSize, NetParams, TypedMulticast};
use hnow_workload::{standard_class_table, two_class_table};
use std::hint::black_box;

fn bench_dp_scaling(c: &mut Criterion) {
    let net = NetParams::new(2);
    let size = MessageSize::from_kib(4);
    let mut group = c.benchmark_group("dp_scaling");
    group.sample_size(10);

    // k = 2: grow the cluster. The largest sizes take seconds per build —
    // they exist to pin the kernel's reach, far past the pre-kernel n = 64.
    let two = two_class_table();
    for &n in &[8usize, 16, 32, 64, 128, 256, 512] {
        let typed = TypedMulticast::from_classes(&two, size, 0, vec![n / 2, n - n / 2]).unwrap();
        group.bench_with_input(BenchmarkId::new("k2", n), &typed, |b, typed| {
            b.iter(|| DpTable::build(black_box(typed), net))
        });
    }

    // k = 4: smaller clusters, same polynomial structure (pre-kernel ceiling
    // was per_class = 3).
    let four = standard_class_table();
    for &per_class in &[1usize, 2, 3, 4, 8] {
        let typed = TypedMulticast::from_classes(&four, size, 0, vec![per_class; 4]).unwrap();
        group.bench_with_input(BenchmarkId::new("k4", per_class * 4), &typed, |b, typed| {
            b.iter(|| DpTable::build(black_box(typed), net))
        });
    }

    // Reconstruction and queries are effectively free once the table exists.
    let typed = TypedMulticast::from_classes(&two, size, 0, vec![16, 16]).unwrap();
    let table = DpTable::build(&typed, net);
    group.bench_function("reconstruct_k2_n32", |b| {
        b.iter(|| black_box(&table).reconstruct_schedule().unwrap())
    });
    group.bench_function("query_k2_n32", |b| {
        b.iter(|| black_box(&table).query(0, &[7, 9]).unwrap())
    });
    group.finish();

    // Shell-parallel vs sequential kernel vs the pre-kernel reference fill,
    // at a size where the difference is visible but the reference is still
    // bearable. (With the vendored sequential rayon the two kernel paths
    // coincide; the group keeps the comparison in the criterion output so
    // the gap appears as soon as a real rayon is swapped in.)
    let mut modes = c.benchmark_group("dp_fill_mode");
    modes.sample_size(10);
    let typed = TypedMulticast::from_classes(&two, size, 0, vec![48, 48]).unwrap();
    for (name, mode) in [
        ("sequential", DpFillMode::Sequential),
        ("parallel", DpFillMode::Parallel),
    ] {
        modes.bench_with_input(BenchmarkId::new(name, 96), &typed, |b, typed| {
            b.iter(|| DpTable::build_with_mode(black_box(typed), net, mode))
        });
    }
    modes.bench_with_input(BenchmarkId::new("reference", 96), &typed, |b, typed| {
        b.iter(|| DpTable::build_reference(black_box(typed), net))
    });
    modes.finish();
}

criterion_group!(benches, bench_dp_scaling);
criterion_main!(benches);
