//! Error types for schedule construction and evaluation.

use hnow_model::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised while building, transforming or evaluating multicast
/// schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A node id referenced a node outside the schedule's arena.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the schedule.
        num_nodes: usize,
    },
    /// Attempted to attach a node that already has a parent (or the source).
    AlreadyAttached {
        /// The node that was attached twice.
        node: NodeId,
    },
    /// Attempted to attach a child to a parent that has not itself received
    /// the message (and is not the source).
    ParentNotAttached {
        /// The detached prospective parent.
        parent: NodeId,
    },
    /// The schedule does not yet cover every destination, but an operation
    /// requiring a complete schedule was invoked.
    IncompleteSchedule {
        /// How many destinations are still unattached.
        missing: usize,
    },
    /// The schedule and the multicast set disagree on the number of
    /// participating nodes.
    SizeMismatch {
        /// Nodes in the schedule tree.
        tree_nodes: usize,
        /// Nodes in the multicast set.
        set_nodes: usize,
    },
    /// An insertion position was past the end of a child list.
    PositionOutOfRange {
        /// Requested position.
        position: usize,
        /// Current number of children.
        len: usize,
    },
    /// Schedule reconstruction ran out of concrete nodes of a class — the
    /// typed instance and the dynamic-programming table disagree.
    ClassPoolExhausted {
        /// The class whose pool ran dry.
        class: usize,
    },
    /// A precomputed DP table was asked about an instance it does not cover
    /// (different class overheads, or counts beyond its dimensions).
    DpTableMismatch {
        /// Number of classes in the table.
        table_k: usize,
        /// Number of classes in the request.
        request_k: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for a schedule of {num_nodes} nodes"
                )
            }
            CoreError::AlreadyAttached { node } => {
                write!(f, "node {node} is already attached to the schedule")
            }
            CoreError::ParentNotAttached { parent } => {
                write!(f, "parent {parent} has not received the message yet")
            }
            CoreError::IncompleteSchedule { missing } => {
                write!(f, "schedule is missing {missing} destination(s)")
            }
            CoreError::SizeMismatch {
                tree_nodes,
                set_nodes,
            } => write!(
                f,
                "schedule has {tree_nodes} nodes but the multicast set has {set_nodes}"
            ),
            CoreError::PositionOutOfRange { position, len } => {
                write!(
                    f,
                    "insertion position {position} exceeds child-list length {len}"
                )
            }
            CoreError::ClassPoolExhausted { class } => {
                write!(
                    f,
                    "no concrete nodes of class {class} left during reconstruction"
                )
            }
            CoreError::DpTableMismatch { table_k, request_k } => {
                write!(
                    f,
                    "DP table over {table_k} class(es) does not cover the requested \
                     {request_k}-class instance"
                )
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases = vec![
            (
                CoreError::NodeOutOfRange {
                    node: NodeId(9),
                    num_nodes: 4,
                },
                "out of range",
            ),
            (
                CoreError::AlreadyAttached { node: NodeId(2) },
                "already attached",
            ),
            (
                CoreError::ParentNotAttached { parent: NodeId(3) },
                "not received",
            ),
            (CoreError::IncompleteSchedule { missing: 2 }, "missing 2"),
            (
                CoreError::SizeMismatch {
                    tree_nodes: 3,
                    set_nodes: 5,
                },
                "3 nodes",
            ),
            (
                CoreError::PositionOutOfRange {
                    position: 4,
                    len: 1,
                },
                "position 4",
            ),
            (CoreError::ClassPoolExhausted { class: 1 }, "class 1"),
            (
                CoreError::DpTableMismatch {
                    table_k: 2,
                    request_k: 3,
                },
                "does not cover",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error>(_: E) {}
        assert_error(CoreError::IncompleteSchedule { missing: 0 });
    }
}
