//! Optimal multicast for limited heterogeneity (Section 4, Theorem 2).
//!
//! When the cluster contains only `k` distinct workstation **types**, the
//! optimal multicast problem becomes tractable: the paper's Lemma 4 gives a
//! recurrence over states `τ(s, i_1, …, i_k)` — the minimum reception
//! completion time of a multicast from a source of type `s` to `i_j`
//! destinations of type `j`:
//!
//! ```text
//! τ(s, 0, …, 0) = 0
//! τ(s, i_1, …, i_k) =
//!   min over ℓ with i_ℓ ≥ 1, and over 0 ≤ y_j ≤ i_j (y_ℓ ≤ i_ℓ − 1), of
//!     max( τ(ℓ, y_1, …, y_k)                       + S(s) + L + R(ℓ),
//!          τ(s, i_1 − y_1, …, i_ℓ − 1 − y_ℓ, …)    + S(s) )
//! ```
//!
//! The source's first transmission goes to some node of type `ℓ`, which then
//! optimally serves a sub-multicast described by the `y_j`; concurrently the
//! source (after its first sending overhead) optimally serves everything
//! that remains. Filling the table bottom-up costs `O(k² · n^{2k})`
//! (`O(n^{2k})` for constant `k`), and the completed table answers *every*
//! multicast over the same node types in constant time — the paper suggests
//! precomputing it exactly for this reason.
//!
//! [`DpTable`] exposes the table, the optimum for the instance it was built
//! from, arbitrary queries, and reconstruction of an optimal
//! [`ScheduleTree`].

use crate::error::CoreError;
use crate::schedule::tree::ScheduleTree;
use hnow_model::{NetParams, NodeId, NodeSpec, Time, TypedMulticast};
use std::collections::VecDeque;

/// Dynamic-programming table of optimal reception completion times for a
/// limited-heterogeneity cluster.
#[derive(Debug, Clone)]
pub struct DpTable {
    typed: TypedMulticast,
    net: NetParams,
    /// Upper bound (inclusive) of each count dimension: the instance's
    /// per-class destination counts.
    dims: Vec<usize>,
    /// Radix offsets for mixed-radix indexing of count vectors.
    strides: Vec<usize>,
    /// Number of count-vector states (product of `dims[j] + 1`).
    count_states: usize,
    /// `value[s * count_states + idx(counts)]` = τ(s, counts).
    value: Vec<Time>,
    /// Best first-transmission choice per state: `(ℓ, packed index of the
    /// subtree count vector y)`. `usize::MAX` for base states.
    choice: Vec<(usize, usize)>,
}

impl DpTable {
    /// Builds the full table for the given typed instance: all states
    /// `τ(s, j_1, …, j_k)` with `j_ℓ ≤ i_ℓ` and every source type `s`.
    pub fn build(typed: &TypedMulticast, net: NetParams) -> DpTable {
        let k = typed.k();
        let dims: Vec<usize> = typed.counts().to_vec();
        let mut strides = vec![0usize; k];
        let mut count_states = 1usize;
        for j in 0..k {
            strides[j] = count_states;
            count_states *= dims[j] + 1;
        }
        let total_states = k * count_states;
        let mut table = DpTable {
            typed: typed.clone(),
            net,
            dims,
            strides,
            count_states,
            value: vec![Time::MAX; total_states],
            choice: vec![(usize::MAX, usize::MAX); total_states],
        };
        table.fill();
        table
    }

    /// Convenience: builds the table and immediately reconstructs an optimal
    /// schedule for the instance, returning `(schedule, optimum)`.
    pub fn optimal_schedule(
        typed: &TypedMulticast,
        net: NetParams,
    ) -> Result<(ScheduleTree, Time), CoreError> {
        let table = DpTable::build(typed, net);
        let tree = table.reconstruct_schedule()?;
        Ok((tree, table.optimum()))
    }

    fn idx_of(&self, counts: &[usize]) -> usize {
        counts.iter().zip(&self.strides).map(|(&c, &s)| c * s).sum()
    }

    fn counts_of(&self, mut idx: usize) -> Vec<usize> {
        self.dims
            .iter()
            .map(|&dim| {
                let count = idx % (dim + 1);
                idx /= dim + 1;
                count
            })
            .collect()
    }

    fn state(&self, source: usize, count_idx: usize) -> usize {
        source * self.count_states + count_idx
    }

    fn fill(&mut self) {
        let k = self.dims.len();
        // Order count vectors by their total so every dependency (which has a
        // strictly smaller total) is already computed.
        let mut order: Vec<usize> = (0..self.count_states).collect();
        order.sort_by_key(|&idx| self.counts_of(idx).iter().sum::<usize>());

        for &count_idx in &order {
            let counts = self.counts_of(count_idx);
            let total: usize = counts.iter().sum();
            for s in 0..k {
                let state = self.state(s, count_idx);
                if total == 0 {
                    self.value[state] = Time::ZERO;
                    continue;
                }
                let send_s = self.typed.spec_of(s).send();
                let mut best = Time::MAX;
                let mut best_choice = (usize::MAX, usize::MAX);
                for first in 0..k {
                    if counts[first] == 0 {
                        continue;
                    }
                    let recv_first = self.typed.spec_of(first).recv();
                    let head = send_s + self.net.latency() + recv_first;
                    // Remaining counts if the subtree takes `y` plus the
                    // first node itself.
                    let mut avail = counts.clone();
                    avail[first] -= 1;
                    // Enumerate all y with 0 ≤ y_j ≤ avail[j].
                    let mut y = vec![0usize; k];
                    loop {
                        let y_idx = self.idx_of(&y);
                        let subtree = self.value[self.state(first, y_idx)];
                        let mut rest = vec![0usize; k];
                        for j in 0..k {
                            rest[j] = avail[j] - y[j];
                        }
                        let rest_idx = self.idx_of(&rest);
                        let remaining = self.value[self.state(s, rest_idx)];
                        debug_assert_ne!(subtree, Time::MAX);
                        debug_assert_ne!(remaining, Time::MAX);
                        let completion = (subtree + head).max(remaining + send_s);
                        if completion < best {
                            best = completion;
                            best_choice = (first, y_idx);
                        }
                        // Advance y in mixed radix.
                        let mut j = 0;
                        loop {
                            if j == k {
                                break;
                            }
                            if y[j] < avail[j] {
                                y[j] += 1;
                                break;
                            }
                            y[j] = 0;
                            j += 1;
                        }
                        if j == k {
                            break;
                        }
                    }
                }
                self.value[state] = best;
                self.choice[state] = best_choice;
            }
        }
    }

    /// Number of distinct types `k`.
    pub fn k(&self) -> usize {
        self.dims.len()
    }

    /// Upper bound (inclusive) of each count dimension — the per-class
    /// destination counts of the instance the table was built from.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The class overheads the table was built over, in class-index order.
    pub fn class_specs(&self) -> &[NodeSpec] {
        self.typed.specs()
    }

    /// Whether a per-class count vector lies inside the table's dimensions
    /// (and therefore can be queried and reconstructed from this table).
    pub fn covers(&self, counts: &[usize]) -> bool {
        counts.len() == self.k() && counts.iter().zip(&self.dims).all(|(&c, &d)| c <= d)
    }

    /// Number of states stored in the table.
    pub fn num_states(&self) -> usize {
        self.value.len()
    }

    /// The optimal reception completion time for the instance the table was
    /// built from.
    pub fn optimum(&self) -> Time {
        self.query(self.typed.source_class(), self.typed.counts())
            .expect("the instance's own state is always in the table")
    }

    /// τ(source type, per-class counts) for any sub-instance covered by the
    /// table (i.e. `counts[j] ≤` the build instance's counts). Returns `None`
    /// for out-of-range queries.
    pub fn query(&self, source_class: usize, counts: &[usize]) -> Option<Time> {
        if source_class >= self.k() || counts.len() != self.k() {
            return None;
        }
        if counts.iter().zip(&self.dims).any(|(&c, &d)| c > d) {
            return None;
        }
        Some(self.value[self.state(source_class, self.idx_of(counts))])
    }

    /// Reconstructs an optimal schedule tree for the build instance, over the
    /// node ids of [`TypedMulticast::to_multicast_set`].
    pub fn reconstruct_schedule(&self) -> Result<ScheduleTree, CoreError> {
        let typed = self.typed.clone();
        self.schedule_for(&typed).map(|(tree, _)| tree)
    }

    /// Reconstructs an optimal schedule (and its value) for **any** typed
    /// instance covered by this table: same class overheads in the same
    /// order, per-class counts within [`DpTable::dims`]. The source class
    /// may differ from the build instance's — the table stores every source
    /// type.
    ///
    /// This is the whole-network reuse the paper recommends in Section 4:
    /// build the table once for the full cluster, then answer every
    /// sub-multicast without re-running the dynamic program.
    pub fn schedule_for(&self, typed: &TypedMulticast) -> Result<(ScheduleTree, Time), CoreError> {
        if typed.specs() != self.typed.specs()
            || !self.covers(typed.counts())
            || typed.source_class() >= self.k()
        {
            return Err(CoreError::DpTableMismatch {
                table_k: self.k(),
                request_k: typed.k(),
            });
        }
        let n = typed.total_destinations();
        let mut tree = ScheduleTree::new(n + 1);
        // Pools of concrete node ids per class, consumed front to back.
        let mut pools: Vec<VecDeque<NodeId>> = (0..self.k())
            .map(|c| typed.node_ids_for_class(c).into())
            .collect();
        self.expand(
            typed.source_class(),
            self.idx_of(typed.counts()),
            NodeId::SOURCE,
            &mut pools,
            &mut tree,
        )?;
        let value = self.value[self.state(typed.source_class(), self.idx_of(typed.counts()))];
        Ok((tree, value))
    }

    fn expand(
        &self,
        source_class: usize,
        count_idx: usize,
        root: NodeId,
        pools: &mut [VecDeque<NodeId>],
        tree: &mut ScheduleTree,
    ) -> Result<(), CoreError> {
        let counts = self.counts_of(count_idx);
        if counts.iter().all(|&c| c == 0) {
            return Ok(());
        }
        let (first, y_idx) = self.choice[self.state(source_class, count_idx)];
        debug_assert_ne!(first, usize::MAX, "non-base state must have a choice");
        let child = pools[first]
            .pop_front()
            .ok_or(CoreError::ClassPoolExhausted { class: first })?;
        tree.attach(root, child)?;
        // The child's subtree consumes the y nodes.
        self.expand(first, y_idx, child, pools, tree)?;
        // The root continues with everything that remains.
        let y = self.counts_of(y_idx);
        let mut rest = counts;
        rest[first] -= 1;
        for j in 0..self.k() {
            rest[j] -= y[j];
        }
        let rest_idx = self.idx_of(&rest);
        self.expand(source_class, rest_idx, root, pools, tree)
    }
}

/// Convenience: computes the optimal reception completion time of an
/// arbitrary [`MulticastSet`](hnow_model::MulticastSet) by grouping its nodes
/// into types and running the dynamic program.
///
/// This is exact for any instance, but its running time is exponential in
/// the number of *distinct* node types, so it is only practical when that
/// number is small (Theorem 2's setting).
pub fn dp_optimum(set: &hnow_model::MulticastSet, net: NetParams) -> Time {
    let typed = TypedMulticast::from_multicast_set(set);
    DpTable::build(&typed, net).optimum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy::{greedy_with_options, GreedyOptions};
    use crate::schedule::times::reception_completion;
    use crate::schedule::validate::validate;
    use hnow_model::{MulticastSet, NodeSpec};

    fn figure1_typed() -> TypedMulticast {
        TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            1,
            vec![3, 1],
        )
        .unwrap()
    }

    #[test]
    fn figure1_optimum_is_eight() {
        let table = DpTable::build(&figure1_typed(), NetParams::new(1));
        // The paper's Figure 1 shows schedules of length 10 and 9; the true
        // optimum for this instance is 8.
        assert_eq!(table.optimum(), Time::new(8));
    }

    #[test]
    fn reconstruction_matches_table_value() {
        let typed = figure1_typed();
        let net = NetParams::new(1);
        let (tree, value) = DpTable::optimal_schedule(&typed, net).unwrap();
        let set = typed.to_multicast_set().unwrap();
        validate(&tree, &set).unwrap();
        assert_eq!(reception_completion(&tree, &set, net).unwrap(), value);
    }

    #[test]
    fn single_type_reduces_to_homogeneous_broadcast() {
        // k = 1, recv = 0, L = 0: optimum is ⌈log2(n+1)⌉ · send.
        for n in [1usize, 2, 3, 4, 7, 8, 15] {
            let typed = TypedMulticast::new(vec![NodeSpec::new(3, 0)], 0, vec![n]).unwrap();
            let table = DpTable::build(&typed, NetParams::new(0));
            let rounds = usize::BITS - n.leading_zeros();
            assert_eq!(table.optimum(), Time::new(3 * u64::from(rounds)), "n = {n}");
        }
    }

    #[test]
    fn empty_multicast_is_zero() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            0,
            vec![0, 0],
        )
        .unwrap();
        let table = DpTable::build(&typed, NetParams::new(1));
        assert_eq!(table.optimum(), Time::ZERO);
        let tree = table.reconstruct_schedule().unwrap();
        assert!(tree.is_complete());
        assert_eq!(tree.num_destinations(), 0);
    }

    #[test]
    fn dp_never_exceeds_greedy() {
        let cases = vec![
            (
                vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
                1,
                vec![3, 1],
            ),
            (
                vec![NodeSpec::new(1, 1), NodeSpec::new(4, 7)],
                0,
                vec![5, 5],
            ),
            (
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(2, 2),
                    NodeSpec::new(6, 9),
                ],
                2,
                vec![4, 3, 2],
            ),
        ];
        for latency in [0u64, 1, 3] {
            let net = NetParams::new(latency);
            for (specs, src, counts) in &cases {
                let typed = TypedMulticast::new(specs.clone(), *src, counts.clone()).unwrap();
                let set = typed.to_multicast_set().unwrap();
                let dp = DpTable::build(&typed, net).optimum();
                let greedy_tree = greedy_with_options(&set, net, GreedyOptions::REFINED);
                let greedy = reception_completion(&greedy_tree, &set, net).unwrap();
                assert!(dp <= greedy, "dp {dp} > greedy {greedy}");
            }
        }
    }

    #[test]
    fn table_answers_sub_multicast_queries() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            1,
            vec![3, 2],
        )
        .unwrap();
        let net = NetParams::new(1);
        let table = DpTable::build(&typed, net);
        // Every sub-instance must agree with a table built directly for it.
        for a in 0..=3usize {
            for b in 0..=2usize {
                for s in 0..2usize {
                    let direct = TypedMulticast::new(
                        vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
                        s,
                        vec![a, b],
                    )
                    .unwrap();
                    let expected = DpTable::build(&direct, net).optimum();
                    assert_eq!(table.query(s, &[a, b]), Some(expected), "s={s} a={a} b={b}");
                }
            }
        }
        // Out-of-range queries.
        assert_eq!(table.query(0, &[4, 0]), None);
        assert_eq!(table.query(5, &[1, 1]), None);
        assert_eq!(table.query(0, &[1]), None);
    }

    #[test]
    fn schedule_for_serves_sub_instances_and_other_sources() {
        let specs = vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)];
        let net = NetParams::new(1);
        let full = TypedMulticast::new(specs.clone(), 1, vec![3, 2]).unwrap();
        let table = DpTable::build(&full, net);
        assert_eq!(table.dims(), &[3, 2]);
        assert_eq!(table.class_specs(), &specs[..]);
        assert!(table.covers(&[2, 1]));
        assert!(!table.covers(&[4, 0]));
        assert!(!table.covers(&[1]));

        // Every covered sub-instance (including other source classes) must
        // match a table built directly for it, value and reconstruction.
        for a in 0..=3usize {
            for b in 0..=2usize {
                for s in 0..2usize {
                    let sub = TypedMulticast::new(specs.clone(), s, vec![a, b]).unwrap();
                    let (tree, value) = table.schedule_for(&sub).unwrap();
                    let direct = DpTable::build(&sub, net);
                    assert_eq!(value, direct.optimum(), "s={s} a={a} b={b}");
                    let set = sub.to_multicast_set().unwrap();
                    validate(&tree, &set).unwrap();
                    assert_eq!(reception_completion(&tree, &set, net).unwrap(), value);
                }
            }
        }

        // Out-of-coverage requests are rejected.
        let too_big = TypedMulticast::new(specs.clone(), 0, vec![4, 0]).unwrap();
        assert!(matches!(
            table.schedule_for(&too_big),
            Err(CoreError::DpTableMismatch { .. })
        ));
        let other_specs = TypedMulticast::new(vec![NodeSpec::new(5, 9)], 0, vec![2]).unwrap();
        assert!(matches!(
            table.schedule_for(&other_specs),
            Err(CoreError::DpTableMismatch { .. })
        ));
    }

    #[test]
    fn dp_optimum_for_plain_multicast_set() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
            ],
        )
        .unwrap();
        assert_eq!(dp_optimum(&set, NetParams::new(1)), Time::new(8));
    }

    #[test]
    fn single_destination_value() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(2, 5), NodeSpec::new(3, 7)],
            0,
            vec![0, 1],
        )
        .unwrap();
        let table = DpTable::build(&typed, NetParams::new(4));
        // send(src) + L + recv(dest) = 2 + 4 + 7.
        assert_eq!(table.optimum(), Time::new(13));
    }

    #[test]
    fn reconstruction_respects_class_membership() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(5, 8)],
            0,
            vec![4, 3],
        )
        .unwrap();
        let net = NetParams::new(2);
        let (tree, value) = DpTable::optimal_schedule(&typed, net).unwrap();
        let set = typed.to_multicast_set().unwrap();
        validate(&tree, &set).unwrap();
        assert_eq!(reception_completion(&tree, &set, net).unwrap(), value);
        // The set's canonical order puts the four fast nodes first.
        assert_eq!(set.destination(0), NodeSpec::new(1, 1));
        assert_eq!(set.destination(6), NodeSpec::new(5, 8));
    }
}
