//! Optimal multicast for limited heterogeneity (Section 4, Theorem 2).
//!
//! When the cluster contains only `k` distinct workstation **types**, the
//! optimal multicast problem becomes tractable: the paper's Lemma 4 gives a
//! recurrence over states `τ(s, i_1, …, i_k)` — the minimum reception
//! completion time of a multicast from a source of type `s` to `i_j`
//! destinations of type `j`:
//!
//! ```text
//! τ(s, 0, …, 0) = 0
//! τ(s, i_1, …, i_k) =
//!   min over ℓ with i_ℓ ≥ 1, and over 0 ≤ y_j ≤ i_j (y_ℓ ≤ i_ℓ − 1), of
//!     max( τ(ℓ, y_1, …, y_k)                       + S(s) + L + R(ℓ),
//!          τ(s, i_1 − y_1, …, i_ℓ − 1 − y_ℓ, …)    + S(s) )
//! ```
//!
//! The source's first transmission goes to some node of type `ℓ`, which then
//! optimally serves a sub-multicast described by the `y_j`; concurrently the
//! source (after its first sending overhead) optimally serves everything
//! that remains. Filling the table bottom-up costs `O(k² · n^{2k})`
//! (`O(n^{2k})` for constant `k`), and the completed table answers *every*
//! multicast over the same node types in constant time — the paper suggests
//! precomputing it exactly for this reason.
//!
//! [`DpTable`] exposes the table, the optimum for the instance it was built
//! from, arbitrary queries, and reconstruction of an optimal
//! [`ScheduleTree`].
//!
//! # Fill kernel
//!
//! The table build is the hottest path in the whole workspace (the paper
//! recommends precomputing one table per network precisely because it is
//! expensive), so [`DpTable::build`] runs an allocation-free kernel instead
//! of the straightforward recurrence transcription:
//!
//! * **Linear mixed-radix indexing.** Count vectors are packed into a mixed
//!   radix integer. Because the subtracted vector of the recurrence satisfies
//!   `y ≤ avail` componentwise, the subtraction has no borrows, so
//!   `idx(avail − y) = idx(avail) − idx(y)` — the whole y-enumeration is pure
//!   index arithmetic with zero per-iteration heap traffic.
//! * **Shell decomposition.** Every dependency of a state has a strictly
//!   smaller total destination count, so grouping states into "shells" of
//!   equal total (by counting sort over a precomputed total array, replacing
//!   a comparison sort that allocated a digit vector per state) yields a
//!   correct parallel wavefront: states within one shell are independent and
//!   are filled with rayon, shell by shell. Small tables keep the purely
//!   sequential path.
//!
//! The pre-kernel transcription survives as [`DpTable::build_reference`], an
//! executable specification used by the differential proptests and benches.

use crate::error::CoreError;
use crate::schedule::tree::ScheduleTree;
use hnow_model::{NetParams, NodeId, NodeSpec, Time, TypedMulticast};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Largest `k` for which the fill kernel can keep its per-state digit
/// scratch in fixed stack arrays (and therefore the largest `k` filled in
/// parallel). `k = 8` already implies at least `2^8` states per source type;
/// larger `k` are filled by the sequential heap-scratch path.
const MAX_PACKED_K: usize = 8;

/// Table size (count states) below which the sequential fill always wins:
/// tiny tables finish faster than a parallel fan-out can be set up.
const PAR_MIN_STATES: usize = 1 << 11;

/// Shells smaller than this are filled inline even in parallel mode. Now
/// that rayon dispatches to real worker threads, handing out a shell costs
/// an actual enqueue/wake round-trip, so small shells stay inline.
const PAR_MIN_SHELL: usize = 32;

/// How [`DpTable::build_with_mode`] executes the table fill. All modes
/// produce bit-identical tables (values *and* reconstruction choices); they
/// differ only in scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DpFillMode {
    /// Choose sequential or shell-parallel from the table size.
    #[default]
    Auto,
    /// Single-threaded fill.
    Sequential,
    /// Shell-parallel fill regardless of table size (still sequential when
    /// `k` exceeds the packed-scratch limit).
    Parallel,
}

/// Per-state output of the fill kernel: the optimal value and
/// first-transmission choice for every source type, ready to be written back
/// into the table after a (possibly parallel) shell evaluation.
#[derive(Debug, Clone, Copy)]
struct StateOut {
    count_idx: usize,
    values: [Time; MAX_PACKED_K],
    choices: [(usize, usize); MAX_PACKED_K],
}

/// Dynamic-programming table of optimal reception completion times for a
/// limited-heterogeneity cluster.
#[derive(Debug, Clone)]
pub struct DpTable {
    typed: TypedMulticast,
    net: NetParams,
    /// Upper bound (inclusive) of each count dimension: the instance's
    /// per-class destination counts.
    dims: Vec<usize>,
    /// Radix offsets for mixed-radix indexing of count vectors.
    strides: Vec<usize>,
    /// Number of count-vector states (product of `dims[j] + 1`).
    count_states: usize,
    /// `value[s * count_states + idx(counts)]` = τ(s, counts).
    value: Vec<Time>,
    /// Best first-transmission choice per state: `(ℓ, packed index of the
    /// subtree count vector y)`. `usize::MAX` for base states.
    choice: Vec<(usize, usize)>,
}

impl DpTable {
    /// Builds the full table for the given typed instance: all states
    /// `τ(s, j_1, …, j_k)` with `j_ℓ ≤ i_ℓ` and every source type `s`,
    /// using the allocation-free kernel with automatic shell parallelism.
    pub fn build(typed: &TypedMulticast, net: NetParams) -> DpTable {
        DpTable::build_with_mode(typed, net, DpFillMode::Auto)
    }

    /// [`DpTable::build`] with an explicit fill-scheduling mode. Exposed so
    /// benchmarks can compare the sequential and shell-parallel paths; the
    /// resulting tables are identical in every mode.
    pub fn build_with_mode(typed: &TypedMulticast, net: NetParams, mode: DpFillMode) -> DpTable {
        let mut table = DpTable::empty(typed, net);
        table.fill(mode);
        table
    }

    /// Builds the table with the straightforward recurrence transcription
    /// that predates the kernel: comparison-sorted state order and
    /// per-iteration digit vectors. Kept as an executable specification — the
    /// differential proptests assert the kernel reproduces its values and
    /// choices exactly — and as the baseline in the fill-mode benchmarks. Use
    /// [`DpTable::build`] everywhere else; this is *much* slower.
    pub fn build_reference(typed: &TypedMulticast, net: NetParams) -> DpTable {
        let mut table = DpTable::empty(typed, net);
        table.fill_reference();
        table
    }

    /// Allocates an unfilled table: dimensions, strides and `MAX`-initialised
    /// value/choice storage.
    fn empty(typed: &TypedMulticast, net: NetParams) -> DpTable {
        let k = typed.k();
        let dims: Vec<usize> = typed.counts().to_vec();
        let mut strides = vec![0usize; k];
        let mut count_states = 1usize;
        for j in 0..k {
            strides[j] = count_states;
            count_states *= dims[j] + 1;
        }
        let total_states = k * count_states;
        DpTable {
            typed: typed.clone(),
            net,
            dims,
            strides,
            count_states,
            value: vec![Time::MAX; total_states],
            choice: vec![(usize::MAX, usize::MAX); total_states],
        }
    }

    /// Convenience: builds the table and immediately reconstructs an optimal
    /// schedule for the instance, returning `(schedule, optimum)`.
    pub fn optimal_schedule(
        typed: &TypedMulticast,
        net: NetParams,
    ) -> Result<(ScheduleTree, Time), CoreError> {
        let table = DpTable::build(typed, net);
        let tree = table.reconstruct_schedule()?;
        Ok((tree, table.optimum()))
    }

    fn idx_of(&self, counts: &[usize]) -> usize {
        counts.iter().zip(&self.strides).map(|(&c, &s)| c * s).sum()
    }

    fn counts_of(&self, mut idx: usize) -> Vec<usize> {
        self.dims
            .iter()
            .map(|&dim| {
                let count = idx % (dim + 1);
                idx /= dim + 1;
                count
            })
            .collect()
    }

    fn state(&self, source: usize, count_idx: usize) -> usize {
        source * self.count_states + count_idx
    }

    fn fill(&mut self, mode: DpFillMode) {
        let k = self.dims.len();
        let max_total: usize = self.dims.iter().sum();

        // Total destination count per state, by running mixed-radix
        // increment (amortised O(1) per state), and counting sort of the
        // states into shells of equal total. Within a shell the order is
        // ascending state index, matching the reference fill's stable sort.
        let mut totals = vec![0u32; self.count_states];
        let mut shell_start = vec![0usize; max_total + 2];
        {
            let mut digits = vec![0usize; k];
            let mut total = 0usize;
            for slot in totals.iter_mut() {
                *slot = total as u32;
                shell_start[total + 1] += 1;
                for (digit, &dim) in digits.iter_mut().zip(&self.dims) {
                    if *digit < dim {
                        *digit += 1;
                        total += 1;
                        break;
                    }
                    total -= *digit;
                    *digit = 0;
                }
            }
        }
        for t in 0..=max_total {
            shell_start[t + 1] += shell_start[t];
        }
        let mut order = vec![0usize; self.count_states];
        {
            let mut cursor = shell_start.clone();
            for (idx, &total) in totals.iter().enumerate() {
                order[cursor[total as usize]] = idx;
                cursor[total as usize] += 1;
            }
        }

        // Base shell: the all-zero count vector is trivially complete for
        // every source type.
        for s in 0..k {
            let state = self.state(s, 0);
            self.value[state] = Time::ZERO;
        }

        // Every dependency of a shell-t state (both the subtree counts y and
        // the remainder avail − y) has total < t, so shells are a correct
        // parallel frontier: states within one shell never read each other.
        let parallel = k <= MAX_PACKED_K
            && match mode {
                DpFillMode::Sequential => false,
                DpFillMode::Parallel => true,
                DpFillMode::Auto => self.count_states >= PAR_MIN_STATES,
            };

        if k <= MAX_PACKED_K {
            for t in 1..=max_total {
                let shell = &order[shell_start[t]..shell_start[t + 1]];
                if parallel && shell.len() >= PAR_MIN_SHELL {
                    let outs: Vec<StateOut> = shell
                        .par_iter()
                        .map(|&count_idx| self.kernel_packed(count_idx))
                        .collect();
                    for out in &outs {
                        self.store(out);
                    }
                } else {
                    for &count_idx in shell {
                        let out = self.kernel_packed(count_idx);
                        self.store(&out);
                    }
                }
            }
        } else {
            // k beyond the stack-scratch limit: sequential fill with heap
            // scratch reused across all states (still no per-state or
            // per-iteration allocation).
            let mut digits = vec![0usize; k];
            let mut avail = vec![0usize; k];
            let mut y = vec![0usize; k];
            let mut values = vec![Time::MAX; k];
            let mut choices = vec![(usize::MAX, usize::MAX); k];
            for t in 1..=max_total {
                for &count_idx in &order[shell_start[t]..shell_start[t + 1]] {
                    self.kernel(
                        count_idx,
                        &mut digits,
                        &mut avail,
                        &mut y,
                        &mut values,
                        &mut choices,
                    );
                    for s in 0..k {
                        let state = self.state(s, count_idx);
                        self.value[state] = values[s];
                        self.choice[state] = choices[s];
                    }
                }
            }
        }
    }

    /// Runs the fill kernel for one state with fixed-size stack scratch
    /// (`k ≤ MAX_PACKED_K`), returning the per-source results by value so
    /// shells can be evaluated in parallel and written back afterwards.
    fn kernel_packed(&self, count_idx: usize) -> StateOut {
        let k = self.dims.len();
        debug_assert!(k <= MAX_PACKED_K);
        let mut digits = [0usize; MAX_PACKED_K];
        let mut avail = [0usize; MAX_PACKED_K];
        let mut y = [0usize; MAX_PACKED_K];
        let mut out = StateOut {
            count_idx,
            values: [Time::MAX; MAX_PACKED_K],
            choices: [(usize::MAX, usize::MAX); MAX_PACKED_K],
        };
        self.kernel(
            count_idx,
            &mut digits[..k],
            &mut avail[..k],
            &mut y[..k],
            &mut out.values[..k],
            &mut out.choices[..k],
        );
        out
    }

    /// Writes one state's kernel results into the table.
    fn store(&mut self, out: &StateOut) {
        for s in 0..self.dims.len() {
            let state = self.state(s, out.count_idx);
            self.value[state] = out.values[s];
            self.choice[state] = out.choices[s];
        }
    }

    /// Evaluates the Lemma 4 recurrence for one non-base state, for every
    /// source type `s`, reading only strictly-smaller-total states.
    ///
    /// All slice parameters have length `k`: `digits`/`avail`/`y` are digit
    /// scratch, `out_values`/`out_choices` receive the per-source results.
    /// The inner enumeration performs **no allocation and no division**:
    /// `y ≤ avail` componentwise means the mixed-radix subtraction has no
    /// borrows, so `idx(avail − y) = idx(avail) − idx(y)` and both table
    /// reads are pure index arithmetic off the running `y_idx`.
    fn kernel(
        &self,
        count_idx: usize,
        digits: &mut [usize],
        avail: &mut [usize],
        y: &mut [usize],
        out_values: &mut [Time],
        out_choices: &mut [(usize, usize)],
    ) {
        let k = digits.len();
        let cs = self.count_states;
        let latency = self.net.latency();
        // Decode the state's per-class counts once.
        let mut rem = count_idx;
        for (digit, &dim) in digits.iter_mut().zip(&self.dims) {
            let base = dim + 1;
            *digit = rem % base;
            rem /= base;
        }
        debug_assert!(digits.iter().any(|&d| d > 0), "base state has no choice");
        for s in 0..k {
            let send_s = self.typed.spec_of(s).send();
            let value_s = &self.value[s * cs..(s + 1) * cs];
            let mut best = Time::MAX;
            let mut best_choice = (usize::MAX, usize::MAX);
            for first in 0..k {
                if digits[first] == 0 {
                    continue;
                }
                let head = send_s + latency + self.typed.spec_of(first).recv();
                let value_first = &self.value[first * cs..(first + 1) * cs];
                // Counts available to split between the first child's
                // subtree and the source's remainder, and their packed
                // index (linear: one stride subtraction).
                let avail_idx = count_idx - self.strides[first];
                avail.copy_from_slice(digits);
                avail[first] -= 1;
                // Enumerate all y with 0 ≤ y_j ≤ avail[j], maintaining the
                // packed index incrementally.
                y.fill(0);
                let mut y_idx = 0usize;
                loop {
                    let subtree = value_first[y_idx];
                    let remaining = value_s[avail_idx - y_idx];
                    debug_assert_ne!(subtree, Time::MAX);
                    debug_assert_ne!(remaining, Time::MAX);
                    let completion = (subtree + head).max(remaining + send_s);
                    if completion < best {
                        best = completion;
                        best_choice = (first, y_idx);
                    }
                    // Advance y in mixed radix.
                    let mut j = 0;
                    loop {
                        if j == k {
                            break;
                        }
                        if y[j] < avail[j] {
                            y[j] += 1;
                            y_idx += self.strides[j];
                            break;
                        }
                        y_idx -= y[j] * self.strides[j];
                        y[j] = 0;
                        j += 1;
                    }
                    if j == k {
                        break;
                    }
                }
            }
            out_values[s] = best;
            out_choices[s] = best_choice;
        }
    }

    /// The pre-kernel fill: direct transcription of the recurrence. See
    /// [`DpTable::build_reference`].
    fn fill_reference(&mut self) {
        let k = self.dims.len();
        // Order count vectors by their total so every dependency (which has a
        // strictly smaller total) is already computed.
        let mut order: Vec<usize> = (0..self.count_states).collect();
        order.sort_by_key(|&idx| self.counts_of(idx).iter().sum::<usize>());

        for &count_idx in &order {
            let counts = self.counts_of(count_idx);
            let total: usize = counts.iter().sum();
            for s in 0..k {
                let state = self.state(s, count_idx);
                if total == 0 {
                    self.value[state] = Time::ZERO;
                    continue;
                }
                let send_s = self.typed.spec_of(s).send();
                let mut best = Time::MAX;
                let mut best_choice = (usize::MAX, usize::MAX);
                for first in 0..k {
                    if counts[first] == 0 {
                        continue;
                    }
                    let recv_first = self.typed.spec_of(first).recv();
                    let head = send_s + self.net.latency() + recv_first;
                    // Remaining counts if the subtree takes `y` plus the
                    // first node itself.
                    let mut avail = counts.clone();
                    avail[first] -= 1;
                    // Enumerate all y with 0 ≤ y_j ≤ avail[j].
                    let mut y = vec![0usize; k];
                    loop {
                        let y_idx = self.idx_of(&y);
                        let subtree = self.value[self.state(first, y_idx)];
                        let mut rest = vec![0usize; k];
                        for j in 0..k {
                            rest[j] = avail[j] - y[j];
                        }
                        let rest_idx = self.idx_of(&rest);
                        let remaining = self.value[self.state(s, rest_idx)];
                        debug_assert_ne!(subtree, Time::MAX);
                        debug_assert_ne!(remaining, Time::MAX);
                        let completion = (subtree + head).max(remaining + send_s);
                        if completion < best {
                            best = completion;
                            best_choice = (first, y_idx);
                        }
                        // Advance y in mixed radix.
                        let mut j = 0;
                        loop {
                            if j == k {
                                break;
                            }
                            if y[j] < avail[j] {
                                y[j] += 1;
                                break;
                            }
                            y[j] = 0;
                            j += 1;
                        }
                        if j == k {
                            break;
                        }
                    }
                }
                self.value[state] = best;
                self.choice[state] = best_choice;
            }
        }
    }

    /// Number of distinct types `k`.
    pub fn k(&self) -> usize {
        self.dims.len()
    }

    /// Upper bound (inclusive) of each count dimension — the per-class
    /// destination counts of the instance the table was built from.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The class overheads the table was built over, in class-index order.
    pub fn class_specs(&self) -> &[NodeSpec] {
        self.typed.specs()
    }

    /// Whether a per-class count vector lies inside the table's dimensions
    /// (and therefore can be queried and reconstructed from this table).
    pub fn covers(&self, counts: &[usize]) -> bool {
        counts.len() == self.k() && counts.iter().zip(&self.dims).all(|(&c, &d)| c <= d)
    }

    /// Number of states stored in the table.
    pub fn num_states(&self) -> usize {
        self.value.len()
    }

    /// The optimal reception completion time for the instance the table was
    /// built from.
    pub fn optimum(&self) -> Time {
        self.query(self.typed.source_class(), self.typed.counts())
            .expect("the instance's own state is always in the table")
    }

    /// τ(source type, per-class counts) for any sub-instance covered by the
    /// table (i.e. `counts[j] ≤` the build instance's counts). Returns `None`
    /// for out-of-range queries.
    pub fn query(&self, source_class: usize, counts: &[usize]) -> Option<Time> {
        if source_class >= self.k() || counts.len() != self.k() {
            return None;
        }
        if counts.iter().zip(&self.dims).any(|(&c, &d)| c > d) {
            return None;
        }
        Some(self.value[self.state(source_class, self.idx_of(counts))])
    }

    /// Reconstructs an optimal schedule tree for the build instance, over the
    /// node ids of [`TypedMulticast::to_multicast_set`].
    pub fn reconstruct_schedule(&self) -> Result<ScheduleTree, CoreError> {
        let typed = self.typed.clone();
        self.schedule_for(&typed).map(|(tree, _)| tree)
    }

    /// Reconstructs an optimal schedule (and its value) for **any** typed
    /// instance covered by this table: same class overheads in the same
    /// order, per-class counts within [`DpTable::dims`]. The source class
    /// may differ from the build instance's — the table stores every source
    /// type.
    ///
    /// This is the whole-network reuse the paper recommends in Section 4:
    /// build the table once for the full cluster, then answer every
    /// sub-multicast without re-running the dynamic program.
    pub fn schedule_for(&self, typed: &TypedMulticast) -> Result<(ScheduleTree, Time), CoreError> {
        if typed.specs() != self.typed.specs()
            || !self.covers(typed.counts())
            || typed.source_class() >= self.k()
        {
            return Err(CoreError::DpTableMismatch {
                table_k: self.k(),
                request_k: typed.k(),
            });
        }
        let n = typed.total_destinations();
        let mut tree = ScheduleTree::new(n + 1);
        // Pools of concrete node ids per class, consumed front to back.
        let mut pools: Vec<VecDeque<NodeId>> = (0..self.k())
            .map(|c| typed.node_ids_for_class(c).into())
            .collect();
        self.expand(
            typed.source_class(),
            self.idx_of(typed.counts()),
            NodeId::SOURCE,
            &mut pools,
            &mut tree,
        )?;
        let value = self.value[self.state(typed.source_class(), self.idx_of(typed.counts()))];
        Ok((tree, value))
    }

    fn expand(
        &self,
        source_class: usize,
        count_idx: usize,
        root: NodeId,
        pools: &mut [VecDeque<NodeId>],
        tree: &mut ScheduleTree,
    ) -> Result<(), CoreError> {
        let counts = self.counts_of(count_idx);
        if counts.iter().all(|&c| c == 0) {
            return Ok(());
        }
        let (first, y_idx) = self.choice[self.state(source_class, count_idx)];
        debug_assert_ne!(first, usize::MAX, "non-base state must have a choice");
        let child = pools[first]
            .pop_front()
            .ok_or(CoreError::ClassPoolExhausted { class: first })?;
        tree.attach(root, child)?;
        // The child's subtree consumes the y nodes.
        self.expand(first, y_idx, child, pools, tree)?;
        // The root continues with everything that remains.
        let y = self.counts_of(y_idx);
        let mut rest = counts;
        rest[first] -= 1;
        for j in 0..self.k() {
            rest[j] -= y[j];
        }
        let rest_idx = self.idx_of(&rest);
        self.expand(source_class, rest_idx, root, pools, tree)
    }
}

/// Convenience: computes the optimal reception completion time of an
/// arbitrary [`MulticastSet`](hnow_model::MulticastSet) by grouping its nodes
/// into types and running the dynamic program.
///
/// This is exact for any instance, but its running time is exponential in
/// the number of *distinct* node types, so it is only practical when that
/// number is small (Theorem 2's setting).
pub fn dp_optimum(set: &hnow_model::MulticastSet, net: NetParams) -> Time {
    let typed = TypedMulticast::from_multicast_set(set);
    DpTable::build(&typed, net).optimum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy::{greedy_with_options, GreedyOptions};
    use crate::schedule::times::reception_completion;
    use crate::schedule::validate::validate;
    use hnow_model::{MulticastSet, NodeSpec};

    fn figure1_typed() -> TypedMulticast {
        TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            1,
            vec![3, 1],
        )
        .unwrap()
    }

    #[test]
    fn figure1_optimum_is_eight() {
        let table = DpTable::build(&figure1_typed(), NetParams::new(1));
        // The paper's Figure 1 shows schedules of length 10 and 9; the true
        // optimum for this instance is 8.
        assert_eq!(table.optimum(), Time::new(8));
    }

    #[test]
    fn reconstruction_matches_table_value() {
        let typed = figure1_typed();
        let net = NetParams::new(1);
        let (tree, value) = DpTable::optimal_schedule(&typed, net).unwrap();
        let set = typed.to_multicast_set().unwrap();
        validate(&tree, &set).unwrap();
        assert_eq!(reception_completion(&tree, &set, net).unwrap(), value);
    }

    #[test]
    fn single_type_reduces_to_homogeneous_broadcast() {
        // k = 1, recv = 0, L = 0: optimum is ⌈log2(n+1)⌉ · send.
        for n in [1usize, 2, 3, 4, 7, 8, 15] {
            let typed = TypedMulticast::new(vec![NodeSpec::new(3, 0)], 0, vec![n]).unwrap();
            let table = DpTable::build(&typed, NetParams::new(0));
            let rounds = usize::BITS - n.leading_zeros();
            assert_eq!(table.optimum(), Time::new(3 * u64::from(rounds)), "n = {n}");
        }
    }

    #[test]
    fn empty_multicast_is_zero() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            0,
            vec![0, 0],
        )
        .unwrap();
        let table = DpTable::build(&typed, NetParams::new(1));
        assert_eq!(table.optimum(), Time::ZERO);
        let tree = table.reconstruct_schedule().unwrap();
        assert!(tree.is_complete());
        assert_eq!(tree.num_destinations(), 0);
    }

    #[test]
    fn dp_never_exceeds_greedy() {
        let cases = vec![
            (
                vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
                1,
                vec![3, 1],
            ),
            (
                vec![NodeSpec::new(1, 1), NodeSpec::new(4, 7)],
                0,
                vec![5, 5],
            ),
            (
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(2, 2),
                    NodeSpec::new(6, 9),
                ],
                2,
                vec![4, 3, 2],
            ),
        ];
        for latency in [0u64, 1, 3] {
            let net = NetParams::new(latency);
            for (specs, src, counts) in &cases {
                let typed = TypedMulticast::new(specs.clone(), *src, counts.clone()).unwrap();
                let set = typed.to_multicast_set().unwrap();
                let dp = DpTable::build(&typed, net).optimum();
                let greedy_tree = greedy_with_options(&set, net, GreedyOptions::REFINED);
                let greedy = reception_completion(&greedy_tree, &set, net).unwrap();
                assert!(dp <= greedy, "dp {dp} > greedy {greedy}");
            }
        }
    }

    #[test]
    fn table_answers_sub_multicast_queries() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            1,
            vec![3, 2],
        )
        .unwrap();
        let net = NetParams::new(1);
        let table = DpTable::build(&typed, net);
        // Every sub-instance must agree with a table built directly for it.
        for a in 0..=3usize {
            for b in 0..=2usize {
                for s in 0..2usize {
                    let direct = TypedMulticast::new(
                        vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
                        s,
                        vec![a, b],
                    )
                    .unwrap();
                    let expected = DpTable::build(&direct, net).optimum();
                    assert_eq!(table.query(s, &[a, b]), Some(expected), "s={s} a={a} b={b}");
                }
            }
        }
        // Out-of-range queries.
        assert_eq!(table.query(0, &[4, 0]), None);
        assert_eq!(table.query(5, &[1, 1]), None);
        assert_eq!(table.query(0, &[1]), None);
    }

    #[test]
    fn schedule_for_serves_sub_instances_and_other_sources() {
        let specs = vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)];
        let net = NetParams::new(1);
        let full = TypedMulticast::new(specs.clone(), 1, vec![3, 2]).unwrap();
        let table = DpTable::build(&full, net);
        assert_eq!(table.dims(), &[3, 2]);
        assert_eq!(table.class_specs(), &specs[..]);
        assert!(table.covers(&[2, 1]));
        assert!(!table.covers(&[4, 0]));
        assert!(!table.covers(&[1]));

        // Every covered sub-instance (including other source classes) must
        // match a table built directly for it, value and reconstruction.
        for a in 0..=3usize {
            for b in 0..=2usize {
                for s in 0..2usize {
                    let sub = TypedMulticast::new(specs.clone(), s, vec![a, b]).unwrap();
                    let (tree, value) = table.schedule_for(&sub).unwrap();
                    let direct = DpTable::build(&sub, net);
                    assert_eq!(value, direct.optimum(), "s={s} a={a} b={b}");
                    let set = sub.to_multicast_set().unwrap();
                    validate(&tree, &set).unwrap();
                    assert_eq!(reception_completion(&tree, &set, net).unwrap(), value);
                }
            }
        }

        // Out-of-coverage requests are rejected.
        let too_big = TypedMulticast::new(specs.clone(), 0, vec![4, 0]).unwrap();
        assert!(matches!(
            table.schedule_for(&too_big),
            Err(CoreError::DpTableMismatch { .. })
        ));
        let other_specs = TypedMulticast::new(vec![NodeSpec::new(5, 9)], 0, vec![2]).unwrap();
        assert!(matches!(
            table.schedule_for(&other_specs),
            Err(CoreError::DpTableMismatch { .. })
        ));
    }

    #[test]
    fn dp_optimum_for_plain_multicast_set() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
            ],
        )
        .unwrap();
        assert_eq!(dp_optimum(&set, NetParams::new(1)), Time::new(8));
    }

    #[test]
    fn single_destination_value() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(2, 5), NodeSpec::new(3, 7)],
            0,
            vec![0, 1],
        )
        .unwrap();
        let table = DpTable::build(&typed, NetParams::new(4));
        // send(src) + L + recv(dest) = 2 + 4 + 7.
        assert_eq!(table.optimum(), Time::new(13));
    }

    /// Exhaustively compares two tables built for the same instance:
    /// identical values for every (source, counts) state.
    fn assert_tables_agree(a: &DpTable, b: &DpTable) {
        assert_eq!(a.dims(), b.dims());
        assert_eq!(a.num_states(), b.num_states());
        let k = a.k();
        let mut counts = vec![0usize; k];
        loop {
            for s in 0..k {
                assert_eq!(
                    a.query(s, &counts),
                    b.query(s, &counts),
                    "s={s} counts={counts:?}"
                );
            }
            let mut j = 0;
            while j < k {
                if counts[j] < a.dims()[j] {
                    counts[j] += 1;
                    break;
                }
                counts[j] = 0;
                j += 1;
            }
            if j == k {
                break;
            }
        }
    }

    #[test]
    fn all_fill_modes_match_the_reference() {
        let net = NetParams::new(2);
        let cases = vec![
            TypedMulticast::new(vec![NodeSpec::new(1, 1)], 0, vec![9]).unwrap(),
            TypedMulticast::new(
                vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
                1,
                vec![4, 3],
            )
            .unwrap(),
            TypedMulticast::new(
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(2, 2),
                    NodeSpec::new(4, 7),
                ],
                0,
                vec![3, 2, 2],
            )
            .unwrap(),
        ];
        for typed in &cases {
            let reference = DpTable::build_reference(typed, net);
            for mode in [
                DpFillMode::Auto,
                DpFillMode::Sequential,
                DpFillMode::Parallel,
            ] {
                let fast = DpTable::build_with_mode(typed, net, mode);
                assert_tables_agree(&fast, &reference);
                // Choices match too: reconstructed trees are identical.
                assert_eq!(
                    fast.reconstruct_schedule().unwrap(),
                    reference.reconstruct_schedule().unwrap(),
                    "mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_threshold_paths_agree_on_a_large_two_class_table() {
        // Large enough that DpFillMode::Auto takes the shell-parallel path.
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
            0,
            vec![50, 50],
        )
        .unwrap();
        let net = NetParams::new(1);
        let auto = DpTable::build(&typed, net);
        let sequential = DpTable::build_with_mode(&typed, net, DpFillMode::Sequential);
        assert_eq!(auto.optimum(), sequential.optimum());
        assert_eq!(
            auto.reconstruct_schedule().unwrap(),
            sequential.reconstruct_schedule().unwrap()
        );
    }

    #[test]
    fn reconstruction_respects_class_membership() {
        let typed = TypedMulticast::new(
            vec![NodeSpec::new(1, 1), NodeSpec::new(5, 8)],
            0,
            vec![4, 3],
        )
        .unwrap();
        let net = NetParams::new(2);
        let (tree, value) = DpTable::optimal_schedule(&typed, net).unwrap();
        let set = typed.to_multicast_set().unwrap();
        validate(&tree, &set).unwrap();
        assert_eq!(reception_completion(&tree, &set, net).unwrap(), value);
        // The set's canonical order puts the four fast nodes first.
        assert_eq!(set.destination(0), NodeSpec::new(1, 1));
        assert_eq!(set.destination(6), NodeSpec::new(5, 8));
    }
}
