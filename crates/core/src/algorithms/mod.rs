//! Multicast scheduling algorithms: the paper's greedy approximation and
//! limited-heterogeneity dynamic program, an exact branch-and-bound
//! reference solver, the Theorem 1 proof transformations, and
//! heterogeneity-oblivious baselines.

pub mod baselines;
pub mod dp;
pub mod greedy;
pub mod optimal;
pub mod transform;

pub use dp::{dp_optimum, DpFillMode, DpTable};
pub use greedy::{greedy_schedule, greedy_with_options, GreedyOptions};
pub use optimal::{optimal_schedule, search, Objective, OptimalResult, SearchOptions};
pub use transform::{power_of_two_rounding, uniform_integer_ratio, RoundedInstance};
