//! Exact optimal multicast schedules by branch-and-bound.
//!
//! The optimal multicast problem in the receive-send model is NP-complete in
//! the strong sense, so no polynomial-time exact algorithm is expected for
//! arbitrary heterogeneity. This module provides an exhaustive
//! branch-and-bound search over *normalized* schedules (schedules without
//! idle time, which the paper shows is without loss of generality) for the
//! small instances used to measure the greedy algorithm's empirical
//! approximation ratio (experiment E3) and to cross-check the Theorem 2
//! dynamic program (experiment E6).
//!
//! The search constructs schedules **chronologically**: at each step it picks
//! a node that already holds the message and lets it make its next
//! (time-wise fixed) transmission to some destination that has not yet been
//! reached, requiring delivery times to be generated in non-decreasing
//! order. Identical destinations and identically situated senders are
//! de-duplicated, the greedy schedule seeds the incumbent, and simple lower
//! bounds prune the tree. Instances with up to roughly a dozen destinations
//! are solved exactly in well under a second; a configurable node budget
//! keeps larger requests from running away (the result then reports
//! `proven_optimal = false`).

use crate::algorithms::greedy::{greedy_with_options, GreedyOptions};
use crate::schedule::times::evaluate;
use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, Time};

/// Which completion time the search minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimise the reception completion time `R_T` (the paper's objective).
    #[default]
    Reception,
    /// Minimise the delivery completion time `D_T` (used when validating
    /// Lemma 2 / Corollary 1, which are statements about `D_T`).
    Delivery,
}

/// Options for the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Completion-time objective.
    pub objective: Objective,
    /// Restrict the search to **layered** schedules (destinations reached in
    /// non-decreasing overhead order, per the non-strict layeredness
    /// definition used by [`crate::schedule::validate::is_layered`]).
    /// Combined with [`Objective::Delivery`] this enumerates exactly the
    /// schedule class of Lemma 2.
    pub layered_only: bool,
    /// Maximum number of branch-and-bound nodes to explore before giving up
    /// and returning the incumbent.
    pub node_budget: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            objective: Objective::Reception,
            layered_only: false,
            node_budget: 50_000_000,
        }
    }
}

impl SearchOptions {
    /// Builder-style setter for the completion-time objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Builder-style setter for the layered-schedules-only restriction.
    #[must_use]
    pub fn with_layered_only(mut self, layered_only: bool) -> Self {
        self.layered_only = layered_only;
        self
    }

    /// Builder-style setter for the branch-and-bound node budget.
    #[must_use]
    pub fn with_node_budget(mut self, node_budget: u64) -> Self {
        self.node_budget = node_budget;
        self
    }
}

/// Result of an exact search.
#[derive(Debug, Clone)]
pub struct OptimalResult {
    /// The best schedule found.
    pub tree: ScheduleTree,
    /// Its completion time under the chosen objective.
    pub value: Time,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: u64,
    /// Whether the search ran to completion (and `value` is therefore the
    /// true optimum) or stopped at the node budget.
    pub proven_optimal: bool,
}

/// Reusable per-recursion-depth buffers of [`Searcher::search`]. One frame
/// exists per depth, so the hot loop never heap-allocates: each frame's
/// vectors are cleared and refilled in place on every visit.
#[derive(Debug, Default)]
struct ScratchFrame {
    /// Attached nodes whose next fixed transmission is chronologically
    /// admissible, with that transmission's delivery time.
    alive: Vec<(Time, NodeId)>,
    /// Unattached destinations de-duplicated by spec.
    candidates: Vec<NodeId>,
    /// Alive senders de-duplicated by (availability, spec).
    senders: Vec<(Time, NodeId)>,
    /// Dedup key set for `senders`.
    seen: Vec<(Time, hnow_model::NodeSpec)>,
}

struct Searcher<'a> {
    set: &'a MulticastSet,
    net: NetParams,
    options: SearchOptions,
    /// Chronological list of (sender, destination) decisions on the current
    /// path.
    path: Vec<(NodeId, NodeId)>,
    /// Best decision list found so far. Preallocated; improvements copy the
    /// current path into it instead of cloning a fresh vector.
    best_path: Vec<(NodeId, NodeId)>,
    best_value: Time,
    nodes_explored: u64,
    budget_exhausted: bool,
    // Per-node state, indexed by NodeId.
    attached: Vec<bool>,
    reception: Vec<Time>,
    sends_made: Vec<u64>,
    /// Per-node sending overheads, in canonical node order.
    send: Vec<Time>,
    /// Per-node receiving overheads, in canonical node order. Over the
    /// destinations (indices ≥ 1) these are non-decreasing: destinations are
    /// sorted fast-first and the model's correlation assumption forbids a
    /// faster sender from being a slower receiver, so the reception lower
    /// bound only needs the largest unattached index.
    recv: Vec<Time>,
    /// One scratch frame per recursion depth.
    scratch: Vec<ScratchFrame>,
}

impl<'a> Searcher<'a> {
    fn new(set: &'a MulticastSet, net: NetParams, options: SearchOptions) -> Self {
        let n = set.num_nodes();
        let mut attached = vec![false; n];
        attached[0] = true;
        let send: Vec<Time> = (0..n).map(|v| set.spec(NodeId(v)).send()).collect();
        let recv: Vec<Time> = (0..n).map(|v| set.spec(NodeId(v)).recv()).collect();
        debug_assert!(
            recv[1..].windows(2).all(|w| w[0] <= w[1]),
            "destination receive overheads must be non-decreasing in canonical order"
        );
        Searcher {
            set,
            net,
            options,
            path: Vec::with_capacity(n),
            best_path: Vec::with_capacity(n),
            best_value: Time::MAX,
            nodes_explored: 0,
            budget_exhausted: false,
            attached,
            reception: vec![Time::ZERO; n],
            sends_made: vec![0; n],
            send,
            recv,
            scratch: (0..=n).map(|_| ScratchFrame::default()).collect(),
        }
    }

    /// Next delivery-completion time of an attached node: the instant its
    /// `(sends_made + 1)`-th transmission would be delivered.
    fn next_avail(&self, v: NodeId) -> Time {
        self.reception[v.index()]
            + (self.sends_made[v.index()] + 1) * self.send[v.index()]
            + self.net.latency()
    }

    fn objective_of(&self, delivery: Time, dest: NodeId) -> Time {
        match self.options.objective {
            Objective::Reception => delivery + self.recv[dest.index()],
            Objective::Delivery => delivery,
        }
    }

    fn seed_incumbent(&mut self) {
        // The incumbent must itself lie inside the searched schedule class:
        // leaf refinement can produce a non-layered schedule, so layered
        // searches seed with the plain greedy schedule (which is layered).
        let opts = match (self.options.objective, self.options.layered_only) {
            (Objective::Reception, false) => GreedyOptions::REFINED,
            _ => GreedyOptions::PLAIN,
        };
        let tree = greedy_with_options(self.set, self.net, opts);
        let timing = evaluate(&tree, self.set, self.net).expect("greedy tree is complete");
        self.best_value = match self.options.objective {
            Objective::Reception => timing.reception_completion(),
            Objective::Delivery => timing.delivery_completion(),
        };
        // Record the greedy schedule as a chronological decision list so the
        // incumbent tree can be rebuilt uniformly.
        let mut decisions: Vec<(Time, NodeId, NodeId)> = Vec::new();
        for v in tree.bfs() {
            for &c in tree.children(v) {
                decisions.push((timing.delivery(c), v, c));
            }
        }
        decisions.sort_by_key(|&(d, _, c)| (d, c));
        self.best_path.clear();
        self.best_path
            .extend(decisions.into_iter().map(|(_, p, c)| (p, c)));
    }

    fn search(&mut self, last_delivery: Time, current_value: Time, num_attached: usize) {
        self.nodes_explored += 1;
        if self.nodes_explored > self.options.node_budget {
            self.budget_exhausted = true;
            return;
        }
        if num_attached == self.set.num_nodes() {
            if current_value < self.best_value {
                self.best_value = current_value;
                self.best_path.clear();
                self.best_path.extend_from_slice(&self.path);
            }
            return;
        }
        // Detach this depth's scratch frame so the recursive calls (which
        // use strictly deeper frames) can borrow `self` freely.
        let mut frame = std::mem::take(&mut self.scratch[num_attached]);
        self.branch(last_delivery, current_value, num_attached, &mut frame);
        self.scratch[num_attached] = frame;
    }

    fn branch(
        &mut self,
        last_delivery: Time,
        current_value: Time,
        num_attached: usize,
        frame: &mut ScratchFrame,
    ) {
        let n = self.set.num_nodes();

        // Senders that are still "alive": attached nodes whose next fixed
        // transmission time has not already been passed chronologically.
        frame.alive.clear();
        for v in (0..n).map(NodeId) {
            if self.attached[v.index()] {
                let avail = self.next_avail(v);
                if avail >= last_delivery {
                    frame.alive.push((avail, v));
                }
            }
        }
        if frame.alive.is_empty() {
            return; // Remaining destinations can never be reached: dead end.
        }
        frame.alive.sort_unstable_by_key(|&(t, v)| (t, v));
        let earliest_next = frame.alive[0].0;

        // Lower bound. Under the reception objective every unattached node
        // still has to receive, no earlier than the earliest next delivery;
        // receive overheads are non-decreasing in node order (see
        // `Searcher::recv`), so the largest unattached index alone gives the
        // max over all unattached nodes — no rescan of the specs.
        let mut lb = current_value;
        match self.options.objective {
            Objective::Reception => {
                if let Some(v) = (1..n).rev().find(|&v| !self.attached[v]) {
                    lb = lb.max(earliest_next + self.recv[v]);
                }
            }
            Objective::Delivery => {
                lb = lb.max(earliest_next);
            }
        }
        if lb >= self.best_value {
            return;
        }

        // Candidate destinations: unattached, de-duplicated by spec. In
        // layered mode only the fastest remaining speed class may be served.
        frame.candidates.clear();
        let mut last_spec = None;
        for v in (1..n).map(NodeId) {
            if self.attached[v.index()] {
                continue;
            }
            let spec = self.set.spec(v);
            if Some(spec) == last_spec {
                continue;
            }
            last_spec = Some(spec);
            frame.candidates.push(v);
            if self.options.layered_only {
                break; // Destinations are sorted: the first unattached spec
                       // is the fastest remaining class.
            }
        }

        // Candidate senders: de-duplicated by (spec, next availability).
        frame.senders.clear();
        frame.seen.clear();
        for &(avail, v) in &frame.alive {
            let spec = self.set.spec(v);
            if frame.seen.iter().any(|&(a, s)| a == avail && s == spec) {
                continue;
            }
            frame.seen.push((avail, spec));
            frame.senders.push((avail, v));
        }

        for &(avail, sender) in &frame.senders {
            for &dest in &frame.candidates {
                let delivery = avail;
                let new_value = current_value.max(self.objective_of(delivery, dest));
                if new_value >= self.best_value {
                    continue;
                }
                // Apply.
                self.attached[dest.index()] = true;
                self.reception[dest.index()] = delivery + self.recv[dest.index()];
                self.sends_made[sender.index()] += 1;
                self.path.push((sender, dest));

                self.search(delivery, new_value, num_attached + 1);

                // Undo.
                self.path.pop();
                self.sends_made[sender.index()] -= 1;
                self.reception[dest.index()] = Time::ZERO;
                self.attached[dest.index()] = false;

                if self.budget_exhausted {
                    return;
                }
            }
        }
    }

    fn build_tree(&self) -> ScheduleTree {
        let mut tree = ScheduleTree::new(self.set.num_nodes());
        for &(parent, child) in &self.best_path {
            tree.attach(parent, child)
                .expect("decision lists are consistent by construction");
        }
        tree
    }
}

/// Finds an optimal schedule for the reception completion time with default
/// search options.
pub fn optimal_schedule(set: &MulticastSet, net: NetParams) -> OptimalResult {
    search(set, net, SearchOptions::default())
}

/// Runs the exact branch-and-bound search with explicit options.
pub fn search(set: &MulticastSet, net: NetParams, options: SearchOptions) -> OptimalResult {
    let mut searcher = Searcher::new(set, net, options);
    searcher.seed_incumbent();
    searcher.search(Time::ZERO, Time::ZERO, 1);
    OptimalResult {
        tree: searcher.build_tree(),
        value: searcher.best_value,
        nodes_explored: searcher.nodes_explored,
        proven_optimal: !searcher.budget_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::dp::dp_optimum;
    use crate::schedule::times::{delivery_completion, reception_completion};
    use crate::schedule::validate::{is_layered, validate};
    use hnow_model::NodeSpec;

    fn figure1() -> (MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        (
            MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap(),
            NetParams::new(1),
        )
    }

    #[test]
    fn figure1_optimum_is_eight() {
        let (set, net) = figure1();
        let result = optimal_schedule(&set, net);
        assert!(result.proven_optimal);
        assert_eq!(result.value, Time::new(8));
        validate(&result.tree, &set).unwrap();
        assert_eq!(
            reception_completion(&result.tree, &set, net).unwrap(),
            Time::new(8)
        );
    }

    #[test]
    fn matches_dp_on_two_type_instances() {
        let cases = vec![
            (NodeSpec::new(1, 1), NodeSpec::new(2, 3), 3usize, 2usize),
            (NodeSpec::new(1, 2), NodeSpec::new(3, 5), 2, 3),
            (NodeSpec::new(2, 2), NodeSpec::new(4, 7), 4, 2),
        ];
        for (fast, slow, nf, ns) in cases {
            for latency in [0u64, 1, 3] {
                let net = NetParams::new(latency);
                let mut dests = vec![fast; nf];
                dests.extend(vec![slow; ns]);
                let set = MulticastSet::new(slow, dests).unwrap();
                let exact = optimal_schedule(&set, net);
                assert!(exact.proven_optimal);
                assert_eq!(
                    exact.value,
                    dp_optimum(&set, net),
                    "fast={fast} slow={slow} nf={nf} ns={ns} L={latency}"
                );
            }
        }
    }

    #[test]
    fn optimal_never_exceeds_greedy() {
        let set = MulticastSet::new(
            NodeSpec::new(3, 4),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 2),
                NodeSpec::new(3, 4),
                NodeSpec::new(5, 8),
                NodeSpec::new(6, 9),
            ],
        )
        .unwrap();
        let net = NetParams::new(2);
        let greedy = greedy_with_options(&set, net, GreedyOptions::REFINED);
        let greedy_r = reception_completion(&greedy, &set, net).unwrap();
        let exact = optimal_schedule(&set, net);
        assert!(exact.proven_optimal);
        assert!(exact.value <= greedy_r);
    }

    #[test]
    fn homogeneous_optimum_matches_doubling() {
        for n in [1usize, 3, 6, 7] {
            let set = MulticastSet::homogeneous(NodeSpec::new(2, 0), n);
            let net = NetParams::new(0);
            let result = optimal_schedule(&set, net);
            assert!(result.proven_optimal);
            let rounds = usize::BITS - n.leading_zeros();
            assert_eq!(result.value, Time::new(2 * u64::from(rounds)), "n = {n}");
        }
    }

    #[test]
    fn delivery_objective_layered_matches_greedy_delivery() {
        // Corollary 1: greedy attains the minimum delivery completion time
        // over layered schedules.
        let instances = vec![
            figure1().0,
            MulticastSet::new(
                NodeSpec::new(2, 2),
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(1, 1),
                    NodeSpec::new(3, 4),
                    NodeSpec::new(4, 6),
                ],
            )
            .unwrap(),
        ];
        for set in instances {
            for latency in [0u64, 2] {
                let net = NetParams::new(latency);
                let options = SearchOptions {
                    objective: Objective::Delivery,
                    layered_only: true,
                    node_budget: 10_000_000,
                };
                let exact = search(&set, net, options);
                assert!(exact.proven_optimal);
                let greedy = greedy_with_options(&set, net, GreedyOptions::PLAIN);
                assert_eq!(
                    exact.value,
                    delivery_completion(&greedy, &set, net).unwrap()
                );
            }
        }
    }

    #[test]
    fn layered_search_returns_layered_schedules() {
        let (set, net) = figure1();
        let options = SearchOptions {
            objective: Objective::Reception,
            layered_only: true,
            node_budget: 1_000_000,
        };
        let result = search(&set, net, options);
        assert!(result.proven_optimal);
        assert!(is_layered(&result.tree, &set, net).unwrap());
        // Unrestricted search can only do better or equal.
        let free = optimal_schedule(&set, net);
        assert!(free.value <= result.value);
    }

    #[test]
    fn tiny_instances() {
        let net = NetParams::new(1);
        let empty = MulticastSet::new(NodeSpec::new(2, 2), vec![]).unwrap();
        let r = optimal_schedule(&empty, net);
        assert_eq!(r.value, Time::ZERO);
        assert!(r.proven_optimal);

        let single = MulticastSet::new(NodeSpec::new(2, 2), vec![NodeSpec::new(3, 4)]).unwrap();
        let r = optimal_schedule(&single, net);
        assert_eq!(r.value, Time::new(2 + 1 + 4));
    }

    #[test]
    fn nodes_explored_does_not_regress_on_figure1() {
        // Pruning-strength regression guard: the scratch-buffer overhaul and
        // the suffix-based reception bound must prune at least as hard as
        // the pre-kernel implementation, which explored exactly 4 nodes on
        // the Figure 1 instance (the refined-greedy incumbent is already
        // optimal there).
        let (set, net) = figure1();
        let result = optimal_schedule(&set, net);
        assert!(result.proven_optimal);
        assert_eq!(result.value, Time::new(8));
        assert!(
            result.nodes_explored <= 4,
            "nodes_explored regressed: {} > 4",
            result.nodes_explored
        );
    }

    #[test]
    fn nodes_explored_does_not_regress_on_an_eight_destination_instance() {
        // Same guard on a harder all-distinct instance: 28 nodes on the
        // pre-kernel implementation.
        let set = MulticastSet::new(
            NodeSpec::new(1, 1),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 2),
                NodeSpec::new(2, 3),
                NodeSpec::new(3, 3),
                NodeSpec::new(3, 4),
                NodeSpec::new(4, 6),
                NodeSpec::new(5, 8),
                NodeSpec::new(6, 9),
            ],
        )
        .unwrap();
        let result = optimal_schedule(&set, NetParams::new(2));
        assert!(result.proven_optimal);
        assert!(
            result.nodes_explored <= 28,
            "nodes_explored regressed: {} > 28",
            result.nodes_explored
        );
    }

    #[test]
    fn node_budget_is_respected() {
        let set = MulticastSet::new(
            NodeSpec::new(1, 1),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 2),
                NodeSpec::new(3, 3),
                NodeSpec::new(4, 4),
                NodeSpec::new(5, 5),
                NodeSpec::new(6, 6),
                NodeSpec::new(7, 7),
            ],
        )
        .unwrap();
        let net = NetParams::new(1);
        let options = SearchOptions {
            node_budget: 5,
            ..SearchOptions::default()
        };
        let result = search(&set, net, options);
        // The incumbent (greedy) is still a valid schedule.
        validate(&result.tree, &set).unwrap();
        assert!(!result.proven_optimal);
        assert!(result.nodes_explored <= 7);
    }
}
