//! Baseline multicast schedules.
//!
//! The paper's introduction positions the receive-send greedy algorithm
//! against simpler strategies: heterogeneity-oblivious trees (binomial,
//! chain, separate addressing) and the greedy algorithm for the older
//! heterogeneous-*node* model of Banikazemi et al. / Hall et al. These
//! baselines are used by experiment E8 to reproduce the comparison
//! landscape: every baseline builds a schedule tree, and every tree is
//! evaluated under the *true* receive-send model, so the comparison captures
//! exactly the cost of ignoring (part of) the heterogeneity.

mod binomial;
mod chain;
mod fnf;
mod random_tree;

pub use binomial::binomial_schedule;
pub use chain::{chain_schedule, star_schedule};
pub use fnf::fastest_node_first_schedule;
pub use random_tree::{random_schedule, SplitMix64};

#[cfg(test)]
mod tests {
    use crate::planner::{find, registry, PlanContext, PlanRequest};
    use crate::schedule::validate::validate;
    use hnow_model::{MulticastSet, NetParams, NodeSpec};

    /// The baseline landscape by registry name: every strategy E8 compares
    /// (the pre-retirement `Strategy` enum's variants, one name each).
    const BASELINES: [&str; 8] = [
        "greedy",
        "greedy+leaf",
        "dp-optimal",
        "fnf",
        "binomial",
        "chain",
        "star",
        "random",
    ];

    #[test]
    fn every_baseline_name_builds_a_valid_schedule() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
                NodeSpec::new(4, 6),
                NodeSpec::new(4, 6),
            ],
        )
        .unwrap();
        let net = NetParams::new(1);
        for name in BASELINES {
            let request = PlanRequest::new(set.clone(), net).with_seed(7);
            let tree = find(name)
                .unwrap_or_else(|| panic!("{name}: missing from the registry"))
                .construct(&request, &PlanContext::new())
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .tree;
            validate(&tree, &set).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn every_baseline_name_resolves_in_the_registry() {
        // The retirement contract: the old enum's eight names stay valid
        // registry keys, and the registry holds no duplicate names.
        for name in BASELINES {
            assert!(find(name).is_some(), "{name}: missing from the registry");
        }
        let mut names: Vec<&str> = registry().iter().map(|p| p.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
