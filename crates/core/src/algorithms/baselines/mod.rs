//! Baseline multicast schedules.
//!
//! The paper's introduction positions the receive-send greedy algorithm
//! against simpler strategies: heterogeneity-oblivious trees (binomial,
//! chain, separate addressing) and the greedy algorithm for the older
//! heterogeneous-*node* model of Banikazemi et al. / Hall et al. These
//! baselines are used by experiment E8 to reproduce the comparison
//! landscape: every baseline builds a schedule tree, and every tree is
//! evaluated under the *true* receive-send model, so the comparison captures
//! exactly the cost of ignoring (part of) the heterogeneity.

mod binomial;
mod chain;
mod fnf;
mod random_tree;

pub use binomial::binomial_schedule;
pub use chain::{chain_schedule, star_schedule};
pub use fnf::fastest_node_first_schedule;
pub use random_tree::{random_schedule, SplitMix64};

use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NetParams};
use serde::{Deserialize, Serialize};

/// Identifier of a schedule-construction strategy, used by experiments and
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// The paper's greedy algorithm (Lemma 1).
    Greedy,
    /// Greedy followed by the leaf refinement of Section 3.
    GreedyRefined,
    /// The Theorem 2 dynamic program (optimal for limited heterogeneity).
    DpOptimal,
    /// Greedy for the heterogeneous-node model, evaluated under the
    /// receive-send model.
    FastestNodeFirst,
    /// Heterogeneity-oblivious binomial tree.
    Binomial,
    /// Linear pipeline through all destinations.
    Chain,
    /// The source sends to every destination itself ("separate addressing").
    Star,
    /// A uniformly random valid schedule.
    Random,
}

impl Strategy {
    /// Short human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Greedy => "greedy",
            Strategy::GreedyRefined => "greedy+leaf",
            Strategy::DpOptimal => "dp-optimal",
            Strategy::FastestNodeFirst => "fnf",
            Strategy::Binomial => "binomial",
            Strategy::Chain => "chain",
            Strategy::Star => "star",
            Strategy::Random => "random",
        }
    }
}

/// Builds the schedule prescribed by a baseline strategy.
///
/// `seed` is only used by [`Strategy::Random`]. [`Strategy::DpOptimal`]
/// groups the instance into types and is exact but exponential in the number
/// of *distinct* types; the other strategies are linear or `O(n log n)`.
///
/// This is a thin compatibility shim over the unified
/// [`planner`](crate::planner) registry: every strategy name resolves to a
/// registered [`Planner`](crate::planner::Planner), which holds the single
/// copy of the per-algorithm construction code.
pub fn build_schedule(
    strategy: Strategy,
    set: &MulticastSet,
    net: NetParams,
    seed: u64,
) -> ScheduleTree {
    let request = crate::planner::PlanRequest::new(set.clone(), net).with_seed(seed);
    crate::planner::find(strategy.name())
        .expect("every Strategy has a registered planner of the same name")
        .construct(&request, &crate::planner::PlanContext::new())
        .expect("constructing a schedule for a well-formed instance succeeds")
        .tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate::validate;
    use hnow_model::NodeSpec;

    #[test]
    fn every_strategy_builds_a_valid_schedule() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
                NodeSpec::new(4, 6),
                NodeSpec::new(4, 6),
            ],
        )
        .unwrap();
        let net = NetParams::new(1);
        let strategies = [
            Strategy::Greedy,
            Strategy::GreedyRefined,
            Strategy::DpOptimal,
            Strategy::FastestNodeFirst,
            Strategy::Binomial,
            Strategy::Chain,
            Strategy::Star,
            Strategy::Random,
        ];
        for s in strategies {
            let tree = build_schedule(s, &set, net, 7);
            validate(&tree, &set).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        }
    }

    #[test]
    fn strategy_names_are_unique() {
        let strategies = [
            Strategy::Greedy,
            Strategy::GreedyRefined,
            Strategy::DpOptimal,
            Strategy::FastestNodeFirst,
            Strategy::Binomial,
            Strategy::Chain,
            Strategy::Star,
            Strategy::Random,
        ];
        let mut names: Vec<&str> = strategies.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), strategies.len());
    }
}
