//! Chain (pipeline) and star (separate addressing) schedules.

use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NodeId};

/// Builds the linear pipeline schedule: the source sends to `p_1`, which
/// sends to `p_2`, and so on. Every node makes at most one transmission, so
/// the completion time grows linearly with the number of destinations —
/// the worst reasonable baseline for large multicasts, but the one with the
/// least per-node load.
pub fn chain_schedule(set: &MulticastSet) -> ScheduleTree {
    let n = set.num_nodes();
    let mut tree = ScheduleTree::new(n);
    for i in 1..n {
        tree.attach(NodeId(i - 1), NodeId(i))
            .expect("chain attaches each node once");
    }
    tree
}

/// Builds the "separate addressing" schedule: the source transmits to every
/// destination itself, in canonical (fast-first) order. This is what a
/// system without any multicast support does; the source's sending overhead
/// is incurred once per destination.
pub fn star_schedule(set: &MulticastSet) -> ScheduleTree {
    let n = set.num_nodes();
    let mut tree = ScheduleTree::new(n);
    for i in 1..n {
        tree.attach(NodeId(0), NodeId(i))
            .expect("star attaches each node once");
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::times::{evaluate, reception_completion};
    use crate::schedule::validate::validate;
    use hnow_model::{NetParams, NodeSpec, Time};

    fn sample() -> (MulticastSet, NetParams) {
        (
            MulticastSet::new(
                NodeSpec::new(2, 2),
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(1, 1),
                    NodeSpec::new(3, 4),
                ],
            )
            .unwrap(),
            NetParams::new(1),
        )
    }

    #[test]
    fn chain_times_accumulate_along_the_pipeline() {
        let (set, net) = sample();
        let tree = chain_schedule(&set);
        validate(&tree, &set).unwrap();
        let t = evaluate(&tree, &set, net).unwrap();
        // p1: 2+1+1 = 4; p2: 4+1+1+1 = 7; p3: 7+1+1+4 = 13.
        assert_eq!(t.reception(NodeId(1)), Time::new(4));
        assert_eq!(t.reception(NodeId(2)), Time::new(7));
        assert_eq!(t.reception(NodeId(3)), Time::new(13));
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn star_times_serialize_at_the_source() {
        let (set, net) = sample();
        let tree = star_schedule(&set);
        validate(&tree, &set).unwrap();
        let t = evaluate(&tree, &set, net).unwrap();
        // i-th destination delivered at 2i + 1.
        assert_eq!(t.reception(NodeId(1)), Time::new(4));
        assert_eq!(t.reception(NodeId(2)), Time::new(6));
        assert_eq!(t.reception(NodeId(3)), Time::new(11));
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn chain_grows_linearly_star_grows_linearly_greedy_logarithmically() {
        let set = MulticastSet::homogeneous(NodeSpec::new(1, 1), 32);
        let net = NetParams::new(1);
        let chain = reception_completion(&chain_schedule(&set), &set, net).unwrap();
        let star = reception_completion(&star_schedule(&set), &set, net).unwrap();
        let greedy = reception_completion(
            &crate::algorithms::greedy::greedy_schedule(&set, net),
            &set,
            net,
        )
        .unwrap();
        assert!(chain.raw() >= 32 * 3);
        assert!(star.raw() >= 32 + 2);
        assert!(greedy < star.min(chain));
    }

    #[test]
    fn empty_instances() {
        let set = MulticastSet::new(NodeSpec::new(1, 1), vec![]).unwrap();
        assert!(chain_schedule(&set).is_complete());
        assert!(star_schedule(&set).is_complete());
    }
}
