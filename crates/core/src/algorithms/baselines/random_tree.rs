//! Uniformly random valid schedules.
//!
//! Random schedules provide the "no intelligence at all" reference point in
//! the baseline comparison and are also used by property tests as a source
//! of arbitrary valid trees. To keep `hnow-core` dependency-free the module
//! carries its own tiny deterministic generator ([`SplitMix64`]) rather than
//! depending on the `rand` crate; experiments that need richer distributions
//! layer `rand` on top in `hnow-workload`.

use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NodeId};

/// Minimal deterministic pseudo-random generator (SplitMix64), sufficient
/// for shuffling and parent selection.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping; the slight modulo bias is
        // irrelevant for schedule sampling.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Builds a random valid schedule: destinations are inserted in a random
/// order, each attached (as the last child) to a uniformly chosen node that
/// already holds the message.
pub fn random_schedule(set: &MulticastSet, seed: u64) -> ScheduleTree {
    let n = set.num_destinations();
    let mut rng = SplitMix64::new(seed);
    let mut tree = ScheduleTree::new(set.num_nodes());
    // Random insertion order (Fisher–Yates).
    let mut order: Vec<NodeId> = (1..=n).map(NodeId).collect();
    for i in (1..order.len()).rev() {
        let j = rng.next_below((i + 1) as u64) as usize;
        order.swap(i, j);
    }
    let mut holders: Vec<NodeId> = vec![NodeId::SOURCE];
    for dest in order {
        let parent = holders[rng.next_below(holders.len() as u64) as usize];
        tree.attach(parent, dest)
            .expect("random construction attaches each destination once");
        holders.push(dest);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate::validate;
    use hnow_model::NodeSpec;

    fn sample_set(n: usize) -> MulticastSet {
        let specs = (0..n)
            .map(|i| NodeSpec::new(1 + (i as u64 % 4), 1 + (i as u64 % 4) * 2))
            .collect();
        MulticastSet::new(NodeSpec::new(2, 3), specs).unwrap()
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(c.next_below(10) < 10);
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_schedules_are_valid_and_deterministic_per_seed() {
        let set = sample_set(12);
        for seed in 0..20u64 {
            let t1 = random_schedule(&set, seed);
            let t2 = random_schedule(&set, seed);
            assert_eq!(t1, t2);
            validate(&t1, &set).unwrap();
        }
    }

    #[test]
    fn different_seeds_produce_different_trees() {
        let set = sample_set(10);
        let distinct: std::collections::HashSet<String> = (0..10u64)
            .map(|s| format!("{:?}", random_schedule(&set, s)))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn trivial_instance() {
        let set = MulticastSet::new(NodeSpec::new(1, 1), vec![]).unwrap();
        assert!(random_schedule(&set, 3).is_complete());
    }
}
