//! Fastest-node-first: the greedy algorithm of the heterogeneous-*node*
//! model, evaluated under the receive-send model.
//!
//! Banikazemi, Moorthy and Panda (1998) proposed, for the model in which
//! each node has a single message-initiation cost, the greedy rule "the
//! earliest-available holder sends to the fastest remaining destination".
//! This baseline runs exactly that construction while *pretending* the
//! receive overheads and the network latency do not exist (as that model
//! assumes), and then the resulting tree is evaluated under the true
//! receive-send model. The gap to the paper's greedy algorithm measures the
//! value of modelling receive overheads explicitly.

use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Builds the fastest-node-first schedule.
///
/// The construction is identical to the paper's greedy algorithm except that
/// the availability of a holder is computed in the heterogeneous-node model
/// (initiation cost = sending overhead, no receive overhead, no latency);
/// the `net` parameter is accepted only so the signature matches the other
/// strategies — it does not influence the tree shape.
pub fn fastest_node_first_schedule(set: &MulticastSet, _net: NetParams) -> ScheduleTree {
    let n = set.num_destinations();
    let mut tree = ScheduleTree::new(set.num_nodes());
    if n == 0 {
        return tree;
    }
    let mut heap: BinaryHeap<Reverse<(Time, NodeId)>> = BinaryHeap::with_capacity(n + 1);
    heap.push(Reverse((set.source().send(), NodeId::SOURCE)));
    for i in 1..=n {
        let dest = NodeId(i);
        let Reverse((avail, holder)) = heap.pop().expect("heap is never empty");
        tree.attach(holder, dest)
            .expect("fnf attaches each destination exactly once");
        // In the heterogeneous-node model the destination holds the message
        // at `avail` and can complete its own first send o_send later.
        heap.push(Reverse((avail + set.spec(dest).send(), dest)));
        heap.push(Reverse((avail + set.spec(holder).send(), holder)));
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy::greedy_schedule;
    use crate::schedule::times::reception_completion;
    use crate::schedule::validate::validate;
    use hnow_model::NodeSpec;

    #[test]
    fn builds_valid_schedules() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 2),
                NodeSpec::new(2, 3),
                NodeSpec::new(5, 9),
            ],
        )
        .unwrap();
        let net = NetParams::new(2);
        let tree = fastest_node_first_schedule(&set, net);
        validate(&tree, &set).unwrap();
    }

    #[test]
    fn ignores_latency_in_tree_shape() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
            ],
        )
        .unwrap();
        let a = fastest_node_first_schedule(&set, NetParams::new(0));
        let b = fastest_node_first_schedule(&set, NetParams::new(50));
        assert_eq!(a, b);
    }

    #[test]
    fn matches_greedy_when_recv_and_latency_vanish() {
        // With zero receive overheads and zero latency the two models agree,
        // so the trees have the same completion time.
        let set = MulticastSet::new(
            NodeSpec::new(2, 0),
            vec![
                NodeSpec::new(1, 0),
                NodeSpec::new(2, 0),
                NodeSpec::new(3, 0),
                NodeSpec::new(4, 0),
            ],
        )
        .unwrap();
        let net = NetParams::new(0);
        let fnf = fastest_node_first_schedule(&set, net);
        let greedy = greedy_schedule(&set, net);
        assert_eq!(
            reception_completion(&fnf, &set, net).unwrap(),
            reception_completion(&greedy, &set, net).unwrap()
        );
    }

    #[test]
    fn greedy_is_at_least_as_good_under_the_true_model() {
        // With large receive overheads the fnf availability estimates are
        // badly wrong; the receive-send greedy should not lose.
        let set = MulticastSet::new(
            NodeSpec::new(1, 2),
            vec![
                NodeSpec::new(1, 2),
                NodeSpec::new(1, 2),
                NodeSpec::new(2, 20),
                NodeSpec::new(2, 20),
                NodeSpec::new(3, 30),
                NodeSpec::new(3, 30),
            ],
        )
        .unwrap();
        let net = NetParams::new(4);
        let fnf = reception_completion(&fastest_node_first_schedule(&set, net), &set, net).unwrap();
        let greedy = reception_completion(&greedy_schedule(&set, net), &set, net).unwrap();
        assert!(greedy <= fnf, "greedy {greedy} vs fnf {fnf}");
    }
}
