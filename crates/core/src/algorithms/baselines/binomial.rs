//! Heterogeneity-oblivious binomial-tree multicast.
//!
//! The binomial tree is the optimal broadcast shape in the homogeneous
//! one-port model: in every round, every node that already holds the message
//! forwards it to one node that does not, doubling the informed set. It is
//! the natural "what an MPI implementation tuned for homogeneous clusters
//! would do" baseline; on a heterogeneous cluster it can place a slow
//! workstation high in the tree, where its large overheads delay an entire
//! subtree.

use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NodeId};

/// Builds the binomial (recursive doubling) schedule, assigning destinations
/// to tree positions in their canonical (fast-first) index order.
///
/// Round `r` has every informed node `v` send to the node whose index is
/// `v + 2^r`, for as long as such nodes exist — the standard binomial
/// broadcast enumeration. Heterogeneity is ignored entirely.
pub fn binomial_schedule(set: &MulticastSet) -> ScheduleTree {
    let n = set.num_nodes();
    let mut tree = ScheduleTree::new(n);
    let mut informed = 1usize; // nodes 0..informed hold the message
    while informed < n {
        let wave = informed.min(n - informed);
        for i in 0..wave {
            let sender = NodeId(i);
            let receiver = NodeId(informed + i);
            tree.attach(sender, receiver)
                .expect("binomial enumeration attaches each node once");
        }
        informed += wave;
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::times::reception_completion;
    use crate::schedule::validate::validate;
    use hnow_model::{NetParams, NodeSpec, Time};

    #[test]
    fn shape_is_binomial() {
        let set = MulticastSet::homogeneous(NodeSpec::new(1, 0), 7);
        let tree = binomial_schedule(&set);
        validate(&tree, &set).unwrap();
        // The source of a complete binomial tree over 8 nodes has 3 children.
        assert_eq!(tree.children(NodeId(0)).len(), 3);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn homogeneous_completion_is_optimal_doubling() {
        for n in [1usize, 2, 3, 7, 8, 15] {
            let set = MulticastSet::homogeneous(NodeSpec::new(3, 0), n);
            let net = NetParams::new(0);
            let tree = binomial_schedule(&set);
            let rounds = usize::BITS - n.leading_zeros();
            assert_eq!(
                reception_completion(&tree, &set, net).unwrap(),
                Time::new(3 * u64::from(rounds)),
                "n = {n}"
            );
        }
    }

    #[test]
    fn heterogeneous_binomial_is_vulnerable_to_slow_internal_nodes() {
        // One very slow destination placed early in index order would be an
        // internal node... but canonical ordering puts fast nodes first, so
        // the slow node lands in the last position. Construct an instance
        // where the slow node still ends up internal: 6 destinations, slow
        // node at index 3 (0-based canonical position among 6).
        let fast = NodeSpec::new(1, 1);
        let slow = NodeSpec::new(10, 15);
        let set = MulticastSet::new(fast, vec![fast, fast, fast, slow, slow, slow]).unwrap();
        let net = NetParams::new(1);
        let binom = binomial_schedule(&set);
        let greedy = crate::algorithms::greedy::greedy_schedule(&set, net);
        let b = reception_completion(&binom, &set, net).unwrap();
        let g = reception_completion(&greedy, &set, net).unwrap();
        assert!(g <= b, "greedy {g} should not lose to binomial {b}");
    }

    #[test]
    fn trivial_instances() {
        let set = MulticastSet::new(NodeSpec::new(1, 1), vec![]).unwrap();
        let tree = binomial_schedule(&set);
        assert!(tree.is_complete());
    }
}
