//! Instance transformations used in the proof of Theorem 1.
//!
//! Theorem 1 bounds the greedy algorithm by relating the original multicast
//! set `S` to a *rounded* set `S'`:
//!
//! * every sending overhead is rounded up to the next power of two, and
//! * every receiving overhead is replaced by `⌈α_max⌉ ·` (the rounded
//!   sending overhead), so that all receive-send ratios in `S'` equal the
//!   same integer `C = ⌈α_max⌉`.
//!
//! Each sending overhead in `S'` is less than `2` times, and each receiving
//! overhead less than `2·⌈α_max⌉/α_min` times, the
//! corresponding overhead in `S`, every pair of distinct sending overheads
//! in `S'` differs by a power-of-two factor, and (by Lemma 3 / Corollary 1)
//! the greedy schedule for `S'` attains the optimal delivery completion time
//! for `S'`. Chaining these facts yields the approximation bound.
//!
//! This module implements the `S → S'` construction and the predicates the
//! lemma needs, so that the proof's intermediate quantities can be measured
//! empirically (experiment E5).

use hnow_model::{ModelError, MulticastSet, NodeSpec};
use serde::{Deserialize, Serialize};

/// Outcome of the power-of-two rounding construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundedInstance {
    /// The rounded multicast set `S'`.
    pub set: MulticastSet,
    /// The uniform integer receive-send ratio `C = ⌈α_max⌉` of `S'`.
    pub uniform_ratio: u64,
    /// Largest factor by which any sending overhead grew (`< 2`).
    pub max_send_growth: f64,
    /// Largest factor by which any receiving overhead grew
    /// (`< 2·⌈α_max⌉/α_min`).
    pub max_recv_growth: f64,
}

fn next_power_of_two(v: u64) -> u64 {
    v.next_power_of_two()
}

/// Builds the rounded instance `S'` from `S` (Theorem 1's construction).
///
/// Returns an error only if the rounded overheads violate the model's
/// correlation assumption, which cannot happen for inputs accepted by
/// [`MulticastSet::new`] (rounding is monotone), so in practice this always
/// succeeds.
pub fn power_of_two_rounding(set: &MulticastSet) -> Result<RoundedInstance, ModelError> {
    let c = set.alpha_max().ceil().max(1.0) as u64;
    let mut max_send_growth: f64 = 1.0;
    let mut max_recv_growth: f64 = 1.0;
    let round = |spec: NodeSpec, max_s: &mut f64, max_r: &mut f64| {
        let send = next_power_of_two(spec.send().raw());
        let recv = c * send;
        *max_s = max_s.max(send as f64 / spec.send().as_f64());
        if spec.recv().raw() > 0 {
            *max_r = max_r.max(recv as f64 / spec.recv().as_f64());
        }
        NodeSpec::new(send, recv)
    };
    let source = round(set.source(), &mut max_send_growth, &mut max_recv_growth);
    let destinations = set
        .destinations()
        .iter()
        .map(|&d| round(d, &mut max_send_growth, &mut max_recv_growth))
        .collect();
    Ok(RoundedInstance {
        set: MulticastSet::new(source, destinations)?,
        uniform_ratio: c,
        max_send_growth,
        max_recv_growth,
    })
}

/// Returns the uniform integer receive-send ratio `C` shared by every node
/// of the instance, or `None` if the ratios are not all equal to the same
/// integer (Lemma 3's precondition).
pub fn uniform_integer_ratio(set: &MulticastSet) -> Option<u64> {
    let mut ratio = None;
    for (_, spec) in set.iter_nodes() {
        let send = spec.send().raw();
        let recv = spec.recv().raw();
        if recv % send != 0 {
            return None;
        }
        let c = recv / send;
        match ratio {
            None => ratio = Some(c),
            Some(existing) if existing == c => {}
            Some(_) => return None,
        }
    }
    ratio
}

/// Whether every sending overhead in the instance is a power of two (so any
/// two distinct sending overheads differ by a factor `2^k`, as Lemma 3
/// requires).
pub fn has_power_of_two_sends(set: &MulticastSet) -> bool {
    set.iter_nodes()
        .all(|(_, spec)| spec.send().raw().is_power_of_two())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_model::Time;

    fn figure1() -> MulticastSet {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap()
    }

    #[test]
    fn rounding_produces_uniform_power_of_two_instance() {
        let set = MulticastSet::new(
            NodeSpec::new(3, 5),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(5, 7),
                NodeSpec::new(6, 11),
            ],
        )
        .unwrap();
        let rounded = power_of_two_rounding(&set).unwrap();
        assert!(has_power_of_two_sends(&rounded.set));
        assert_eq!(
            uniform_integer_ratio(&rounded.set),
            Some(rounded.uniform_ratio)
        );
        // α_max of the original set is 11/6 < 2, so C = 2.
        assert_eq!(rounded.uniform_ratio, 2);
        // Sends grow by strictly less than 2.
        assert!(rounded.max_send_growth < 2.0);
        // Receives grow by strictly less than 2·⌈α_max⌉/α_min.
        let bound = 2.0 * set.alpha_max().ceil() / set.alpha_min();
        assert!(rounded.max_recv_growth < bound);
    }

    #[test]
    fn figure1_rounding() {
        let rounded = power_of_two_rounding(&figure1()).unwrap();
        // α_max = 1.5 → C = 2; slow (2,3) → (2,4); fast (1,1) → (1,2).
        assert_eq!(rounded.uniform_ratio, 2);
        assert_eq!(rounded.set.source(), NodeSpec::new(2, 4));
        assert_eq!(rounded.set.destination(0), NodeSpec::new(1, 2));
        assert_eq!(rounded.set.destination(3), NodeSpec::new(2, 4));
    }

    #[test]
    fn rounded_overheads_dominate_originals() {
        let sets = vec![
            figure1(),
            MulticastSet::new(
                NodeSpec::new(7, 9),
                vec![
                    NodeSpec::new(2, 3),
                    NodeSpec::new(9, 13),
                    NodeSpec::new(20, 37),
                ],
            )
            .unwrap(),
        ];
        for set in sets {
            let rounded = power_of_two_rounding(&set).unwrap();
            for ((_, orig), (_, r)) in set.iter_nodes().zip(rounded.set.iter_nodes()) {
                assert!(r.send() >= orig.send());
                assert!(r.recv() >= orig.recv());
                assert!(r.send() < Time::new(2 * orig.send().raw()));
            }
        }
    }

    #[test]
    fn uniform_ratio_detection() {
        let uniform = MulticastSet::new(
            NodeSpec::new(1, 2),
            vec![NodeSpec::new(2, 4), NodeSpec::new(4, 8)],
        )
        .unwrap();
        assert_eq!(uniform_integer_ratio(&uniform), Some(2));

        let non_uniform = figure1();
        assert_eq!(uniform_integer_ratio(&non_uniform), None);

        let fractional = MulticastSet::new(NodeSpec::new(2, 3), vec![NodeSpec::new(2, 3)]).unwrap();
        assert_eq!(uniform_integer_ratio(&fractional), None);
    }

    #[test]
    fn power_of_two_detection() {
        assert!(has_power_of_two_sends(
            &MulticastSet::new(
                NodeSpec::new(4, 4),
                vec![NodeSpec::new(1, 1), NodeSpec::new(8, 8)]
            )
            .unwrap()
        ));
        // Figure 1's sends (1 and 2) are powers of two; a send of 3 is not.
        assert!(has_power_of_two_sends(&figure1()));
        assert!(!has_power_of_two_sends(
            &MulticastSet::new(NodeSpec::new(3, 4), vec![NodeSpec::new(1, 1)]).unwrap()
        ));
    }

    #[test]
    fn zero_recv_nodes_round_cleanly() {
        // Heterogeneous-node-model embeddings have zero receive overheads;
        // the rounding still produces a uniform-ratio instance.
        let set = MulticastSet::new(
            NodeSpec::new(3, 0),
            vec![NodeSpec::new(1, 0), NodeSpec::new(5, 0)],
        )
        .unwrap();
        let rounded = power_of_two_rounding(&set).unwrap();
        assert!(has_power_of_two_sends(&rounded.set));
        assert_eq!(rounded.uniform_ratio, 1);
    }
}
