//! The greedy multicast scheduling algorithm (Section 2, Lemma 1).
//!
//! Destinations are considered in non-decreasing order of overhead (fastest
//! workstations first). At iteration `i`, the algorithm finds the node
//! already holding the message that can *complete a delivery the earliest*
//! and makes it send to destination `p_i`. A binary heap keyed by each
//! holder's next possible delivery-completion time implements each iteration
//! in `O(log n)`, for a total running time of `O(n log n)` including the
//! initial sort (Lemma 1).
//!
//! Every schedule produced this way is **layered** (faster destinations are
//! delivered strictly before slower ones), and by the paper's Lemma 2 /
//! Corollary 1 it attains the minimum *delivery* completion time over all
//! layered schedules. Theorem 1 turns this into an approximation guarantee
//! for the *reception* completion time:
//! `GREEDY_R < 2·(α_max/α_min)·OPT_R + β`.
//!
//! The end of Section 3 observes that delivering to *leaf* nodes fast-first
//! is counter-productive; [`GreedyOptions::refine_leaves`] applies the
//! corresponding post-pass ([`crate::schedule::ops::refine_leaves`]).

use crate::schedule::ops::refine_leaves;
use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Options controlling the greedy construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyOptions {
    /// Apply the leaf-delivery refinement after the tree is built
    /// (the practical modification recommended at the end of Section 3).
    pub refine_leaves: bool,
}

impl GreedyOptions {
    /// Plain greedy, exactly as analysed by Theorem 1.
    pub const PLAIN: GreedyOptions = GreedyOptions {
        refine_leaves: false,
    };
    /// Greedy followed by the leaf refinement.
    pub const REFINED: GreedyOptions = GreedyOptions {
        refine_leaves: true,
    };

    /// Builder-style setter for the leaf refinement flag.
    #[must_use]
    pub fn with_refine_leaves(mut self, refine_leaves: bool) -> Self {
        self.refine_leaves = refine_leaves;
        self
    }
}

/// Runs the greedy algorithm and returns the schedule tree.
///
/// Destinations are attached in the multicast set's canonical order
/// (non-decreasing overhead), so the result is deterministic; ties between
/// holders with equal next-delivery times are broken in favour of the
/// smaller node id (i.e. the source, then faster destinations).
pub fn greedy_schedule(set: &MulticastSet, net: NetParams) -> ScheduleTree {
    greedy_with_options(set, net, GreedyOptions::PLAIN)
}

/// Runs the greedy algorithm with explicit options.
pub fn greedy_with_options(
    set: &MulticastSet,
    net: NetParams,
    options: GreedyOptions,
) -> ScheduleTree {
    let n = set.num_destinations();
    let mut tree = ScheduleTree::new(set.num_nodes());
    if n == 0 {
        return tree;
    }
    // Min-heap over (next possible delivery-completion time, node id).
    let mut heap: BinaryHeap<Reverse<(Time, NodeId)>> = BinaryHeap::with_capacity(n + 1);
    let source_first_delivery = set.source().send() + net.latency();
    heap.push(Reverse((source_first_delivery, NodeId::SOURCE)));

    for i in 1..=n {
        let dest = NodeId(i);
        let Reverse((delivery_time, holder)) = heap.pop().expect("heap is never empty");
        tree.attach(holder, dest)
            .expect("greedy attaches each destination exactly once");
        // The new holder's first possible delivery completion.
        let dest_spec = set.spec(dest);
        let dest_key = delivery_time + dest_spec.recv() + dest_spec.send() + net.latency();
        heap.push(Reverse((dest_key, dest)));
        // The sender can complete its next delivery one sending overhead
        // later.
        let holder_key = delivery_time + set.spec(holder).send();
        heap.push(Reverse((holder_key, holder)));
    }

    if options.refine_leaves {
        refine_leaves(&tree, set, net).expect("greedy trees are complete and well-formed")
    } else {
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::times::{evaluate, reception_completion};
    use crate::schedule::validate::{is_layered, validate};
    use hnow_model::NodeSpec;

    fn figure1() -> (MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        (
            MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap(),
            NetParams::new(1),
        )
    }

    #[test]
    fn greedy_reproduces_figure1a() {
        let (set, net) = figure1();
        let tree = greedy_schedule(&set, net);
        let timing = evaluate(&tree, &set, net).unwrap();
        // The greedy schedule is the paper's Figure 1(a): completion time 10,
        // with the fast nodes received at 4, 6 and 7.
        assert_eq!(timing.reception_completion(), Time::new(10));
        let mut receptions: Vec<u64> = set
            .destination_ids()
            .map(|v| timing.reception(v).raw())
            .collect();
        receptions.sort_unstable();
        assert_eq!(receptions, vec![4, 6, 7, 10]);
    }

    #[test]
    fn refined_greedy_improves_figure1() {
        let (set, net) = figure1();
        let plain = greedy_schedule(&set, net);
        let refined = greedy_with_options(&set, net, GreedyOptions::REFINED);
        let plain_r = reception_completion(&plain, &set, net).unwrap();
        let refined_r = reception_completion(&refined, &set, net).unwrap();
        assert_eq!(plain_r, Time::new(10));
        // The refinement hands the slow leaf the earliest leaf slot; for this
        // instance the completion drops to 8 (better than the paper's
        // illustrative 9-unit schedule, which it never claims is optimal).
        assert_eq!(refined_r, Time::new(8));
    }

    #[test]
    fn greedy_schedules_are_valid_and_layered() {
        let sets = vec![
            figure1().0,
            MulticastSet::homogeneous(NodeSpec::new(3, 4), 9),
            MulticastSet::new(
                NodeSpec::new(1, 1),
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(2, 2),
                    NodeSpec::new(2, 3),
                    NodeSpec::new(5, 9),
                    NodeSpec::new(8, 11),
                    NodeSpec::new(8, 12),
                ],
            )
            .unwrap(),
        ];
        for set in sets {
            for latency in [0u64, 1, 5] {
                let net = NetParams::new(latency);
                let tree = greedy_schedule(&set, net);
                validate(&tree, &set).unwrap();
                assert!(is_layered(&tree, &set, net).unwrap());
            }
        }
    }

    #[test]
    fn trivial_and_single_destination() {
        let net = NetParams::new(2);
        let empty = MulticastSet::new(NodeSpec::new(3, 3), vec![]).unwrap();
        let tree = greedy_schedule(&empty, net);
        assert!(tree.is_complete());
        assert_eq!(
            reception_completion(&tree, &empty, net).unwrap(),
            Time::ZERO
        );

        let single = MulticastSet::new(NodeSpec::new(3, 6), vec![NodeSpec::new(2, 5)]).unwrap();
        let tree = greedy_schedule(&single, net);
        // o_send(src) + L + o_recv(dest) = 3 + 2 + 5.
        assert_eq!(
            reception_completion(&tree, &single, net).unwrap(),
            Time::new(10)
        );
    }

    #[test]
    fn homogeneous_greedy_matches_binomial_growth() {
        // With identical nodes, zero latency and recv = 0, greedy reduces to
        // the classic one-port doubling schedule: completion ⌈log2(n+1)⌉·s.
        for n in [1usize, 2, 3, 7, 8, 15, 16, 31] {
            let set = MulticastSet::homogeneous(NodeSpec::new(4, 0), n);
            let net = NetParams::new(0);
            let tree = greedy_schedule(&set, net);
            let r = reception_completion(&tree, &set, net).unwrap();
            let rounds = usize::BITS - n.leading_zeros();
            assert_eq!(r, Time::new(4 * u64::from(rounds)), "n = {n}");
        }
    }

    #[test]
    fn fast_destinations_receive_before_slow_ones() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 2),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(4, 5),
                NodeSpec::new(4, 5),
                NodeSpec::new(10, 14),
            ],
        )
        .unwrap();
        let net = NetParams::new(3);
        let tree = greedy_schedule(&set, net);
        let timing = evaluate(&tree, &set, net).unwrap();
        // Layered: delivery times respect the speed order.
        assert!(timing.delivery(NodeId(1)) < timing.delivery(NodeId(3)));
        assert!(timing.delivery(NodeId(4)) < timing.delivery(NodeId(5)));
    }

    #[test]
    fn refinement_never_hurts_on_assorted_instances() {
        let instances = vec![
            figure1().0,
            MulticastSet::new(
                NodeSpec::new(5, 7),
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(2, 3),
                    NodeSpec::new(3, 5),
                    NodeSpec::new(5, 7),
                    NodeSpec::new(5, 7),
                ],
            )
            .unwrap(),
            MulticastSet::homogeneous(NodeSpec::new(2, 9), 12),
        ];
        for set in instances {
            for latency in [0u64, 1, 4] {
                let net = NetParams::new(latency);
                let plain = greedy_schedule(&set, net);
                let refined = greedy_with_options(&set, net, GreedyOptions::REFINED);
                assert!(
                    reception_completion(&refined, &set, net).unwrap()
                        <= reception_completion(&plain, &set, net).unwrap()
                );
            }
        }
    }
}
