//! Batched planning: fan requests across planners, share DP tables.

use crate::algorithms::dp::DpTable;
use crate::error::CoreError;
use crate::planner::registry::Planner;
use crate::planner::request::{Plan, PlanRequest};
use hnow_model::{NetParams, NodeSpec, TypedMulticast};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Memoized Theorem 2 whole-network DP tables, shared across every request
/// of a batch.
///
/// Section 4 of the paper recommends precomputing the DP table for a whole
/// network once, because the completed table answers *every* multicast over
/// the same workstation types. The cache implements exactly that: tables are
/// keyed by `(class overheads, network latency)`, and a cached table serves
/// any request whose per-class counts fit inside its dimensions. A request
/// that outgrows the cached table triggers one rebuild with element-wise
/// maximum dimensions, after which both shapes hit.
///
/// The key is the *ordered* class-spec vector, so requests share a table
/// when their instances expose the same classes in the same order — which
/// is what [`TypedMulticast::from_multicast_set`] produces for instances
/// drawn from one class table with a fixed source class.
#[derive(Debug, Default)]
pub struct DpCache {
    tables: Mutex<HashMap<DpCacheKey, Arc<DpTable>>>,
    lookups: AtomicUsize,
    hits: AtomicUsize,
}

/// Cache key: the ordered class overheads plus the network parameters.
type DpCacheKey = (Vec<NodeSpec>, NetParams);

impl DpCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DpCache::default()
    }

    /// Returns a table covering `typed` at latency `net`, building (or
    /// widening) one on miss.
    ///
    /// Table builds are the expensive part of a batch, so they never happen
    /// while holding the cache lock: the lock is taken briefly to probe (and
    /// plan the widened dimensions), released for the build, then retaken
    /// for a double-checked insert. A racing thread that inserted an
    /// at-least-as-wide table meanwhile wins and the local build is
    /// discarded — either table answers the request identically. If two
    /// racing builds have incomparable dimensions the later insert wins and
    /// the other shape misses once more; that miss probes the now-cached
    /// table and builds the element-wise union, so the cache converges after
    /// at most one extra rebuild per raced shape.
    pub fn table_for(&self, typed: &TypedMulticast, net: NetParams) -> Arc<DpTable> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = (typed.specs().to_vec(), net);
        // Probe, and on an undersized table plan dimensions that also cover
        // everything previously cached under this key.
        let mut dims = typed.counts().to_vec();
        {
            let tables = self.tables.lock().expect("DP cache lock poisoned");
            if let Some(table) = tables.get(&key) {
                if table.covers(typed.counts()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(table);
                }
                for (dim, &old) in dims.iter_mut().zip(table.dims()) {
                    *dim = (*dim).max(old);
                }
            }
        }
        // Build outside the lock.
        let widened = TypedMulticast::new(typed.specs().to_vec(), typed.source_class(), dims)
            .expect("widening preserves validity of a typed instance");
        let table = Arc::new(DpTable::build(&widened, net));
        // Double-checked insert.
        let mut tables = self.tables.lock().expect("DP cache lock poisoned");
        match tables.get(&key) {
            Some(existing) if existing.covers(table.dims()) => Arc::clone(existing),
            _ => {
                tables.insert(key, Arc::clone(&table));
                table
            }
        }
    }

    /// Number of [`DpCache::table_for`] calls so far.
    pub fn lookups(&self) -> usize {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of lookups served from a cached table without a rebuild.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Shared state of one planning batch: today, the [`DpCache`].
#[derive(Debug, Default)]
pub struct PlanContext {
    dp: DpCache,
}

impl PlanContext {
    /// Creates a fresh context with an empty DP cache.
    pub fn new() -> Self {
        PlanContext::default()
    }

    /// The batch's DP table cache.
    pub fn dp_cache(&self) -> &DpCache {
        &self.dp
    }
}

/// Plans every request with every planner, in parallel over requests, with
/// a fresh shared [`PlanContext`].
///
/// Returns one row per request, each row holding one result per planner in
/// the order given. The output is identical to planning each `(request,
/// planner)` pair sequentially with [`Planner::plan`] — parallelism and the
/// DP cache change throughput, never results.
pub fn plan_many(
    planners: &[&dyn Planner],
    requests: &[PlanRequest],
) -> Vec<Vec<Result<Plan, CoreError>>> {
    plan_many_with(planners, requests, &PlanContext::new())
}

/// [`plan_many`] with an explicit context, so callers can reuse one DP
/// cache across several batches or read its statistics afterwards.
pub fn plan_many_with(
    planners: &[&dyn Planner],
    requests: &[PlanRequest],
    ctx: &PlanContext,
) -> Vec<Vec<Result<Plan, CoreError>>> {
    requests
        .par_iter()
        .map(|request| {
            planners
                .iter()
                .map(|planner| planner.plan_with(request, ctx))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::registry::{find, registry};
    use hnow_model::{MulticastSet, NodeSpec};

    fn two_class_requests() -> Vec<PlanRequest> {
        // Four instances over the same two classes with the same (slow)
        // source class, at one latency: one DP table can serve them all.
        let fast = NodeSpec::new(1, 1);
        let slow = NodeSpec::new(2, 3);
        let net = NetParams::new(1);
        [(3usize, 3usize), (3, 1), (2, 2), (1, 3)]
            .into_iter()
            .map(|(nf, ns)| {
                let mut dests = vec![fast; nf];
                dests.extend(std::iter::repeat_n(slow, ns));
                PlanRequest::new(MulticastSet::new(slow, dests).unwrap(), net).with_seed(7)
            })
            .collect()
    }

    #[test]
    fn plan_many_matches_sequential_planning() {
        let requests = two_class_requests();
        let planners: Vec<&dyn Planner> = registry().to_vec();
        let batched = plan_many(&planners, &requests);
        assert_eq!(batched.len(), requests.len());
        for (request, row) in requests.iter().zip(&batched) {
            assert_eq!(row.len(), planners.len());
            for (planner, result) in planners.iter().zip(row) {
                let sequential = planner.plan(request);
                assert_eq!(result, &sequential, "{} diverged in batch", planner.name());
            }
        }
    }

    #[test]
    fn dp_tables_are_shared_across_same_class_table_requests() {
        let requests = two_class_requests();
        let ctx = PlanContext::new();
        let dp = find("dp-optimal").unwrap();
        // Plan sequentially against one shared context so the hit pattern is
        // deterministic even if the vendored rayon is swapped for the real,
        // parallel one.
        let plans: Vec<_> = requests
            .iter()
            .map(|request| dp.plan_with(request, &ctx).unwrap())
            .collect();
        assert_eq!(ctx.dp_cache().lookups(), requests.len());
        // The first (widest) request builds the table; every later request
        // fits inside its dimensions and hits.
        assert_eq!(ctx.dp_cache().hits(), requests.len() - 1);
        // Cached plans equal fresh uncached plans.
        for (request, cached) in requests.iter().zip(&plans) {
            assert_eq!(cached, &dp.plan(request).unwrap());
        }
    }

    #[test]
    fn outgrown_tables_are_rebuilt_with_union_dimensions() {
        // A request bigger than the cached table forces one rebuild whose
        // dimensions cover both shapes; afterwards both shapes hit. Also
        // exercises the build-outside-the-lock path end to end: the returned
        // tables must answer their requests despite probe/build/insert being
        // three separate critical sections.
        let specs = vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)];
        let net = NetParams::new(1);
        let cache = DpCache::new();

        let tall = TypedMulticast::new(specs.clone(), 0, vec![4, 1]).unwrap();
        let wide = TypedMulticast::new(specs.clone(), 0, vec![1, 4]).unwrap();
        let t1 = cache.table_for(&tall, net);
        assert_eq!(t1.dims(), &[4, 1]);
        let t2 = cache.table_for(&wide, net);
        assert_eq!(t2.dims(), &[4, 4], "rebuild takes element-wise max dims");
        assert_eq!(cache.hits(), 0);

        // Both original shapes (and anything inside the union) now hit.
        let t3 = cache.table_for(&tall, net);
        let t4 = cache.table_for(&wide, net);
        assert_eq!(cache.hits(), 2);
        assert!(Arc::ptr_eq(&t3, &t4));
        assert_eq!(t3.query(0, tall.counts()), t1.query(0, tall.counts()));
    }

    #[test]
    fn cache_distinguishes_latency_and_class_tables() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
        )
        .unwrap();
        let ctx = PlanContext::new();
        let dp = find("dp-optimal").unwrap();
        let r1 = PlanRequest::new(set.clone(), NetParams::new(1));
        let r2 = PlanRequest::new(set, NetParams::new(5));
        let p1 = dp.plan_with(&r1, &ctx).unwrap();
        let p2 = dp.plan_with(&r2, &ctx).unwrap();
        assert_eq!(ctx.dp_cache().lookups(), 2);
        assert_eq!(ctx.dp_cache().hits(), 0, "different latencies never share");
        assert!(p1.reception_completion() < p2.reception_completion());
    }
}
