//! Batched planning: fan requests across planners, share DP tables.

use crate::algorithms::dp::DpTable;
use crate::error::CoreError;
use crate::planner::registry::Planner;
use crate::planner::request::{Plan, PlanRequest};
use hnow_model::{NetParams, NodeSpec, TypedMulticast};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Memoized Theorem 2 whole-network DP tables, shared across every request
/// of a batch.
///
/// Section 4 of the paper recommends precomputing the DP table for a whole
/// network once, because the completed table answers *every* multicast over
/// the same workstation types. The cache implements exactly that: tables are
/// keyed by `(canonical class overheads, network latency)`, and a cached
/// table serves any request whose per-class counts fit inside its
/// dimensions. A request that outgrows the cached table triggers one rebuild
/// with element-wise maximum dimensions, after which both shapes hit.
///
/// The key is the **canonical** class signature
/// ([`TypedMulticast::canonical`]): classes sorted by overhead with
/// duplicates merged. Every multicast drawn from one physical cluster —
/// regardless of which node is the source or in which order
/// [`TypedMulticast::from_multicast_set`] happened to number the classes —
/// therefore shares a single table, which is what makes the cache effective
/// across thousands of overlapping traffic sessions. The returned table is
/// in canonical class order; reconstruct schedules from it with a canonical
/// instance (as [`table_for`](DpCache::table_for) documents).
///
/// Long-running services bound the cache with
/// [`DpCache::with_capacity`]: once more than `capacity` distinct signatures
/// are resident, the least-recently-used table is evicted (an evicted
/// signature simply rebuilds on its next use).
#[derive(Debug, Default)]
pub struct DpCache {
    inner: Mutex<CacheInner>,
    capacity: Option<usize>,
    lookups: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

/// Cache key: the canonical class overheads plus the network parameters.
type DpCacheKey = (Vec<NodeSpec>, NetParams);

#[derive(Debug, Default)]
struct CacheInner {
    tables: HashMap<DpCacheKey, CacheEntry>,
    /// Monotone logical clock stamping every access; unique per entry, so
    /// LRU eviction is deterministic.
    clock: u64,
}

#[derive(Debug)]
struct CacheEntry {
    table: Arc<DpTable>,
    last_used: u64,
}

impl DpCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        DpCache::default()
    }

    /// Creates an empty cache holding at most `capacity` tables (≥ 1),
    /// evicting the least-recently-used signature beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        DpCache {
            capacity: Some(capacity.max(1)),
            ..DpCache::default()
        }
    }

    /// Returns a table covering `typed` at latency `net`, building (or
    /// widening) one on miss.
    ///
    /// The instance is canonicalized ([`TypedMulticast::canonical`]) before
    /// keying, so the returned table's class order is the canonical one.
    /// Callers that reconstruct schedules via
    /// [`DpTable::schedule_for`] must therefore pass a canonical instance —
    /// cheapest is to canonicalize once up front and use that form for both
    /// the lookup and the reconstruction.
    ///
    /// Table builds are the expensive part of a batch, so they never happen
    /// while holding the cache lock: the lock is taken briefly to probe (and
    /// plan the widened dimensions), released for the build, then retaken
    /// for a double-checked insert. A racing thread that inserted an
    /// at-least-as-wide table meanwhile wins and the local build is
    /// discarded — either table answers the request identically. If two
    /// racing builds have incomparable dimensions the later insert wins and
    /// the other shape misses once more; that miss probes the now-cached
    /// table and builds the element-wise union, so the cache converges after
    /// at most one extra rebuild per raced shape.
    ///
    /// Metrics contract: every call counts one lookup, and every lookup is
    /// either a hit or a miss (`lookups == hits + misses`, always). The miss
    /// counter is incremented exactly once per table *built* — on the miss
    /// path, before the build — so a racing build that loses the
    /// double-checked insert still counts the one miss for the one build it
    /// performed, and no path counts twice.
    pub fn table_for(&self, typed: &TypedMulticast, net: NetParams) -> Arc<DpTable> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let canonical;
        let typed = if typed.is_canonical() {
            typed
        } else {
            canonical = typed.canonical();
            &canonical
        };
        let key = (typed.specs().to_vec(), net);
        // Probe, and on an undersized table plan dimensions that also cover
        // everything previously cached under this key.
        let mut dims = typed.counts().to_vec();
        {
            let mut inner = self.inner.lock().expect("DP cache lock poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.tables.get_mut(&key) {
                entry.last_used = clock;
                if entry.table.covers(typed.counts()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&entry.table);
                }
                for (dim, &old) in dims.iter_mut().zip(entry.table.dims()) {
                    *dim = (*dim).max(old);
                }
            }
        }
        // A miss: exactly one increment per table built, recorded before the
        // build so the racing-discard path below cannot skip or double it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock.
        let widened = TypedMulticast::new(typed.specs().to_vec(), typed.source_class(), dims)
            .expect("widening preserves validity of a typed instance");
        let table = Arc::new(DpTable::build(&widened, net));
        // Double-checked insert.
        let mut inner = self.inner.lock().expect("DP cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let result = match inner.tables.get_mut(&key) {
            Some(existing) if existing.table.covers(table.dims()) => {
                existing.last_used = clock;
                Arc::clone(&existing.table)
            }
            _ => {
                inner.tables.insert(
                    key.clone(),
                    CacheEntry {
                        table: Arc::clone(&table),
                        last_used: clock,
                    },
                );
                table
            }
        };
        // Evict least-recently-used signatures beyond capacity (never the
        // one just touched). `last_used` stamps are unique, so the victim —
        // and thus the whole cache state — is deterministic.
        if let Some(cap) = self.capacity {
            while inner.tables.len() > cap {
                let victim = inner
                    .tables
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(v) => {
                        inner.tables.remove(&v);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        result
    }

    /// Number of [`DpCache::table_for`] calls so far.
    pub fn lookups(&self) -> usize {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of lookups served from a cached table without a rebuild.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that built a table — exactly one per build, even
    /// when a racing build is discarded by the double-checked insert.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of tables evicted by the LRU capacity bound.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of tables currently resident.
    pub fn resident(&self) -> usize {
        self.inner
            .lock()
            .expect("DP cache lock poisoned")
            .tables
            .len()
    }

    /// Fraction of lookups served from cache (0.0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }
}

/// Shared state of one planning batch: today, the [`DpCache`].
#[derive(Debug, Default)]
pub struct PlanContext {
    dp: DpCache,
}

impl PlanContext {
    /// Creates a fresh context with an empty, unbounded DP cache.
    pub fn new() -> Self {
        PlanContext::default()
    }

    /// Creates a fresh context whose DP cache holds at most `capacity`
    /// tables (LRU eviction beyond that) — the right shape for long-running
    /// services that see an open-ended stream of cluster signatures.
    pub fn with_dp_capacity(capacity: usize) -> Self {
        PlanContext {
            dp: DpCache::with_capacity(capacity),
        }
    }

    /// The batch's DP table cache.
    pub fn dp_cache(&self) -> &DpCache {
        &self.dp
    }
}

/// Plans every request with every planner, in parallel over requests, with
/// a fresh shared [`PlanContext`].
///
/// Returns one row per request, each row holding one result per planner in
/// the order given. The output is identical to planning each `(request,
/// planner)` pair sequentially with [`Planner::plan`] — parallelism and the
/// DP cache change throughput, never results.
pub fn plan_many(
    planners: &[&dyn Planner],
    requests: &[PlanRequest],
) -> Vec<Vec<Result<Plan, CoreError>>> {
    plan_many_with(planners, requests, &PlanContext::new())
}

/// [`plan_many`] with an explicit context, so callers can reuse one DP
/// cache across several batches or read its statistics afterwards.
pub fn plan_many_with(
    planners: &[&dyn Planner],
    requests: &[PlanRequest],
    ctx: &PlanContext,
) -> Vec<Vec<Result<Plan, CoreError>>> {
    requests
        .par_iter()
        .map(|request| {
            planners
                .iter()
                .map(|planner| planner.plan_with(request, ctx))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::registry::{find, registry};
    use hnow_model::{MulticastSet, NodeSpec};

    fn two_class_requests() -> Vec<PlanRequest> {
        // Four instances over the same two classes with the same (slow)
        // source class, at one latency: one DP table can serve them all.
        let fast = NodeSpec::new(1, 1);
        let slow = NodeSpec::new(2, 3);
        let net = NetParams::new(1);
        [(3usize, 3usize), (3, 1), (2, 2), (1, 3)]
            .into_iter()
            .map(|(nf, ns)| {
                let mut dests = vec![fast; nf];
                dests.extend(std::iter::repeat_n(slow, ns));
                PlanRequest::new(MulticastSet::new(slow, dests).unwrap(), net).with_seed(7)
            })
            .collect()
    }

    #[test]
    fn plan_many_matches_sequential_planning() {
        let requests = two_class_requests();
        let planners: Vec<&dyn Planner> = registry().to_vec();
        let batched = plan_many(&planners, &requests);
        assert_eq!(batched.len(), requests.len());
        for (request, row) in requests.iter().zip(&batched) {
            assert_eq!(row.len(), planners.len());
            for (planner, result) in planners.iter().zip(row) {
                let sequential = planner.plan(request);
                assert_eq!(result, &sequential, "{} diverged in batch", planner.name());
            }
        }
    }

    #[test]
    fn dp_tables_are_shared_across_same_class_table_requests() {
        let requests = two_class_requests();
        let ctx = PlanContext::new();
        let dp = find("dp-optimal").unwrap();
        // Plan sequentially against one shared context so the hit pattern is
        // deterministic even if the vendored rayon is swapped for the real,
        // parallel one.
        let plans: Vec<_> = requests
            .iter()
            .map(|request| dp.plan_with(request, &ctx).unwrap())
            .collect();
        assert_eq!(ctx.dp_cache().lookups(), requests.len());
        // The first (widest) request builds the table; every later request
        // fits inside its dimensions and hits.
        assert_eq!(ctx.dp_cache().hits(), requests.len() - 1);
        // Cached plans equal fresh uncached plans.
        for (request, cached) in requests.iter().zip(&plans) {
            assert_eq!(cached, &dp.plan(request).unwrap());
        }
    }

    #[test]
    fn outgrown_tables_are_rebuilt_with_union_dimensions() {
        // A request bigger than the cached table forces one rebuild whose
        // dimensions cover both shapes; afterwards both shapes hit. Also
        // exercises the build-outside-the-lock path end to end: the returned
        // tables must answer their requests despite probe/build/insert being
        // three separate critical sections.
        let specs = vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)];
        let net = NetParams::new(1);
        let cache = DpCache::new();

        let tall = TypedMulticast::new(specs.clone(), 0, vec![4, 1]).unwrap();
        let wide = TypedMulticast::new(specs.clone(), 0, vec![1, 4]).unwrap();
        let t1 = cache.table_for(&tall, net);
        assert_eq!(t1.dims(), &[4, 1]);
        let t2 = cache.table_for(&wide, net);
        assert_eq!(t2.dims(), &[4, 4], "rebuild takes element-wise max dims");
        assert_eq!(cache.hits(), 0);

        // Both original shapes (and anything inside the union) now hit.
        let t3 = cache.table_for(&tall, net);
        let t4 = cache.table_for(&wide, net);
        assert_eq!(cache.hits(), 2);
        assert!(Arc::ptr_eq(&t3, &t4));
        assert_eq!(t3.query(0, tall.counts()), t1.query(0, tall.counts()));
    }

    #[test]
    fn lookups_split_exactly_into_hits_and_misses() {
        // Invariant of the metrics contract, across hit, build and widening
        // paths alike.
        let specs = vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)];
        let net = NetParams::new(1);
        let cache = DpCache::new();
        let tall = TypedMulticast::new(specs.clone(), 0, vec![4, 1]).unwrap();
        let wide = TypedMulticast::new(specs.clone(), 0, vec![1, 4]).unwrap();
        cache.table_for(&tall, net); // build
        cache.table_for(&tall, net); // hit
        cache.table_for(&wide, net); // widening rebuild
        cache.table_for(&tall, net); // hit (covered by the union)
        assert_eq!(cache.lookups(), 4);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2, "one miss per table built");
        assert_eq!(cache.lookups(), cache.hits() + cache.misses());
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_stay_consistent_under_concurrent_hammering() {
        // The racing-build audit: whatever interleaving the threads produce,
        // every lookup is exactly one hit or one miss, and misses equal the
        // number of builds performed (discarded racing builds included).
        let net = NetParams::new(1);
        let cache = std::sync::Arc::new(DpCache::new());
        let shapes: Vec<TypedMulticast> = [(3usize, 1usize), (1, 3), (3, 3), (2, 2)]
            .into_iter()
            .map(|(a, b)| {
                TypedMulticast::new(
                    vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
                    0,
                    vec![a, b],
                )
                .unwrap()
            })
            .collect();
        let per_thread = 8;
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                let shapes = shapes.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let typed = &shapes[(t + i) % shapes.len()];
                        let table = cache.table_for(typed, net);
                        assert!(table.covers(typed.counts()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.lookups(), 4 * per_thread);
        assert_eq!(cache.lookups(), cache.hits() + cache.misses());
        assert!(cache.misses() >= 1);
        // All shapes share one canonical signature; after convergence a
        // single table is resident.
        assert_eq!(cache.resident(), 1);
    }

    #[test]
    fn canonicalization_shares_tables_across_source_classes_and_orderings() {
        // Two requests over the same physical two-class cluster, one rooted
        // at a slow node and one at a fast node: from_multicast_set numbers
        // their classes differently, but the canonical signature is shared,
        // so the second request hits the first one's table.
        let fast = NodeSpec::new(1, 1);
        let slow = NodeSpec::new(2, 3);
        let net = NetParams::new(1);
        let ctx = PlanContext::new();
        let dp = find("dp-optimal").unwrap();
        let from_slow = PlanRequest::new(
            MulticastSet::new(slow, vec![fast, fast, slow]).unwrap(),
            net,
        );
        let from_fast = PlanRequest::new(MulticastSet::new(fast, vec![fast, slow]).unwrap(), net);
        let p1 = dp.plan_with(&from_slow, &ctx).unwrap();
        let p2 = dp.plan_with(&from_fast, &ctx).unwrap();
        assert_eq!(ctx.dp_cache().lookups(), 2);
        assert_eq!(ctx.dp_cache().misses(), 1, "one shared table build");
        assert_eq!(ctx.dp_cache().hits(), 1);
        // Cached plans equal fresh uncached ones.
        assert_eq!(&p1, &dp.plan(&from_slow).unwrap());
        assert_eq!(&p2, &dp.plan(&from_fast).unwrap());
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let net = NetParams::new(1);
        let cache = DpCache::with_capacity(2);
        let sig = |send: u64| {
            TypedMulticast::new(vec![NodeSpec::new(send, send), NodeSpec::new(20, 30)], 0, {
                vec![2, 1]
            })
            .unwrap()
        };
        let (a, b, c) = (sig(1), sig(2), sig(3));
        cache.table_for(&a, net);
        cache.table_for(&b, net);
        assert_eq!(cache.resident(), 2);
        assert_eq!(cache.evictions(), 0);
        // Touch `a`, then insert `c`: `b` is the LRU victim.
        cache.table_for(&a, net);
        cache.table_for(&c, net);
        assert_eq!(cache.resident(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.hits(), 1);
        // `a` survived (hit), `b` was evicted (miss + rebuild).
        cache.table_for(&a, net);
        assert_eq!(cache.hits(), 2);
        cache.table_for(&b, net);
        assert_eq!(cache.misses(), 4, "evicted signature rebuilds");
        assert_eq!(cache.lookups(), cache.hits() + cache.misses());
    }

    #[test]
    fn cache_distinguishes_latency_and_class_tables() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
        )
        .unwrap();
        let ctx = PlanContext::new();
        let dp = find("dp-optimal").unwrap();
        let r1 = PlanRequest::new(set.clone(), NetParams::new(1));
        let r2 = PlanRequest::new(set, NetParams::new(5));
        let p1 = dp.plan_with(&r1, &ctx).unwrap();
        let p2 = dp.plan_with(&r2, &ctx).unwrap();
        assert_eq!(ctx.dp_cache().lookups(), 2);
        assert_eq!(ctx.dp_cache().hits(), 0, "different latencies never share");
        assert!(p1.reception_completion() < p2.reception_completion());
    }
}
