//! Unified planning facade over every scheduling algorithm in the crate.
//!
//! The paper's contribution is a *comparison* of schedulers — the greedy
//! approximation of Lemma 1, the limited-heterogeneity dynamic program of
//! Theorem 2, an exact branch-and-bound reference, and a family of
//! heterogeneity-oblivious baselines — on identical instances. This module
//! gives all of them one shape:
//!
//! * [`PlanRequest`] — a self-contained planning problem: the instance, the
//!   network parameters, the objective, the exact-search budget and the seed
//!   consumed by randomized planners.
//! * [`Plan`] — a planning result: the schedule tree, its full
//!   [`ScheduleTiming`](crate::schedule::ScheduleTiming), the always-valid
//!   lower bound, the Theorem 1 right-hand side, the name of the planner
//!   that produced it, and whether optimality was proven.
//! * [`Planner`] — the trait implemented by every algorithm, with
//!   [`Capabilities`] metadata (exact vs. approximate, instance-size and
//!   heterogeneity limits) that callers use to decide applicability.
//! * [`registry`] — the static table of every planner, addressable by
//!   stable name; [`find`] looks one up and [`supporting_planners`] filters
//!   the registry by an instance's shape.
//! * [`plan_many`] — the batch facade: fans a slice of requests across a
//!   set of planners with rayon and memoizes Theorem 2 whole-network DP
//!   tables across requests sharing a class table (the precomputation the
//!   paper recommends in Section 4), via [`PlanContext`]/[`DpCache`].
//!
//! ## Example
//!
//! ```
//! use hnow_core::planner::{self, PlanRequest};
//! use hnow_model::{MulticastSet, NetParams, NodeSpec};
//!
//! let slow = NodeSpec::new(2, 3);
//! let fast = NodeSpec::new(1, 1);
//! let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap();
//! let request = PlanRequest::new(set, NetParams::new(1));
//!
//! for p in planner::registry() {
//!     if p.capabilities().supports(&request.set) {
//!         let plan = p.plan(&request).unwrap();
//!         assert!(plan.reception_completion() >= plan.lower_bound.value);
//!     }
//! }
//! ```

mod batch;
mod registry;
mod request;

pub use batch::{plan_many, plan_many_with, DpCache, PlanContext};
pub use registry::{
    find, registry, supporting_planners, Capabilities, PlannedTree, Planner, PlannerKind,
};
pub use request::{Plan, PlanRequest};
