//! The [`Planner`] trait, capability metadata, and the static registry.

use crate::algorithms::baselines::{
    binomial_schedule, chain_schedule, fastest_node_first_schedule, random_schedule, star_schedule,
};
use crate::algorithms::greedy::{greedy_with_options, GreedyOptions};
use crate::algorithms::optimal;
use crate::bounds::{lower_bound, theorem1_bound};
use crate::error::CoreError;
use crate::planner::batch::PlanContext;
use crate::planner::request::{Plan, PlanRequest};
use crate::schedule::times::evaluate;
use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, TypedMulticast};
use serde::Serialize;

/// How a planner's result relates to the true optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PlannerKind {
    /// Proves optimality on every instance it completes within budget.
    Exact,
    /// Exact, but tractable only under limited heterogeneity (Theorem 2's
    /// bounded number of distinct workstation types).
    ExactLimitedHeterogeneity,
    /// Approximation with a proven worst-case guarantee (Theorem 1).
    BoundedApproximation,
    /// Heuristic with no guarantee under the receive-send model.
    Heuristic,
}

/// Capability metadata of a registered planner.
///
/// The limits are *advisory*: they describe the envelope inside which the
/// planner is practical (and, for exact planners, proves optimality at the
/// default budget). [`Planner::plan`] still attempts any instance; callers
/// that sweep the registry use [`Capabilities::supports`] to filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Capabilities {
    /// Exactness class of the planner.
    pub kind: PlannerKind,
    /// Largest destination count the planner is practical for (`None` = no
    /// limit).
    pub max_destinations: Option<usize>,
    /// Largest number of *distinct* node types the planner is practical for
    /// (`None` = no limit) — the `k` that drives the Theorem 2 DP's cost.
    pub max_distinct_types: Option<usize>,
    /// Whether the planner consumes [`PlanRequest::seed`].
    pub uses_seed: bool,
    /// One-line human-readable description for reports and docs.
    pub summary: &'static str,
}

impl Capabilities {
    /// Whether the planner proves optimality inside its envelope.
    pub fn exact(&self) -> bool {
        matches!(
            self.kind,
            PlannerKind::Exact | PlannerKind::ExactLimitedHeterogeneity
        )
    }

    /// Whether an instance falls inside this planner's practical envelope.
    pub fn supports(&self, set: &MulticastSet) -> bool {
        self.max_destinations
            .is_none_or(|m| set.num_destinations() <= m)
            && self
                .max_distinct_types
                .is_none_or(|m| set.num_distinct_types() <= m)
    }
}

/// A schedule tree plus whether the planner proved it optimal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedTree {
    /// The constructed schedule.
    pub tree: ScheduleTree,
    /// Whether the construction is proven optimal for the request objective.
    pub proven_optimal: bool,
}

impl PlannedTree {
    fn heuristic(tree: ScheduleTree) -> Self {
        PlannedTree {
            tree,
            proven_optimal: false,
        }
    }
}

/// A multicast scheduling algorithm under the unified planning facade.
///
/// Implementors only construct trees ([`Planner::construct`]); the provided
/// [`Planner::plan`] wraps the tree with timing, bounds and provenance into
/// a [`Plan`]. All planners are stateless unit structs, so the registry can
/// hand out `&'static dyn Planner` references.
pub trait Planner: Send + Sync {
    /// Stable name of the planner, used for registry lookup and reports.
    fn name(&self) -> &'static str;

    /// Capability metadata.
    fn capabilities(&self) -> Capabilities;

    /// Constructs a schedule tree for the request. `ctx` carries batch-level
    /// shared state (the DP table cache).
    fn construct(&self, request: &PlanRequest, ctx: &PlanContext)
        -> Result<PlannedTree, CoreError>;

    /// Plans a request with a fresh [`PlanContext`].
    fn plan(&self, request: &PlanRequest) -> Result<Plan, CoreError> {
        self.plan_with(request, &PlanContext::new())
    }

    /// Plans a request, sharing `ctx` (and its DP table cache) with other
    /// calls in the same batch.
    fn plan_with(&self, request: &PlanRequest, ctx: &PlanContext) -> Result<Plan, CoreError> {
        let planned = self.construct(request, ctx)?;
        let timing = evaluate(&planned.tree, &request.set, request.net)?;
        let lb = lower_bound(&request.set, request.net);
        let t1 = theorem1_bound(&request.set, timing.reception_completion());
        Ok(Plan {
            planner: self.name(),
            tree: planned.tree,
            timing,
            objective: request.objective,
            lower_bound: lb,
            theorem1_bound: t1,
            proven_optimal: planned.proven_optimal,
        })
    }
}

/// The paper's greedy algorithm (Lemma 1), plain.
struct Greedy;

impl Planner for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::BoundedApproximation,
            max_destinations: None,
            max_distinct_types: None,
            uses_seed: false,
            summary: "O(n log n) greedy of Lemma 1; R < 2·⌈α_max⌉/α_min·OPT + β (Theorem 1)",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        Ok(PlannedTree::heuristic(greedy_with_options(
            &request.set,
            request.net,
            GreedyOptions::PLAIN,
        )))
    }
}

/// Greedy followed by the Section 3 leaf-delivery refinement.
struct GreedyRefined;

impl Planner for GreedyRefined {
    fn name(&self) -> &'static str {
        "greedy+leaf"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::BoundedApproximation,
            max_destinations: None,
            max_distinct_types: None,
            uses_seed: false,
            summary: "greedy plus the Section 3 leaf refinement; never worse than plain greedy",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        Ok(PlannedTree::heuristic(greedy_with_options(
            &request.set,
            request.net,
            GreedyOptions::REFINED,
        )))
    }
}

/// The Theorem 2 limited-heterogeneity dynamic program.
struct DpOptimal;

impl Planner for DpOptimal {
    fn name(&self) -> &'static str {
        "dp-optimal"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::ExactLimitedHeterogeneity,
            max_destinations: None,
            max_distinct_types: Some(3),
            uses_seed: false,
            summary: "Theorem 2 O(n^{2k}) dynamic program; exact, practical for k ≤ 3 types",
        }
    }
    fn construct(
        &self,
        request: &PlanRequest,
        ctx: &PlanContext,
    ) -> Result<PlannedTree, CoreError> {
        // Canonical form: the cache keys tables by canonical signature, so
        // using it for both lookup and reconstruction shares one table
        // across every source class and class ordering of the same cluster.
        let typed = TypedMulticast::from_multicast_set(&request.set).canonical();
        let table = ctx.dp_cache().table_for(&typed, request.net);
        let (tree, _) = table.schedule_for(&typed)?;
        // The DP minimises the unrestricted reception completion time; for
        // any other objective (or a layered-only request) its tree is still
        // valid but optimality is not what was asked for.
        let proven_optimal = request.objective == crate::algorithms::optimal::Objective::Reception
            && !request.layered_only;
        Ok(PlannedTree {
            tree,
            proven_optimal,
        })
    }
}

/// The exact branch-and-bound reference solver.
struct BranchBound;

impl Planner for BranchBound {
    fn name(&self) -> &'static str {
        "branch-bound"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::Exact,
            max_destinations: Some(10),
            max_distinct_types: None,
            uses_seed: false,
            summary: "exhaustive branch-and-bound; proves optimality up to ~10 destinations",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        let result = optimal::search(&request.set, request.net, request.search_options());
        Ok(PlannedTree {
            tree: result.tree,
            proven_optimal: result.proven_optimal,
        })
    }
}

/// Greedy for the heterogeneous-*node* model of Banikazemi et al.
struct FastestNodeFirst;

impl Planner for FastestNodeFirst {
    fn name(&self) -> &'static str {
        "fnf"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::Heuristic,
            max_destinations: None,
            max_distinct_types: None,
            uses_seed: false,
            summary: "fastest-node-first greedy of the heterogeneous-node model",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        Ok(PlannedTree::heuristic(fastest_node_first_schedule(
            &request.set,
            request.net,
        )))
    }
}

/// Heterogeneity-oblivious binomial tree.
struct Binomial;

impl Planner for Binomial {
    fn name(&self) -> &'static str {
        "binomial"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::Heuristic,
            max_destinations: None,
            max_distinct_types: None,
            uses_seed: false,
            summary: "heterogeneity-oblivious binomial tree",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        Ok(PlannedTree::heuristic(binomial_schedule(&request.set)))
    }
}

/// Linear pipeline through all destinations.
struct Chain;

impl Planner for Chain {
    fn name(&self) -> &'static str {
        "chain"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::Heuristic,
            max_destinations: None,
            max_distinct_types: None,
            uses_seed: false,
            summary: "linear pipeline through all destinations",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        Ok(PlannedTree::heuristic(chain_schedule(&request.set)))
    }
}

/// The source sends to every destination itself.
struct Star;

impl Planner for Star {
    fn name(&self) -> &'static str {
        "star"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::Heuristic,
            max_destinations: None,
            max_distinct_types: None,
            uses_seed: false,
            summary: "separate addressing: the source sends to everyone itself",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        Ok(PlannedTree::heuristic(star_schedule(&request.set)))
    }
}

/// A uniformly random valid schedule, seeded by the request.
struct Random;

impl Planner for Random {
    fn name(&self) -> &'static str {
        "random"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            kind: PlannerKind::Heuristic,
            max_destinations: None,
            max_distinct_types: None,
            uses_seed: true,
            summary: "uniformly random valid schedule (seeded comparison floor)",
        }
    }
    fn construct(&self, request: &PlanRequest, _: &PlanContext) -> Result<PlannedTree, CoreError> {
        Ok(PlannedTree::heuristic(random_schedule(
            &request.set,
            request.seed,
        )))
    }
}

/// Every registered planner, in canonical order: the paper's algorithms
/// first (greedy, refined greedy, DP, branch-and-bound), then the
/// comparison baselines (fnf, binomial, chain, star, random).
static REGISTRY: [&dyn Planner; 9] = [
    &Greedy,
    &GreedyRefined,
    &DpOptimal,
    &BranchBound,
    &FastestNodeFirst,
    &Binomial,
    &Chain,
    &Star,
    &Random,
];

/// The static planner registry.
pub fn registry() -> &'static [&'static dyn Planner] {
    &REGISTRY
}

/// Looks up a planner by its stable name.
pub fn find(name: &str) -> Option<&'static dyn Planner> {
    registry().iter().copied().find(|p| p.name() == name)
}

/// The registered planners whose capability envelope covers the instance.
pub fn supporting_planners(set: &MulticastSet) -> Vec<&'static dyn Planner> {
    registry()
        .iter()
        .copied()
        .filter(|p| p.capabilities().supports(set))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate::validate;
    use hnow_model::{NetParams, NodeSpec};

    fn figure1_request() -> PlanRequest {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap();
        PlanRequest::new(set, NetParams::new(1))
    }

    #[test]
    fn registry_names_are_unique_and_stable() {
        let mut names: Vec<&str> = registry().iter().map(|p| p.name()).collect();
        assert!(names.len() >= 7, "at least the paper's seven algorithms");
        for expected in [
            "greedy",
            "greedy+leaf",
            "dp-optimal",
            "branch-bound",
            "fnf",
            "binomial",
            "chain",
            "star",
            "random",
        ] {
            assert!(find(expected).is_some(), "missing planner {expected}");
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len(), "duplicate planner names");
        assert!(find("no-such-planner").is_none());
    }

    #[test]
    fn every_planner_builds_a_valid_plan_on_figure1() {
        let request = figure1_request();
        for p in registry() {
            assert!(p.capabilities().supports(&request.set), "{}", p.name());
            let plan = p.plan(&request).unwrap_or_else(|e| {
                panic!("{} failed on figure 1: {e}", p.name());
            });
            assert_eq!(plan.planner, p.name());
            validate(&plan.tree, &request.set).unwrap();
            assert!(plan.reception_completion() >= plan.lower_bound.value);
            // Any achieved completion upper-bounds OPT, so the Theorem 1
            // right-hand side evaluated at it stays above the plan itself
            // whenever the multiplicative factor is at least one.
            assert!(plan.theorem1_bound >= plan.reception_completion().as_f64());
        }
    }

    #[test]
    fn exact_planners_agree_on_figure1() {
        let request = figure1_request();
        let dp = find("dp-optimal").unwrap().plan(&request).unwrap();
        let bb = find("branch-bound").unwrap().plan(&request).unwrap();
        assert!(dp.proven_optimal);
        assert!(bb.proven_optimal);
        assert_eq!(dp.reception_completion().raw(), 8);
        assert_eq!(bb.reception_completion().raw(), 8);
    }

    #[test]
    fn capability_filtering_excludes_out_of_envelope_planners() {
        // 12 destinations with 12 distinct types: beyond both the DP's type
        // limit and branch-and-bound's size limit.
        let dests: Vec<NodeSpec> = (1..=12).map(|i| NodeSpec::new(i, 2 * i)).collect();
        let set = MulticastSet::new(NodeSpec::new(1, 1), dests).unwrap();
        let supported = supporting_planners(&set);
        assert!(supported.iter().all(|p| p.name() != "dp-optimal"));
        assert!(supported.iter().all(|p| p.name() != "branch-bound"));
        assert!(supported.iter().any(|p| p.name() == "greedy"));
        assert_eq!(supported.len(), registry().len() - 2);

        // Small two-type instances are inside every envelope.
        let small = figure1_request().set;
        assert_eq!(supporting_planners(&small).len(), registry().len());
    }

    #[test]
    fn random_planner_honours_the_request_seed() {
        let set = MulticastSet::homogeneous(NodeSpec::new(2, 3), 10);
        let net = NetParams::new(1);
        let a = find("random")
            .unwrap()
            .plan(&PlanRequest::new(set.clone(), net).with_seed(1))
            .unwrap();
        let a2 = find("random")
            .unwrap()
            .plan(&PlanRequest::new(set.clone(), net).with_seed(1))
            .unwrap();
        let b = find("random")
            .unwrap()
            .plan(&PlanRequest::new(set, net).with_seed(2))
            .unwrap();
        assert_eq!(a, a2, "same seed, same plan");
        assert_ne!(a.tree, b.tree, "different seeds diverge");
    }

    #[test]
    fn branch_bound_respects_objective_and_budget() {
        use crate::algorithms::optimal::Objective;
        let request = figure1_request()
            .with_objective(Objective::Delivery)
            .with_layered_only(true);
        let plan = find("branch-bound").unwrap().plan(&request).unwrap();
        assert!(plan.proven_optimal);
        // Corollary 1: plain greedy attains the layered delivery optimum.
        let greedy = find("greedy").unwrap().plan(&request).unwrap();
        assert_eq!(plan.value(), greedy.delivery_completion());
        // The DP optimises unrestricted reception only: under any other
        // objective it must not claim proven optimality.
        let dp = find("dp-optimal").unwrap().plan(&request).unwrap();
        assert!(!dp.proven_optimal);

        let starved = figure1_request().with_node_budget(1);
        let plan = find("branch-bound").unwrap().plan(&starved).unwrap();
        assert!(!plan.proven_optimal, "budget 1 cannot prove optimality");
        validate(&plan.tree, &starved.set).unwrap();
    }
}
