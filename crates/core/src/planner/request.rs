//! Planning problems and planning results.

use crate::algorithms::optimal::{Objective, SearchOptions};
use crate::bounds::LowerBound;
use crate::schedule::{ScheduleTiming, ScheduleTree};
use hnow_model::{MulticastSet, NetParams, Time};

/// A self-contained planning problem.
///
/// Every planner consumes the same request shape; fields a given algorithm
/// does not use (the node budget for heuristics, the seed for deterministic
/// planners) are simply ignored, so one request can be fanned across the
/// whole [`registry`](crate::planner::registry).
///
/// Construction is builder-style — no positional literals required:
///
/// ```
/// use hnow_core::planner::PlanRequest;
/// use hnow_model::{MulticastSet, NetParams, NodeSpec};
///
/// let set = MulticastSet::homogeneous(NodeSpec::new(2, 3), 6);
/// let request = PlanRequest::new(set, NetParams::new(1))
///     .with_node_budget(1_000_000)
///     .with_seed(42);
/// assert_eq!(request.seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRequest {
    /// The multicast instance to plan.
    pub set: MulticastSet,
    /// Network parameters (latency `L`).
    pub net: NetParams,
    /// Completion-time objective (reception by default, the paper's).
    pub objective: Objective,
    /// Branch-and-bound node budget for exact planners.
    pub node_budget: u64,
    /// Restrict exact search to layered schedules (Lemma 2's class).
    pub layered_only: bool,
    /// Seed consumed by randomized planners.
    pub seed: u64,
}

impl PlanRequest {
    /// Creates a request with the default objective (reception completion),
    /// the default exact-search budget and seed 0.
    pub fn new(set: MulticastSet, net: NetParams) -> Self {
        let defaults = SearchOptions::default();
        PlanRequest {
            set,
            net,
            objective: defaults.objective,
            node_budget: defaults.node_budget,
            layered_only: defaults.layered_only,
            seed: 0,
        }
    }

    /// Sets the completion-time objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the branch-and-bound node budget for exact planners.
    #[must_use]
    pub fn with_node_budget(mut self, node_budget: u64) -> Self {
        self.node_budget = node_budget;
        self
    }

    /// Restricts exact search to layered schedules.
    #[must_use]
    pub fn with_layered_only(mut self, layered_only: bool) -> Self {
        self.layered_only = layered_only;
        self
    }

    /// Sets the seed consumed by randomized planners.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The [`SearchOptions`] equivalent of this request, used by the exact
    /// branch-and-bound planner.
    pub fn search_options(&self) -> SearchOptions {
        SearchOptions::default()
            .with_objective(self.objective)
            .with_layered_only(self.layered_only)
            .with_node_budget(self.node_budget)
    }
}

/// The result of planning one request with one planner.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Stable name of the planner that produced this plan (provenance).
    pub planner: &'static str,
    /// The schedule tree.
    pub tree: ScheduleTree,
    /// Full per-node delivery/reception timing of the tree.
    pub timing: ScheduleTiming,
    /// The objective the plan was requested under.
    pub objective: Objective,
    /// Always-valid lower bound on the optimal reception completion time of
    /// the instance (independent of the planner).
    pub lower_bound: LowerBound,
    /// The Theorem 1 right-hand side `C·x + β` evaluated at this plan's own
    /// reception completion time `x`. Any achieved completion is an upper
    /// bound on `OPT_R`, so the plain greedy planner's completion is
    /// guaranteed to stay below this number.
    pub theorem1_bound: f64,
    /// Whether the planner proved this plan optimal for the objective (the
    /// DP inside its heterogeneity limit, branch-and-bound within budget).
    pub proven_optimal: bool,
}

impl Plan {
    /// The plan's completion time under its requested objective.
    pub fn value(&self) -> Time {
        match self.objective {
            Objective::Reception => self.timing.reception_completion(),
            Objective::Delivery => self.timing.delivery_completion(),
        }
    }

    /// Shorthand for the reception completion time `R_T`.
    pub fn reception_completion(&self) -> Time {
        self.timing.reception_completion()
    }

    /// Shorthand for the delivery completion time `D_T`.
    pub fn delivery_completion(&self) -> Time {
        self.timing.delivery_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_model::NodeSpec;

    #[test]
    fn builder_defaults_match_search_options() {
        let set = MulticastSet::homogeneous(NodeSpec::new(1, 1), 3);
        let req = PlanRequest::new(set, NetParams::new(2));
        let defaults = SearchOptions::default();
        assert_eq!(req.objective, defaults.objective);
        assert_eq!(req.node_budget, defaults.node_budget);
        assert_eq!(req.layered_only, defaults.layered_only);
        assert_eq!(req.seed, 0);
        assert_eq!(req.search_options(), defaults);
    }

    #[test]
    fn builders_compose() {
        let set = MulticastSet::homogeneous(NodeSpec::new(1, 1), 3);
        let req = PlanRequest::new(set, NetParams::new(2))
            .with_objective(Objective::Delivery)
            .with_node_budget(123)
            .with_layered_only(true)
            .with_seed(9);
        assert_eq!(req.objective, Objective::Delivery);
        assert_eq!(req.node_budget, 123);
        assert!(req.layered_only);
        assert_eq!(req.seed, 9);
        let opts = req.search_options();
        assert_eq!(opts.objective, Objective::Delivery);
        assert_eq!(opts.node_budget, 123);
        assert!(opts.layered_only);
    }
}
