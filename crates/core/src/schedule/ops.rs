//! Schedule transformations.
//!
//! The most important operation here is [`refine_leaves`], the practical
//! refinement described at the end of Section 3 of the paper: the greedy
//! algorithm delivers to fast nodes first, which is the right choice for
//! *internal* (forwarding) nodes but exactly backwards for *leaves* — a leaf
//! with a large receiving overhead should be handed the message early so
//! that its long receive does not extend the completion time. The paper
//! proposes reversing the delivery order of the leaves; [`refine_leaves`]
//! implements the natural generalisation (assign leaves with larger
//! receiving overheads to earlier delivery slots), which for greedy-built
//! schedules coincides with the reversal and is never worse for arbitrary
//! schedules.

use crate::error::CoreError;
use crate::schedule::times::evaluate;
use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId};

/// Re-assigns the leaves of a complete schedule to its leaf delivery slots so
/// that leaves with larger receiving overheads are delivered earlier.
///
/// The tree's internal structure (every forwarding node, its parent and its
/// delivery rank) is unchanged; only which leaf occupies which leaf position
/// changes. Because a delivery slot's time depends only on the *parent*'s
/// reception time and rank — never on the occupant — this transformation
/// never increases any internal node's times, and by a standard exchange
/// argument it minimises, over all leaf permutations, the maximum leaf
/// reception time. Consequently the reception completion time never
/// increases.
///
/// Returns the refined tree (the input is not modified).
pub fn refine_leaves(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<ScheduleTree, CoreError> {
    let timing = evaluate(tree, set, net)?;
    // Leaf delivery slots: (delivery time, parent, position in parent's list).
    let mut slots: Vec<(hnow_model::Time, NodeId, usize)> = Vec::new();
    let mut leaves: Vec<NodeId> = Vec::new();
    for v in tree.bfs() {
        for (pos, &c) in tree.children(v).iter().enumerate() {
            if tree.is_leaf(c) {
                slots.push((timing.delivery(c), v, pos));
                leaves.push(c);
            }
        }
    }
    // Earliest slots first; slowest receivers first. Ties broken by node id
    // so the refinement is deterministic.
    slots.sort_by_key(|&(d, p, pos)| (d, p, pos));
    leaves.sort_by_key(|&v| (std::cmp::Reverse(set.spec(v).recv()), v));

    // Rebuild the tree with the same internal structure but with each leaf
    // position overwritten by its newly assigned leaf.
    let mut child_lists: Vec<Vec<NodeId>> = (0..tree.num_nodes())
        .map(|i| tree.children(NodeId(i)).to_vec())
        .collect();
    for (&(_, parent, pos), &leaf) in slots.iter().zip(leaves.iter()) {
        child_lists[parent.index()][pos] = leaf;
    }
    ScheduleTree::from_child_lists(child_lists)
}

/// Reverses the delivery order of the children of every node — the literal
/// operation mentioned in the paper is to reverse the order of the *leaf*
/// deliveries of the greedy schedule; this helper reverses an arbitrary
/// node's child list and is mostly useful for constructing counter-examples
/// and tests.
pub fn reverse_children_of(tree: &ScheduleTree, v: NodeId) -> Result<ScheduleTree, CoreError> {
    let mut out = tree.clone();
    let mut list = out.children(v).to_vec();
    list.reverse();
    out.reorder_children(v, list)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::times::reception_completion;
    use hnow_model::NodeSpec;

    fn figure1() -> (MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        (
            MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap(),
            NetParams::new(1),
        )
    }

    /// The Figure 1(a) schedule (completion 10).
    fn figure1a_tree() -> ScheduleTree {
        let mut tree = ScheduleTree::new(5);
        tree.attach(NodeId(0), NodeId(1)).unwrap();
        tree.attach(NodeId(0), NodeId(2)).unwrap();
        tree.attach(NodeId(1), NodeId(3)).unwrap();
        tree.attach(NodeId(1), NodeId(4)).unwrap();
        tree
    }

    #[test]
    fn leaf_refinement_improves_figure1() {
        let (set, net) = figure1();
        let tree = figure1a_tree();
        assert_eq!(reception_completion(&tree, &set, net).unwrap().raw(), 10);
        let refined = refine_leaves(&tree, &set, net).unwrap();
        // The slow leaf now takes the earliest leaf slot (the source's second
        // transmission, delivery time 5), giving completion 8.
        let r = reception_completion(&refined, &set, net).unwrap();
        assert_eq!(r.raw(), 8);
    }

    #[test]
    fn refinement_never_increases_completion() {
        let (set, net) = figure1();
        // Try several hand-built schedules.
        let trees = vec![
            figure1a_tree(),
            {
                let mut t = ScheduleTree::new(5);
                for i in 1..=4 {
                    t.attach(NodeId(0), NodeId(i)).unwrap();
                }
                t
            },
            {
                let mut t = ScheduleTree::new(5);
                t.attach(NodeId(0), NodeId(4)).unwrap();
                t.attach(NodeId(0), NodeId(1)).unwrap();
                t.attach(NodeId(4), NodeId(2)).unwrap();
                t.attach(NodeId(1), NodeId(3)).unwrap();
                t
            },
        ];
        for tree in trees {
            let before = reception_completion(&tree, &set, net).unwrap();
            let refined = refine_leaves(&tree, &set, net).unwrap();
            let after = reception_completion(&refined, &set, net).unwrap();
            assert!(
                after <= before,
                "refinement must not hurt: {after} > {before}"
            );
        }
    }

    #[test]
    fn refinement_preserves_internal_structure() {
        let (set, net) = figure1();
        let tree = figure1a_tree();
        let refined = refine_leaves(&tree, &set, net).unwrap();
        // Node 1 is internal; it must keep its parent and rank.
        assert_eq!(refined.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(refined.child_rank(NodeId(1)), Some(1));
        // The leaf set is unchanged.
        let mut before: Vec<_> = tree.leaves();
        let mut after: Vec<_> = refined.leaves();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        assert!(refined.is_complete());
    }

    #[test]
    fn refinement_is_idempotent() {
        let (set, net) = figure1();
        let refined = refine_leaves(&figure1a_tree(), &set, net).unwrap();
        let twice = refine_leaves(&refined, &set, net).unwrap();
        assert_eq!(
            reception_completion(&refined, &set, net).unwrap(),
            reception_completion(&twice, &set, net).unwrap()
        );
    }

    #[test]
    fn homogeneous_refinement_is_neutral() {
        let set = MulticastSet::homogeneous(NodeSpec::new(2, 2), 6);
        let net = NetParams::new(1);
        let mut tree = ScheduleTree::new(7);
        for i in 1..=6 {
            tree.attach(NodeId((i - 1) / 2), NodeId(i)).unwrap();
        }
        let before = reception_completion(&tree, &set, net).unwrap();
        let refined = refine_leaves(&tree, &set, net).unwrap();
        assert_eq!(reception_completion(&refined, &set, net).unwrap(), before);
    }

    #[test]
    fn reverse_children_helper() {
        let (set, net) = figure1();
        let tree = figure1a_tree();
        let reversed = reverse_children_of(&tree, NodeId(1)).unwrap();
        assert_eq!(reversed.children(NodeId(1)), &[NodeId(4), NodeId(3)]);
        // Reversing node 1's children yields the paper's Figure 1(b): 9.
        assert_eq!(reception_completion(&reversed, &set, net).unwrap().raw(), 9);
    }
}
