//! Delivery and reception time evaluation.
//!
//! Given a complete [`ScheduleTree`], a [`MulticastSet`] and the network
//! parameters, this module computes the quantities defined in Section 2 of
//! the paper:
//!
//! * the **delivery time** `d_T(v)` of every destination — the instant the
//!   message arrives at `v` (the `i`-th child of `p` is delivered at
//!   `r_T(p) + i·o_send(p) + L`),
//! * the **reception time** `r_T(v) = d_T(v) + o_recv(v)` — the instant `v`
//!   has finished incurring its receiving overhead and may begin forwarding,
//! * the **delivery completion time** `D_T = max_v d_T(v)` and the
//!   **reception completion time** `R_T = max_v r_T(v)`, the paper's
//!   optimisation objective.

use crate::error::CoreError;
use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, NodeSpec, Time};
use serde::{Deserialize, Serialize};

/// Evaluated timing of a complete multicast schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTiming {
    /// `delivery[v]` = `d_T(v)`; the source's entry is 0 by convention (it
    /// holds the message from the start).
    delivery: Vec<Time>,
    /// `reception[v]` = `r_T(v)`; the source's entry is 0.
    reception: Vec<Time>,
    /// `D_T`: maximum delivery time over the destinations (0 when there are
    /// no destinations).
    delivery_completion: Time,
    /// `R_T`: maximum reception time over the destinations.
    reception_completion: Time,
}

impl ScheduleTiming {
    /// Delivery time of a node (`Time::ZERO` for the source).
    #[inline]
    pub fn delivery(&self, v: NodeId) -> Time {
        self.delivery[v.index()]
    }

    /// Reception time of a node (`Time::ZERO` for the source).
    #[inline]
    pub fn reception(&self, v: NodeId) -> Time {
        self.reception[v.index()]
    }

    /// The delivery completion time `D_T`.
    #[inline]
    pub fn delivery_completion(&self) -> Time {
        self.delivery_completion
    }

    /// The reception completion time `R_T` — the multicast latency the paper
    /// minimises.
    #[inline]
    pub fn reception_completion(&self) -> Time {
        self.reception_completion
    }

    /// All delivery times, indexed by node id.
    #[inline]
    pub fn deliveries(&self) -> &[Time] {
        &self.delivery
    }

    /// All reception times, indexed by node id.
    #[inline]
    pub fn receptions(&self) -> &[Time] {
        &self.reception
    }

    /// Destination ids ordered by non-decreasing delivery time (ties broken
    /// by id). Useful for layeredness checks and reporting.
    pub fn destinations_by_delivery(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (1..self.delivery.len()).map(NodeId).collect();
        ids.sort_by_key(|&v| (self.delivery[v.index()], v));
        ids
    }
}

/// Evaluates the timing of a complete schedule.
///
/// # Errors
///
/// * [`CoreError::SizeMismatch`] if the tree and the multicast set disagree
///   on the number of participants.
/// * [`CoreError::IncompleteSchedule`] if some destination is not attached.
pub fn evaluate(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<ScheduleTiming, CoreError> {
    if tree.num_nodes() != set.num_nodes() {
        return Err(CoreError::SizeMismatch {
            tree_nodes: tree.num_nodes(),
            set_nodes: set.num_nodes(),
        });
    }
    let specs: Vec<NodeSpec> = (0..set.num_nodes()).map(|i| set.spec(NodeId(i))).collect();
    evaluate_with_specs(tree, &specs, net)
}

/// Evaluates the timing of a complete schedule with explicit per-node
/// overheads, `specs[v]` being node `v`'s overheads.
///
/// This is the id-order-agnostic core of [`evaluate`]: a [`MulticastSet`]
/// fixes the canonical speed-sorted numbering, whereas composed schedules
/// (gateway trees with grafted per-shard subtrees, see
/// [`compose`](crate::schedule::compose::compose)) number nodes by
/// composition order. The spec vector carries whatever numbering the tree
/// uses.
///
/// # Errors
///
/// * [`CoreError::SizeMismatch`] if `specs` and the tree disagree on the
///   number of participants.
/// * [`CoreError::IncompleteSchedule`] if some destination is not attached.
pub fn evaluate_with_specs(
    tree: &ScheduleTree,
    specs: &[NodeSpec],
    net: NetParams,
) -> Result<ScheduleTiming, CoreError> {
    if tree.num_nodes() != specs.len() {
        return Err(CoreError::SizeMismatch {
            tree_nodes: tree.num_nodes(),
            set_nodes: specs.len(),
        });
    }
    if !tree.is_complete() {
        return Err(CoreError::IncompleteSchedule {
            missing: tree.num_unattached(),
        });
    }
    let n = tree.num_nodes();
    let mut delivery = vec![Time::ZERO; n];
    let mut reception = vec![Time::ZERO; n];
    // BFS guarantees parents are timed before children.
    for v in tree.bfs() {
        let spec = specs[v.index()];
        let r_v = reception[v.index()];
        for (i, &child) in tree.children(v).iter().enumerate() {
            let rank = (i + 1) as u64;
            let d = r_v + rank * spec.send() + net.latency();
            delivery[child.index()] = d;
            reception[child.index()] = d + specs[child.index()].recv();
        }
    }
    let delivery_completion = delivery[1..].iter().copied().max().unwrap_or(Time::ZERO);
    let reception_completion = reception[1..].iter().copied().max().unwrap_or(Time::ZERO);
    Ok(ScheduleTiming {
        delivery,
        reception,
        delivery_completion,
        reception_completion,
    })
}

/// Convenience: evaluates a schedule and returns only `R_T`.
pub fn reception_completion(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<Time, CoreError> {
    Ok(evaluate(tree, set, net)?.reception_completion())
}

/// Convenience: evaluates a schedule and returns only `D_T`.
pub fn delivery_completion(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<Time, CoreError> {
    Ok(evaluate(tree, set, net)?.delivery_completion())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_model::NodeSpec;

    /// The Figure 1(a) schedule: a slow source sends to two fast nodes; the
    /// first fast node forwards to the remaining fast node and then to the
    /// slow destination. Completion time 10.
    fn figure1a() -> (ScheduleTree, MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        // Canonical order: destinations 1..=3 fast, 4 slow.
        let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap();
        let mut tree = ScheduleTree::new(5);
        tree.attach(NodeId(0), NodeId(1)).unwrap(); // source -> fast (first)
        tree.attach(NodeId(0), NodeId(2)).unwrap(); // source -> fast (second)
        tree.attach(NodeId(1), NodeId(3)).unwrap(); // fast -> fast
        tree.attach(NodeId(1), NodeId(4)).unwrap(); // fast -> slow
        (tree, set, NetParams::new(1))
    }

    #[test]
    fn figure1a_times_match_paper() {
        let (tree, set, net) = figure1a();
        let t = evaluate(&tree, &set, net).unwrap();
        // First fast node: delivered at o_send(src)+L = 3, received at 4.
        assert_eq!(t.delivery(NodeId(1)), Time::new(3));
        assert_eq!(t.reception(NodeId(1)), Time::new(4));
        // Second fast node from the source: delivered 2*2+1 = 5, received 6.
        assert_eq!(t.reception(NodeId(2)), Time::new(6));
        // Fast child of node 1: 4 + 1 + 1 + 1 = 7.
        assert_eq!(t.reception(NodeId(3)), Time::new(7));
        // Slow child of node 1: 4 + 2 + 1 + 3 = 10.
        assert_eq!(t.reception(NodeId(4)), Time::new(10));
        assert_eq!(t.reception_completion(), Time::new(10));
        assert_eq!(t.delivery_completion(), Time::new(7));
    }

    #[test]
    fn figure1b_completes_at_nine() {
        // Same tree but node 1 sends to the slow node first: the paper's
        // improved schedule completing at time 9.
        let (mut tree, set, net) = figure1a();
        tree.reorder_children(NodeId(1), vec![NodeId(4), NodeId(3)])
            .unwrap();
        let t = evaluate(&tree, &set, net).unwrap();
        assert_eq!(t.reception(NodeId(4)), Time::new(9)); // 4+1+1+3
        assert_eq!(t.reception(NodeId(3)), Time::new(8)); // 4+2+1+1
        assert_eq!(t.reception_completion(), Time::new(9));
    }

    #[test]
    fn star_schedule_times() {
        // Source sends to every destination directly ("separate addressing").
        let set = MulticastSet::new(
            NodeSpec::new(2, 2),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(3, 4),
            ],
        )
        .unwrap();
        let net = NetParams::new(5);
        let mut tree = ScheduleTree::new(4);
        for i in 1..=3 {
            tree.attach(NodeId(0), NodeId(i)).unwrap();
        }
        let t = evaluate(&tree, &set, net).unwrap();
        // i-th child delivered at i*2 + 5.
        assert_eq!(t.delivery(NodeId(1)), Time::new(7));
        assert_eq!(t.delivery(NodeId(2)), Time::new(9));
        assert_eq!(t.delivery(NodeId(3)), Time::new(11));
        assert_eq!(t.reception(NodeId(3)), Time::new(15));
        assert_eq!(t.reception_completion(), Time::new(15));
        assert_eq!(t.delivery_completion(), Time::new(11));
        assert_eq!(
            t.destinations_by_delivery(),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn trivial_multicast_has_zero_completion() {
        let set = MulticastSet::new(NodeSpec::new(2, 2), vec![]).unwrap();
        let tree = ScheduleTree::new(1);
        let t = evaluate(&tree, &set, NetParams::new(1)).unwrap();
        assert_eq!(t.reception_completion(), Time::ZERO);
        assert_eq!(t.delivery_completion(), Time::ZERO);
    }

    #[test]
    fn errors_on_incomplete_or_mismatched() {
        let set = MulticastSet::new(NodeSpec::new(1, 1), vec![NodeSpec::new(1, 1)]).unwrap();
        let tree = ScheduleTree::new(2);
        assert!(matches!(
            evaluate(&tree, &set, NetParams::new(1)),
            Err(CoreError::IncompleteSchedule { missing: 1 })
        ));
        let tree3 = ScheduleTree::new(3);
        assert!(matches!(
            evaluate(&tree3, &set, NetParams::new(1)),
            Err(CoreError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_with_specs_matches_set_evaluation() {
        let (tree, set, net) = figure1a();
        let specs: Vec<NodeSpec> = (0..set.num_nodes()).map(|i| set.spec(NodeId(i))).collect();
        let via_set = evaluate(&tree, &set, net).unwrap();
        let via_specs = evaluate_with_specs(&tree, &specs, net).unwrap();
        assert_eq!(via_set, via_specs);
        // And it accepts spec vectors no MulticastSet could produce (an
        // inverted overhead pair), since composed/perturbed schedules need
        // that freedom.
        let weird = vec![NodeSpec::new(1, 9), NodeSpec::new(2, 3)];
        let mut tiny = ScheduleTree::new(2);
        tiny.attach(NodeId(0), NodeId(1)).unwrap();
        let t = evaluate_with_specs(&tiny, &weird, NetParams::new(1)).unwrap();
        assert_eq!(t.reception_completion(), Time::new(1 + 1 + 3));
        assert!(matches!(
            evaluate_with_specs(&tiny, &weird[..1], NetParams::new(1)),
            Err(CoreError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn convenience_wrappers() {
        let (tree, set, net) = figure1a();
        assert_eq!(
            reception_completion(&tree, &set, net).unwrap(),
            Time::new(10)
        );
        assert_eq!(delivery_completion(&tree, &set, net).unwrap(), Time::new(7));
    }
}
