//! Ordered multicast schedule trees.
//!
//! A multicast schedule in the receive-send model is a rooted tree whose
//! root is the source and whose remaining vertices are the destinations;
//! every non-leaf vertex transmits the message to its children **in the
//! recorded left-to-right order** with no idle time in between. The order is
//! therefore semantically significant: the `i`-th child of `v` is delivered
//! at `r_T(v) + i·o_send(v) + L`.
//!
//! [`ScheduleTree`] is an arena indexed by [`NodeId`] (node `0` is always the
//! source). Trees may be built incrementally — the greedy algorithm attaches
//! one destination per iteration — and most consumers require a *complete*
//! tree, i.e. one in which every destination has a parent.

use crate::error::CoreError;
use hnow_model::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// An ordered multicast schedule tree over `num_nodes` participants
/// (source + destinations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTree {
    /// `parent[v]` is the parent of `v`, `None` for the source and for
    /// destinations not yet attached.
    parent: Vec<Option<NodeId>>,
    /// Ordered delivery list of children per node.
    children: Vec<Vec<NodeId>>,
    /// Number of destinations currently attached.
    attached: usize,
}

impl ScheduleTree {
    /// Creates an empty schedule over `num_nodes` participants: the source
    /// (node 0) holds the message, no destination is attached yet.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` — a schedule always contains the source.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "a schedule must contain at least the source");
        ScheduleTree {
            parent: vec![None; num_nodes],
            children: vec![Vec::new(); num_nodes],
            attached: 0,
        }
    }

    /// Builds a complete schedule from explicit ordered child lists.
    ///
    /// `child_lists[v]` is the delivery-ordered list of children of node `v`.
    /// Every destination must appear exactly once across all lists.
    pub fn from_child_lists(child_lists: Vec<Vec<NodeId>>) -> Result<Self, CoreError> {
        let num_nodes = child_lists.len();
        let mut tree = ScheduleTree::new(num_nodes);
        // Breadth-first from the source so that parents are attached before
        // their children regardless of list order.
        let mut queue = VecDeque::new();
        queue.push_back(NodeId::SOURCE);
        while let Some(v) = queue.pop_front() {
            for &c in &child_lists[v.index()] {
                tree.attach(v, c)?;
                queue.push_back(c);
            }
        }
        if !tree.is_complete() {
            return Err(CoreError::IncompleteSchedule {
                missing: tree.num_unattached(),
            });
        }
        Ok(tree)
    }

    /// Total number of participants (source + destinations).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Number of destinations (i.e. `num_nodes() - 1`).
    #[inline]
    pub fn num_destinations(&self) -> usize {
        self.parent.len() - 1
    }

    /// Whether every destination has been attached.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.attached == self.num_destinations()
    }

    /// Number of destinations still missing from the schedule.
    #[inline]
    pub fn num_unattached(&self) -> usize {
        self.num_destinations() - self.attached
    }

    /// Whether `v` holds the message in the (possibly partial) schedule:
    /// either it is the source or it has a parent.
    #[inline]
    pub fn is_attached(&self, v: NodeId) -> bool {
        v.is_source() || self.parent.get(v.index()).is_some_and(Option::is_some)
    }

    fn check_range(&self, v: NodeId) -> Result<(), CoreError> {
        if v.index() >= self.num_nodes() {
            Err(CoreError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes(),
            })
        } else {
            Ok(())
        }
    }

    /// Appends `child` as the last (latest-delivered) child of `parent`.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) -> Result<(), CoreError> {
        let position = self.children[parent.index().min(self.num_nodes() - 1)].len();
        self.attach_at(parent, child, position)
    }

    /// Inserts `child` at `position` (0-based) in `parent`'s delivery-ordered
    /// child list; later children shift one rank later.
    pub fn attach_at(
        &mut self,
        parent: NodeId,
        child: NodeId,
        position: usize,
    ) -> Result<(), CoreError> {
        self.check_range(parent)?;
        self.check_range(child)?;
        if child.is_source() || self.parent[child.index()].is_some() {
            return Err(CoreError::AlreadyAttached { node: child });
        }
        if !self.is_attached(parent) {
            return Err(CoreError::ParentNotAttached { parent });
        }
        let list = &mut self.children[parent.index()];
        if position > list.len() {
            return Err(CoreError::PositionOutOfRange {
                position,
                len: list.len(),
            });
        }
        list.insert(position, child);
        self.parent[child.index()] = Some(parent);
        self.attached += 1;
        Ok(())
    }

    /// The parent of `v`, or `None` for the source / unattached nodes.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The delivery-ordered children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// The 1-based delivery rank of `v` at its parent (`v` is its parent's
    /// `child_rank(v)`-th transmission), or `None` for the source /
    /// unattached nodes.
    pub fn child_rank(&self, v: NodeId) -> Option<usize> {
        let p = self.parent(v)?;
        self.children[p.index()]
            .iter()
            .position(|&c| c == v)
            .map(|i| i + 1)
    }

    /// Whether `v` is a leaf (no outgoing transmissions). The source of a
    /// trivial multicast with no destinations is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.index()].is_empty()
    }

    /// All attached leaves (destinations that do not forward the message).
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.num_nodes())
            .map(NodeId)
            .filter(|&v| self.is_attached(v) && self.is_leaf(v) && !v.is_source())
            .collect()
    }

    /// All internal (forwarding) nodes, including the source when it has
    /// children.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes())
            .map(NodeId)
            .filter(|&v| self.is_attached(v) && !self.is_leaf(v))
            .collect()
    }

    /// Breadth-first traversal of the attached nodes, source first; children
    /// are visited in delivery order.
    pub fn bfs(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.attached + 1);
        let mut queue = VecDeque::new();
        queue.push_back(NodeId::SOURCE);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in self.children(v) {
                queue.push_back(c);
            }
        }
        order
    }

    /// Depth-first (pre-order) traversal of the attached nodes.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.attached + 1);
        let mut stack = vec![NodeId::SOURCE];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Depth of `v`: number of edges on the path from the source. The source
    /// has depth 0. Returns `None` for unattached nodes.
    pub fn depth(&self, v: NodeId) -> Option<usize> {
        if !self.is_attached(v) {
            return None;
        }
        let mut depth = 0;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            depth += 1;
            cur = p;
        }
        Some(depth)
    }

    /// Maximum depth over attached nodes.
    pub fn height(&self) -> usize {
        self.bfs()
            .into_iter()
            .filter_map(|v| self.depth(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether `ancestor` lies on the path from the source to `v`
    /// (a node is considered its own ancestor).
    pub fn is_ancestor(&self, ancestor: NodeId, v: NodeId) -> bool {
        let mut cur = Some(v);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Replaces the delivery-ordered child list of `v`. The new list must be
    /// a permutation of the old one (same children, possibly different
    /// order); used by refinement passes that re-order transmissions.
    pub fn reorder_children(&mut self, v: NodeId, new_order: Vec<NodeId>) -> Result<(), CoreError> {
        self.check_range(v)?;
        let mut old = self.children[v.index()].clone();
        let mut newv = new_order.clone();
        old.sort_unstable();
        newv.sort_unstable();
        if old != newv {
            // Treat a non-permutation as an attachment error on the first
            // differing node.
            let bad = new_order
                .iter()
                .copied()
                .find(|c| !self.children[v.index()].contains(c))
                .unwrap_or(v);
            return Err(CoreError::AlreadyAttached { node: bad });
        }
        self.children[v.index()] = new_order;
        Ok(())
    }

    /// Moves the subtree rooted at `child` from its current parent to become
    /// the child of `new_parent` at `position`. The subtree's internal
    /// structure is preserved. `new_parent` must not lie inside the moved
    /// subtree.
    pub fn reattach_subtree(
        &mut self,
        child: NodeId,
        new_parent: NodeId,
        position: usize,
    ) -> Result<(), CoreError> {
        self.check_range(child)?;
        self.check_range(new_parent)?;
        if child.is_source() {
            return Err(CoreError::AlreadyAttached { node: child });
        }
        if !self.is_attached(new_parent) {
            return Err(CoreError::ParentNotAttached { parent: new_parent });
        }
        if self.is_ancestor(child, new_parent) {
            return Err(CoreError::ParentNotAttached { parent: new_parent });
        }
        let old_parent =
            self.parent[child.index()].ok_or(CoreError::ParentNotAttached { parent: child })?;
        let list = &mut self.children[old_parent.index()];
        let idx = list
            .iter()
            .position(|&c| c == child)
            .expect("child must be in its parent's list");
        list.remove(idx);
        let new_list = &mut self.children[new_parent.index()];
        if position > new_list.len() {
            // Restore before failing.
            self.children[old_parent.index()].insert(idx, child);
            let len = self.children[new_parent.index()].len();
            return Err(CoreError::PositionOutOfRange { position, len });
        }
        self.children[new_parent.index()].insert(position, child);
        self.parent[child.index()] = Some(new_parent);
        Ok(())
    }

    /// Swaps the *positions* of two attached non-source nodes: each takes
    /// over the other's parent, delivery rank and (ordered) children. The
    /// identities of all other nodes are unchanged.
    pub fn swap_positions(&mut self, a: NodeId, b: NodeId) -> Result<(), CoreError> {
        self.check_range(a)?;
        self.check_range(b)?;
        if a.is_source() {
            return Err(CoreError::AlreadyAttached { node: a });
        }
        if b.is_source() {
            return Err(CoreError::AlreadyAttached { node: b });
        }
        if !self.is_attached(a) {
            return Err(CoreError::ParentNotAttached { parent: a });
        }
        if !self.is_attached(b) {
            return Err(CoreError::ParentNotAttached { parent: b });
        }
        if a == b {
            return Ok(());
        }
        // Record the original parents before any mutation.
        let pa = self.parent[a.index()];
        let pb = self.parent[b.index()];
        // Swap child lists (each child's parent pointer must follow).
        self.children.swap(a.index(), b.index());
        for &c in self.children[a.index()].clone().iter() {
            self.parent[c.index()] = Some(a);
        }
        for &c in self.children[b.index()].clone().iter() {
            self.parent[c.index()] = Some(b);
        }
        // Swap parent slots, handling the case where one is the other's
        // parent (then the swapped node would become its own parent and must
        // instead point at the other node).
        self.parent[a.index()] = if pb == Some(a) { Some(b) } else { pb };
        self.parent[b.index()] = if pa == Some(b) { Some(a) } else { pa };
        // Replace occurrences in the parents' child lists.
        for list in self.children.iter_mut() {
            for slot in list.iter_mut() {
                if *slot == a {
                    *slot = b;
                } else if *slot == b {
                    *slot = a;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ScheduleTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            tree: &ScheduleTree,
            v: NodeId,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(f, "{:indent$}{}", "", v, indent = depth * 2)?;
            for &c in tree.children(v) {
                rec(tree, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, NodeId::SOURCE, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// source -> [1, 2]; 1 -> [3, 4]
    fn sample() -> ScheduleTree {
        let mut t = ScheduleTree::new(5);
        t.attach(NodeId(0), NodeId(1)).unwrap();
        t.attach(NodeId(0), NodeId(2)).unwrap();
        t.attach(NodeId(1), NodeId(3)).unwrap();
        t.attach(NodeId(1), NodeId(4)).unwrap();
        t
    }

    #[test]
    fn incremental_construction() {
        let mut t = ScheduleTree::new(3);
        assert!(!t.is_complete());
        assert_eq!(t.num_unattached(), 2);
        assert!(t.is_attached(NodeId(0)));
        assert!(!t.is_attached(NodeId(1)));
        t.attach(NodeId(0), NodeId(1)).unwrap();
        t.attach(NodeId(1), NodeId(2)).unwrap();
        assert!(t.is_complete());
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.children(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn attach_errors() {
        let mut t = ScheduleTree::new(4);
        assert!(matches!(
            t.attach(NodeId(0), NodeId(9)),
            Err(CoreError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            t.attach(NodeId(2), NodeId(1)),
            Err(CoreError::ParentNotAttached { .. })
        ));
        t.attach(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            t.attach(NodeId(0), NodeId(1)),
            Err(CoreError::AlreadyAttached { .. })
        ));
        assert!(matches!(
            t.attach(NodeId(0), NodeId(0)),
            Err(CoreError::AlreadyAttached { .. })
        ));
        assert!(matches!(
            t.attach_at(NodeId(0), NodeId(2), 5),
            Err(CoreError::PositionOutOfRange { .. })
        ));
    }

    #[test]
    fn ranks_orders_and_leaves() {
        let t = sample();
        assert_eq!(t.child_rank(NodeId(1)), Some(1));
        assert_eq!(t.child_rank(NodeId(2)), Some(2));
        assert_eq!(t.child_rank(NodeId(4)), Some(2));
        assert_eq!(t.child_rank(NodeId(0)), None);
        assert_eq!(t.leaves(), vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(t.internal_nodes(), vec![NodeId(0), NodeId(1)]);
        assert!(t.is_leaf(NodeId(3)));
        assert!(!t.is_leaf(NodeId(1)));
    }

    #[test]
    fn attach_at_inserts_in_delivery_order() {
        let mut t = ScheduleTree::new(4);
        t.attach(NodeId(0), NodeId(1)).unwrap();
        t.attach(NodeId(0), NodeId(2)).unwrap();
        // Insert node 3 as the *first* transmission of the source.
        t.attach_at(NodeId(0), NodeId(3), 0).unwrap();
        assert_eq!(t.children(NodeId(0)), &[NodeId(3), NodeId(1), NodeId(2)]);
        assert_eq!(t.child_rank(NodeId(1)), Some(2));
    }

    #[test]
    fn traversals_and_depth() {
        let t = sample();
        assert_eq!(
            t.bfs(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(
            t.preorder(),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4), NodeId(2)]
        );
        assert_eq!(t.depth(NodeId(0)), Some(0));
        assert_eq!(t.depth(NodeId(4)), Some(2));
        assert_eq!(t.height(), 2);
        assert!(t.is_ancestor(NodeId(1), NodeId(4)));
        assert!(t.is_ancestor(NodeId(0), NodeId(4)));
        assert!(!t.is_ancestor(NodeId(2), NodeId(4)));
        assert!(t.is_ancestor(NodeId(4), NodeId(4)));
    }

    #[test]
    fn from_child_lists_roundtrip() {
        let t = sample();
        let lists: Vec<Vec<NodeId>> = (0..5).map(|i| t.children(NodeId(i)).to_vec()).collect();
        let rebuilt = ScheduleTree::from_child_lists(lists).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn from_child_lists_detects_missing_nodes() {
        // Node 2 never appears.
        let lists = vec![vec![NodeId(1)], vec![], vec![]];
        assert!(matches!(
            ScheduleTree::from_child_lists(lists),
            Err(CoreError::IncompleteSchedule { missing: 1 })
        ));
    }

    #[test]
    fn reorder_children() {
        let mut t = sample();
        t.reorder_children(NodeId(1), vec![NodeId(4), NodeId(3)])
            .unwrap();
        assert_eq!(t.children(NodeId(1)), &[NodeId(4), NodeId(3)]);
        assert_eq!(t.child_rank(NodeId(3)), Some(2));
        // Not a permutation.
        assert!(t
            .reorder_children(NodeId(1), vec![NodeId(4), NodeId(2)])
            .is_err());
    }

    #[test]
    fn reattach_subtree_moves_whole_subtree() {
        let mut t = sample();
        // Move node 1 (and its children 3, 4) under node 2.
        t.reattach_subtree(NodeId(1), NodeId(2), 0).unwrap();
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.children(NodeId(0)), &[NodeId(2)]);
        assert_eq!(t.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert!(t.is_complete());
        // Cannot create a cycle.
        assert!(t.reattach_subtree(NodeId(2), NodeId(3), 0).is_err());
    }

    #[test]
    fn swap_positions_exchanges_structure() {
        let mut t = sample();
        // Swap an internal node (1) with a leaf (2).
        t.swap_positions(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(t.children(NodeId(0)), &[NodeId(2), NodeId(1)]);
        assert_eq!(t.children(NodeId(2)), &[NodeId(3), NodeId(4)]);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert!(t.is_leaf(NodeId(1)));
        assert!(t.is_complete());
    }

    #[test]
    fn swap_positions_parent_child() {
        let mut t = sample();
        // Node 1 is the parent of node 3.
        t.swap_positions(NodeId(1), NodeId(3)).unwrap();
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(3)));
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(0)));
        assert_eq!(t.children(NodeId(3)), &[NodeId(1), NodeId(4)]);
        assert!(t.is_complete());
        assert_eq!(t.bfs().len(), 5);
    }

    #[test]
    fn swap_positions_self_is_noop() {
        let mut t = sample();
        let before = t.clone();
        t.swap_positions(NodeId(2), NodeId(2)).unwrap();
        assert_eq!(t, before);
    }

    #[test]
    fn display_renders_indented_tree() {
        let text = sample().to_string();
        assert!(text.contains("p0 (source)"));
        assert!(text.contains("  p1"));
        assert!(text.contains("    p3"));
    }

    #[test]
    #[should_panic(expected = "at least the source")]
    fn zero_node_tree_panics() {
        let _ = ScheduleTree::new(0);
    }
}
