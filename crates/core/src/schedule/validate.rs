//! Structural validation and the layeredness predicate.

use crate::error::CoreError;
use crate::schedule::times::{evaluate, ScheduleTiming};
use crate::schedule::tree::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId};

/// Checks that a schedule is structurally valid for the given multicast set:
/// the node counts agree, every destination is attached exactly once, and
/// every attached node is reachable from the source.
///
/// (Single attachment and reachability are enforced by the
/// [`ScheduleTree`] construction API; this function re-verifies them so that
/// deserialized or hand-built trees can also be audited.)
pub fn validate(tree: &ScheduleTree, set: &MulticastSet) -> Result<(), CoreError> {
    if tree.num_nodes() != set.num_nodes() {
        return Err(CoreError::SizeMismatch {
            tree_nodes: tree.num_nodes(),
            set_nodes: set.num_nodes(),
        });
    }
    if !tree.is_complete() {
        return Err(CoreError::IncompleteSchedule {
            missing: tree.num_unattached(),
        });
    }
    // Reachability: BFS from the source must visit every node exactly once.
    let visited = tree.bfs();
    if visited.len() != tree.num_nodes() {
        return Err(CoreError::IncompleteSchedule {
            missing: tree.num_nodes() - visited.len(),
        });
    }
    let mut seen = vec![false; tree.num_nodes()];
    for v in visited {
        if seen[v.index()] {
            return Err(CoreError::AlreadyAttached { node: v });
        }
        seen[v.index()] = true;
    }
    // Parent/child consistency.
    for v in (1..tree.num_nodes()).map(NodeId) {
        let p = tree
            .parent(v)
            .ok_or(CoreError::IncompleteSchedule { missing: 1 })?;
        if !tree.children(p).contains(&v) {
            return Err(CoreError::ParentNotAttached { parent: p });
        }
    }
    Ok(())
}

/// Whether a schedule is **layered**: for every pair of destinations `u, w`,
/// if `o_send(u) < o_send(w)` then `d_T(u) ≤ d_T(w)` — faster workstations
/// take delivery no later than slower ones.
///
/// The paper states the condition with a strict inequality, but under the
/// strict reading the greedy algorithm can fail to be layered when two
/// destinations of different speeds happen to be handed the message at the
/// same instant (delivery-time ties are common with small integer
/// overheads). This crate therefore uses the non-strict form, under which
/// every greedy schedule is layered and the Lemma 2 / Corollary 1 statements
/// continue to hold; the deviation is recorded in DESIGN.md.
pub fn is_layered(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<bool, CoreError> {
    let timing = evaluate(tree, set, net)?;
    Ok(is_layered_with_timing(&timing, set))
}

/// Layeredness check when the timing has already been computed.
pub fn is_layered_with_timing(timing: &ScheduleTiming, set: &MulticastSet) -> bool {
    // Group destinations by sending overhead; the maximum delivery time of a
    // strictly faster group must not exceed the minimum delivery time of any
    // slower group.
    let mut by_send: Vec<(u64, NodeId)> = set
        .destination_ids()
        .map(|v| (set.spec(v).send().raw(), v))
        .collect();
    by_send.sort_unstable();
    let mut max_delivery_faster: Option<hnow_model::Time> = None;
    let mut i = 0;
    while i < by_send.len() {
        let send = by_send[i].0;
        let mut group_min = hnow_model::Time::MAX;
        let mut group_max = hnow_model::Time::ZERO;
        while i < by_send.len() && by_send[i].0 == send {
            let d = timing.delivery(by_send[i].1);
            group_min = group_min.min(d);
            group_max = group_max.max(d);
            i += 1;
        }
        if let Some(prev_max) = max_delivery_faster {
            if group_min < prev_max {
                return false;
            }
        }
        max_delivery_faster = Some(match max_delivery_faster {
            Some(prev) => prev.max(group_max),
            None => group_max,
        });
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_model::NodeSpec;

    fn figure1_set() -> (MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        (
            MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap(),
            NetParams::new(1),
        )
    }

    #[test]
    fn valid_complete_tree_passes() {
        let (set, _) = figure1_set();
        let mut tree = ScheduleTree::new(5);
        tree.attach(NodeId(0), NodeId(1)).unwrap();
        tree.attach(NodeId(0), NodeId(2)).unwrap();
        tree.attach(NodeId(1), NodeId(3)).unwrap();
        tree.attach(NodeId(1), NodeId(4)).unwrap();
        assert!(validate(&tree, &set).is_ok());
    }

    #[test]
    fn incomplete_tree_fails() {
        let (set, _) = figure1_set();
        let tree = ScheduleTree::new(5);
        assert!(matches!(
            validate(&tree, &set),
            Err(CoreError::IncompleteSchedule { missing: 4 })
        ));
    }

    #[test]
    fn size_mismatch_fails() {
        let (set, _) = figure1_set();
        let tree = ScheduleTree::new(3);
        assert!(matches!(
            validate(&tree, &set),
            Err(CoreError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn layered_and_non_layered_schedules() {
        let (set, net) = figure1_set();
        // Layered: fast nodes (1..3) delivered before the slow node (4).
        let mut layered = ScheduleTree::new(5);
        layered.attach(NodeId(0), NodeId(1)).unwrap();
        layered.attach(NodeId(0), NodeId(2)).unwrap();
        layered.attach(NodeId(1), NodeId(3)).unwrap();
        layered.attach(NodeId(1), NodeId(4)).unwrap();
        assert!(is_layered(&layered, &set, net).unwrap());

        // Non-layered: the slow node is the source's first transmission, so
        // it is delivered before some fast node.
        let mut unlayered = ScheduleTree::new(5);
        unlayered.attach(NodeId(0), NodeId(4)).unwrap();
        unlayered.attach(NodeId(0), NodeId(1)).unwrap();
        unlayered.attach(NodeId(1), NodeId(2)).unwrap();
        unlayered.attach(NodeId(1), NodeId(3)).unwrap();
        assert!(!is_layered(&unlayered, &set, net).unwrap());
    }

    #[test]
    fn homogeneous_schedules_are_always_layered() {
        let set = MulticastSet::homogeneous(NodeSpec::new(2, 2), 4);
        let net = NetParams::new(1);
        let mut chain = ScheduleTree::new(5);
        for i in 1..=4 {
            chain.attach(NodeId(i - 1), NodeId(i)).unwrap();
        }
        assert!(is_layered(&chain, &set, net).unwrap());
    }

    #[test]
    fn equal_speed_destinations_do_not_break_layering() {
        // Two fast destinations delivered in either order: still layered,
        // because layeredness only constrains strictly different speeds.
        let set = MulticastSet::new(
            NodeSpec::new(1, 1),
            vec![NodeSpec::new(1, 1), NodeSpec::new(1, 1)],
        )
        .unwrap();
        let net = NetParams::new(1);
        let mut tree = ScheduleTree::new(3);
        tree.attach(NodeId(0), NodeId(2)).unwrap();
        tree.attach(NodeId(0), NodeId(1)).unwrap();
        assert!(is_layered(&tree, &set, net).unwrap());
    }
}
