//! Hierarchical schedule composition: grafting per-shard subtrees onto a
//! gateway tree.
//!
//! A sharded multicast service plans a session that spans several shards in
//! two levels (cf. hierarchical reliable multicast, where local subtrees
//! hang off designated relay nodes):
//!
//! 1. a **gateway tree** over one designated gateway node per touched shard
//!    (the source is the home shard's gateway), planned like any small
//!    multicast over the gateway class vector, and
//! 2. one **per-shard subtree** rooted at each gateway, covering that
//!    shard's members.
//!
//! [`compose`] stitches these into a single flat [`ScheduleTree`] whose
//! timing is then re-evaluated from scratch
//! ([`evaluate_with_specs`]), so the stitched analytic
//! `R_T`/`D_T` obeys the ordinary receive-send occupancy semantics: each
//! gateway first forwards to its child gateways (keeping the cross-shard
//! critical path short), then serves its own shard's subtree, all back to
//! back on its single port.

use crate::error::CoreError;
use crate::schedule::times::{evaluate_with_specs, ScheduleTiming};
use crate::schedule::tree::ScheduleTree;
use hnow_model::{NetParams, NodeId, NodeSpec};

/// The result of grafting per-shard subtrees onto a gateway tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposedSchedule {
    /// The stitched flat schedule over all participants. Node 0 is the
    /// source (the root of subtree 0); every other participant appears
    /// exactly once.
    pub tree: ScheduleTree,
    /// Per-node overheads of the stitched tree, indexed by composed id.
    pub specs: Vec<NodeSpec>,
    /// Timing of the stitched tree, re-evaluated from scratch.
    pub timing: ScheduleTiming,
    /// `maps[i][l]` is the composed id of subtree `i`'s local node `l` (so
    /// `maps[i][0]` is gateway `i`'s composed id). Callers use this to bind
    /// composed ids back to concrete cluster nodes.
    pub maps: Vec<Vec<NodeId>>,
}

/// Grafts one complete subtree per gateway-tree node onto the gateway tree
/// and re-evaluates the stitched timing.
///
/// `gateway` is a complete schedule over `g` gateways (node `i` of the
/// gateway tree is gateway `i`); `subtrees[i]` is gateway `i`'s shard-local
/// schedule — a complete tree whose node 0 *is* gateway `i` — paired with
/// its per-node overheads. A shard whose gateway has nothing local to serve
/// contributes a trivial one-node subtree.
///
/// In the stitched tree, gateway `i` transmits to its gateway-tree children
/// first (in gateway-tree order) and to its subtree children after (in
/// subtree order); all other nodes keep their subtree child lists. The
/// returned timing is recomputed from the stitched tree alone, so it is
/// valid under the occupancy constraint by construction — no timing from
/// the input plans is trusted.
///
/// # Errors
///
/// * [`CoreError::SizeMismatch`] if the gateway tree and subtree count
///   disagree, or a subtree disagrees with its spec vector.
/// * [`CoreError::IncompleteSchedule`] if the gateway tree or any subtree is
///   incomplete.
pub fn compose(
    gateway: &ScheduleTree,
    subtrees: &[(&ScheduleTree, &[NodeSpec])],
    net: NetParams,
) -> Result<ComposedSchedule, CoreError> {
    if gateway.num_nodes() != subtrees.len() {
        return Err(CoreError::SizeMismatch {
            tree_nodes: gateway.num_nodes(),
            set_nodes: subtrees.len(),
        });
    }
    if !gateway.is_complete() {
        return Err(CoreError::IncompleteSchedule {
            missing: gateway.num_unattached(),
        });
    }
    for (tree, specs) in subtrees {
        if tree.num_nodes() != specs.len() {
            return Err(CoreError::SizeMismatch {
                tree_nodes: tree.num_nodes(),
                set_nodes: specs.len(),
            });
        }
        if !tree.is_complete() {
            return Err(CoreError::IncompleteSchedule {
                missing: tree.num_unattached(),
            });
        }
    }

    // Composed ids are blockwise: subtree i occupies the contiguous range
    // [offset_i, offset_i + |subtree i|), its root (gateway i) first. The
    // source is subtree 0's root, so composed id 0 is the source.
    let total: usize = subtrees.iter().map(|(t, _)| t.num_nodes()).sum();
    let mut maps = Vec::with_capacity(subtrees.len());
    let mut specs = Vec::with_capacity(total);
    let mut offset = 0usize;
    for (tree, sub_specs) in subtrees {
        maps.push((0..tree.num_nodes()).map(|l| NodeId(offset + l)).collect());
        specs.extend_from_slice(sub_specs);
        offset += tree.num_nodes();
    }
    let maps: Vec<Vec<NodeId>> = maps;

    let mut child_lists: Vec<Vec<NodeId>> = vec![Vec::new(); total];
    for (i, (tree, _)) in subtrees.iter().enumerate() {
        let map = &maps[i];
        // Gateway i sends to its child gateways first…
        child_lists[map[0].index()] = gateway
            .children(NodeId(i))
            .iter()
            .map(|&c| maps[c.index()][0])
            .collect();
        // …then to its shard subtree, and interior nodes keep their lists.
        for l in 0..tree.num_nodes() {
            let composed = map[l].index();
            child_lists[composed].extend(tree.children(NodeId(l)).iter().map(|&c| map[c.index()]));
        }
    }
    let tree = ScheduleTree::from_child_lists(child_lists)?;
    let timing = evaluate_with_specs(&tree, &specs, net)?;
    Ok(ComposedSchedule {
        tree,
        specs,
        timing,
        maps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_model::Time;

    /// Two-shard fixture: the source (slow, (2,3)) forwards to one remote
    /// gateway (fast, (1,1)); each gateway serves one local destination.
    fn fixture() -> (ScheduleTree, Vec<(ScheduleTree, Vec<NodeSpec>)>) {
        let mut gateway = ScheduleTree::new(2);
        gateway.attach(NodeId(0), NodeId(1)).unwrap();

        let mut home = ScheduleTree::new(2);
        home.attach(NodeId(0), NodeId(1)).unwrap();
        let home_specs = vec![NodeSpec::new(2, 3), NodeSpec::new(2, 3)];

        let mut remote = ScheduleTree::new(2);
        remote.attach(NodeId(0), NodeId(1)).unwrap();
        let remote_specs = vec![NodeSpec::new(1, 1), NodeSpec::new(1, 1)];

        (gateway, vec![(home, home_specs), (remote, remote_specs)])
    }

    #[test]
    fn stitched_timing_matches_hand_computation() {
        let (gateway, subs) = fixture();
        let subtrees: Vec<(&ScheduleTree, &[NodeSpec])> =
            subs.iter().map(|(t, s)| (t, s.as_slice())).collect();
        let composed = compose(&gateway, &subtrees, NetParams::new(1)).unwrap();
        assert_eq!(composed.tree.num_nodes(), 4);
        assert!(composed.tree.is_complete());
        // Composed ids: 0 = source, 1 = home member, 2 = remote gateway,
        // 3 = remote member.
        assert_eq!(composed.maps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(composed.maps[1], vec![NodeId(2), NodeId(3)]);
        // Source sends gateway-first: children [2, 1].
        assert_eq!(composed.tree.children(NodeId(0)), &[NodeId(2), NodeId(1)]);
        // Remote gateway: delivered at o_send(src) + L = 3, received at 4.
        assert_eq!(composed.timing.reception(NodeId(2)), Time::new(4));
        // Home member is the source's *second* send: 2*2 + 1 + 3 = 8.
        assert_eq!(composed.timing.reception(NodeId(1)), Time::new(8));
        // Remote member: 4 + 1 + 1 + 1 = 7.
        assert_eq!(composed.timing.reception(NodeId(3)), Time::new(7));
        assert_eq!(composed.timing.reception_completion(), Time::new(8));
        // Specs follow the composition order.
        assert_eq!(composed.specs[2], NodeSpec::new(1, 1));
    }

    #[test]
    fn trivial_subtrees_graft_cleanly() {
        // Three shards, the remote two with no local members: the composed
        // schedule is exactly the gateway tree.
        let mut gateway = ScheduleTree::new(3);
        gateway.attach(NodeId(0), NodeId(1)).unwrap();
        gateway.attach(NodeId(1), NodeId(2)).unwrap();
        let spec = NodeSpec::new(1, 2);
        let singles: Vec<(ScheduleTree, Vec<NodeSpec>)> =
            (0..3).map(|_| (ScheduleTree::new(1), vec![spec])).collect();
        let subtrees: Vec<(&ScheduleTree, &[NodeSpec])> =
            singles.iter().map(|(t, s)| (t, s.as_slice())).collect();
        let composed = compose(&gateway, &subtrees, NetParams::new(2)).unwrap();
        assert_eq!(composed.tree.num_nodes(), 3);
        assert_eq!(composed.tree.children(NodeId(0)), &[NodeId(1)]);
        assert_eq!(composed.tree.children(NodeId(1)), &[NodeId(2)]);
        // Chain: recv at 1+2+2 = 5, then 5+1+2+2 = 10.
        assert_eq!(composed.timing.reception_completion(), Time::new(10));
    }

    #[test]
    fn composition_errors_are_reported() {
        let (gateway, subs) = fixture();
        let subtrees: Vec<(&ScheduleTree, &[NodeSpec])> =
            subs.iter().map(|(t, s)| (t, s.as_slice())).collect();
        // Wrong subtree count.
        assert!(matches!(
            compose(&gateway, &subtrees[..1], NetParams::new(1)),
            Err(CoreError::SizeMismatch { .. })
        ));
        // Incomplete gateway tree.
        let detached = ScheduleTree::new(2);
        assert!(matches!(
            compose(&detached, &subtrees, NetParams::new(1)),
            Err(CoreError::IncompleteSchedule { .. })
        ));
        // Incomplete subtree.
        let holey = ScheduleTree::new(2);
        let holey_specs = vec![NodeSpec::new(1, 1), NodeSpec::new(1, 1)];
        let bad: Vec<(&ScheduleTree, &[NodeSpec])> =
            vec![subtrees[0], (&holey, holey_specs.as_slice())];
        assert!(matches!(
            compose(&gateway, &bad, NetParams::new(1)),
            Err(CoreError::IncompleteSchedule { .. })
        ));
        // Spec vector of the wrong length.
        let short: Vec<(&ScheduleTree, &[NodeSpec])> =
            vec![subtrees[0], (subtrees[1].0, &subtrees[1].1[..1])];
        assert!(matches!(
            compose(&gateway, &short, NetParams::new(1)),
            Err(CoreError::SizeMismatch { .. })
        ));
    }
}
