//! Repairer placement for reliable multicast under message loss.
//!
//! When deliveries can be lost (the simulator's fault model), every tree
//! node needs a designated **repairer**: the upstream node that answers its
//! NACKs with retransmissions. Placement matters the same way gateway
//! placement matters for cross-shard makespan (cf. *Reducing the Makespan
//! in Hierarchical Reliable Multicast Tree*, Byun): repairs charged to one
//! node serialize on its one-port occupancy, while repairs spread over the
//! tree run in parallel and stay close to the losses.
//!
//! A [`RepairPlacement`] policy annotates a [`ScheduleTree`] with one
//! repairer per node ([`RepairPlacement::assign`]), the way
//! [`compose`](super::compose::compose) designates gateways for stitched
//! cross-shard schedules ([`RepairPlacement::assign_composed`]). Every
//! policy yields an *acyclic* assignment that walks strictly upstream:
//! following `repairer[v]` repeatedly always terminates at the source,
//! which holds the payload from time zero, so repair-request escalation
//! (past failed repairers) can never cycle or deadlock.

use super::compose::ComposedSchedule;
use super::tree::ScheduleTree;
use hnow_model::{NodeId, NodeSpec};
use serde::{Deserialize, Serialize};

/// Who retransmits to a receiver that missed its delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairPlacement {
    /// The source answers every NACK — the centralized baseline. All repair
    /// traffic serializes on the source's one-port send occupancy.
    SourceOnly,
    /// Each node is repaired by the root of its top-level subtree (the
    /// ancestor that is a direct child of the source); direct children of
    /// the source are repaired by the source. Repair load distributes over
    /// the source's children, mirroring how shards designate gateways.
    SubtreeRoot,
    /// Each node is repaired by the fastest of its proper ancestors
    /// ([`NodeSpec::speed_cmp`], ties by lowest tree id) — local repair
    /// biased toward capable workstations on the upstream path.
    FastestInSubtree,
    /// Cross-shard placement: each node is repaired by its shard subtree's
    /// gateway, and gateways by the source
    /// ([`RepairPlacement::assign_composed`]). On a flat (non-composed)
    /// tree this degrades to [`RepairPlacement::SubtreeRoot`].
    Gateway,
}

/// All policy names accepted by [`RepairPlacement::from_name`].
pub const REPAIR_PLACEMENTS: [&str; 4] = [
    "source-only",
    "subtree-root",
    "fastest-in-subtree",
    "gateway",
];

impl RepairPlacement {
    /// The policy's registry name.
    pub fn name(&self) -> &'static str {
        match self {
            RepairPlacement::SourceOnly => "source-only",
            RepairPlacement::SubtreeRoot => "subtree-root",
            RepairPlacement::FastestInSubtree => "fastest-in-subtree",
            RepairPlacement::Gateway => "gateway",
        }
    }

    /// Looks a policy up by its registry name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "source-only" => Some(RepairPlacement::SourceOnly),
            "subtree-root" => Some(RepairPlacement::SubtreeRoot),
            "fastest-in-subtree" => Some(RepairPlacement::FastestInSubtree),
            "gateway" => Some(RepairPlacement::Gateway),
            _ => None,
        }
    }

    /// Assigns one repairer per tree node (`result[v]` is the tree id of
    /// `v`'s repairer; the source repairs itself: `result[0] == 0`).
    ///
    /// `specs` are the per-node overheads (tree-id indexed, source first)
    /// and are only consulted by [`RepairPlacement::FastestInSubtree`];
    /// they must cover every tree node. The tree must be complete (every
    /// node attached).
    pub fn assign(&self, tree: &ScheduleTree, specs: &[NodeSpec]) -> Vec<usize> {
        debug_assert!(tree.is_complete(), "repairers need an attached tree");
        debug_assert!(specs.len() >= tree.num_nodes());
        let n = tree.num_nodes();
        let mut repairer = vec![0usize; n];
        match self {
            RepairPlacement::SourceOnly => {}
            RepairPlacement::SubtreeRoot | RepairPlacement::Gateway => {
                // In BFS order a node's parent is resolved before the node,
                // so one pass propagates each top-level root downward.
                for v in tree.bfs() {
                    let Some(parent) = tree.parent(v) else {
                        continue;
                    };
                    repairer[v.index()] = if parent.is_source() {
                        0
                    } else if tree.parent(parent) == Some(NodeId::SOURCE) {
                        parent.index()
                    } else {
                        repairer[parent.index()]
                    };
                }
            }
            RepairPlacement::FastestInSubtree => {
                // `best[v]` = fastest node on the path source..=v; a node's
                // repairer is the best over its *proper* ancestors.
                let mut best = vec![0usize; n];
                for v in tree.bfs() {
                    let Some(parent) = tree.parent(v) else {
                        continue;
                    };
                    repairer[v.index()] = best[parent.index()];
                    let b = best[parent.index()];
                    best[v.index()] = if specs[v.index()]
                        .speed_cmp(&specs[b])
                        .then(v.index().cmp(&b))
                        .is_lt()
                    {
                        v.index()
                    } else {
                        b
                    };
                }
            }
        }
        repairer
    }

    /// Assigns repairers on a stitched cross-shard schedule: every node of
    /// shard subtree `i` is repaired by that subtree's gateway
    /// (`composed.maps[i][0]`), and gateways (plus the home subtree, whose
    /// gateway *is* the source) by the source. Non-[`Gateway`] policies
    /// ignore the composition and assign over the composed tree directly.
    ///
    /// [`Gateway`]: RepairPlacement::Gateway
    pub fn assign_composed(&self, composed: &ComposedSchedule) -> Vec<usize> {
        if *self != RepairPlacement::Gateway {
            return self.assign(&composed.tree, &composed.specs);
        }
        let mut repairer = vec![0usize; composed.tree.num_nodes()];
        for map in &composed.maps {
            let gateway = map[0].index();
            for &composed_id in &map[1..] {
                repairer[composed_id.index()] = gateway;
            }
            // Gateways fall back to the source (repairer[gateway] stays 0).
        }
        repairer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::compose::compose;
    use hnow_model::NetParams;

    /// 0 -> {1, 4}; 1 -> {2, 3}; 4 -> {5}; 5 -> {6}.
    fn deep_tree() -> ScheduleTree {
        ScheduleTree::from_child_lists(vec![
            vec![NodeId(1), NodeId(4)],
            vec![NodeId(2), NodeId(3)],
            vec![],
            vec![],
            vec![NodeId(5)],
            vec![NodeId(6)],
            vec![],
        ])
        .unwrap()
    }

    fn specs(n: usize) -> Vec<NodeSpec> {
        (0..n).map(|i| NodeSpec::new(2 + i as u64, 3)).collect()
    }

    #[test]
    fn names_round_trip() {
        for name in REPAIR_PLACEMENTS {
            let policy = RepairPlacement::from_name(name).unwrap();
            assert_eq!(policy.name(), name);
        }
        assert_eq!(RepairPlacement::from_name("nope"), None);
    }

    #[test]
    fn source_only_points_everything_at_the_source() {
        let tree = deep_tree();
        let repairer = RepairPlacement::SourceOnly.assign(&tree, &specs(7));
        assert_eq!(repairer, vec![0; 7]);
    }

    #[test]
    fn subtree_root_uses_depth_one_ancestors() {
        let tree = deep_tree();
        let repairer = RepairPlacement::SubtreeRoot.assign(&tree, &specs(7));
        assert_eq!(repairer, vec![0, 0, 1, 1, 0, 4, 4]);
    }

    #[test]
    fn fastest_in_subtree_picks_the_best_proper_ancestor() {
        let tree = deep_tree();
        // Node 5 is the fastest overall but is below 4; node 6's ancestors
        // are {0, 4, 5}.
        let mut s = specs(7);
        s[5] = NodeSpec::new(1, 1);
        let repairer = RepairPlacement::FastestInSubtree.assign(&tree, &s);
        // Ancestor speeds: 0 is fastest among {0}, {0,1}, {0,4}; 5 wins for 6.
        assert_eq!(repairer, vec![0, 0, 0, 0, 0, 0, 5]);
    }

    #[test]
    fn every_policy_is_acyclic_and_upstream_terminating() {
        let tree = deep_tree();
        let s = specs(7);
        for policy in [
            RepairPlacement::SourceOnly,
            RepairPlacement::SubtreeRoot,
            RepairPlacement::FastestInSubtree,
            RepairPlacement::Gateway,
        ] {
            let repairer = policy.assign(&tree, &s);
            assert_eq!(repairer[0], 0, "{}: source repairs itself", policy.name());
            for v in 1..7 {
                // The repairer must be a proper ancestor: walking repairers
                // strictly decreases depth and reaches the source.
                let mut cur = v;
                let mut steps = 0;
                while cur != 0 {
                    let up = repairer[cur];
                    assert!(
                        tree.is_ancestor(NodeId(up), NodeId(cur)),
                        "{}: repairer {up} of {cur} is not an ancestor",
                        policy.name()
                    );
                    cur = up;
                    steps += 1;
                    assert!(steps <= 7, "{}: repairer cycle at {v}", policy.name());
                }
            }
        }
    }

    #[test]
    fn gateway_policy_repairs_through_composed_gateways() {
        // Gateway tree 0 -> 1; home subtree {0 -> a}; remote subtree
        // rooted at the gateway {1 -> b, c}.
        let gateway_tree = ScheduleTree::from_child_lists(vec![vec![NodeId(1)], vec![]]).unwrap();
        let home = ScheduleTree::from_child_lists(vec![vec![NodeId(1)], vec![]]).unwrap();
        let remote =
            ScheduleTree::from_child_lists(vec![vec![NodeId(1), NodeId(2)], vec![], vec![]])
                .unwrap();
        let home_specs = vec![NodeSpec::new(2, 3), NodeSpec::new(2, 3)];
        let remote_specs = vec![
            NodeSpec::new(4, 5),
            NodeSpec::new(4, 5),
            NodeSpec::new(4, 5),
        ];
        let composed = compose(
            &gateway_tree,
            &[(&home, &home_specs), (&remote, &remote_specs)],
            NetParams::new(1),
        )
        .unwrap();
        let repairer = RepairPlacement::Gateway.assign_composed(&composed);
        let gw = composed.maps[1][0].index();
        assert_eq!(repairer[0], 0);
        assert_eq!(repairer[gw], 0, "gateways are repaired by the source");
        for &member in &composed.maps[1][1..] {
            assert_eq!(repairer[member.index()], gw);
        }
        for &member in &composed.maps[0][1..] {
            assert_eq!(repairer[member.index()], 0);
        }
        // Non-gateway policies see the composed tree as a flat tree.
        let flat = RepairPlacement::SubtreeRoot.assign_composed(&composed);
        assert_eq!(flat.len(), composed.tree.num_nodes());
    }
}
