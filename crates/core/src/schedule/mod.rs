//! Multicast schedule representation, timing and transformations.

pub mod compose;
pub mod ops;
pub mod repair;
pub mod times;
pub mod tree;
pub mod validate;

pub use compose::{compose, ComposedSchedule};
pub use ops::{refine_leaves, reverse_children_of};
pub use repair::{RepairPlacement, REPAIR_PLACEMENTS};
pub use times::{
    delivery_completion, evaluate, evaluate_with_specs, reception_completion, ScheduleTiming,
};
pub use tree::ScheduleTree;
pub use validate::{is_layered, is_layered_with_timing, validate};
