//! Multicast schedule representation, timing and transformations.

pub mod ops;
pub mod times;
pub mod tree;
pub mod validate;

pub use ops::{refine_leaves, reverse_children_of};
pub use times::{delivery_completion, evaluate, reception_completion, ScheduleTiming};
pub use tree::ScheduleTree;
pub use validate::{is_layered, is_layered_with_timing, validate};
