//! Approximation bounds and lower bounds on the optimal completion time.
//!
//! Theorem 1 guarantees `GREEDY_R < C·OPT_R + β` where `C` is a constant
//! computed from the extreme receive-send ratios. The proof's rounding
//! construction replaces every receiving overhead by `⌈α_max⌉` times the
//! rounded sending overhead, so the constant implemented here is the one the
//! proof actually supports, `C = 2·⌈α_max⌉/α_min` (which coincides with
//! `2·α_max/α_min` whenever `α_max` is an integer, e.g. the homogeneous-ratio
//! special case `α_max = α_min = 1` highlighted in the paper). Measuring
//! how much slack that bound leaves requires a handle on `OPT_R`; this
//! module provides
//!
//! * [`theorem1_bound`] — the right-hand side of the guarantee for a given
//!   (or estimated) optimum, and
//! * [`lower_bound`] — a cheap, always-valid lower bound on `OPT_R`, used in
//!   experiments whenever the instance is too large for the exact
//!   branch-and-bound search and too heterogeneous for the Theorem 2
//!   dynamic program.

use crate::algorithms::dp::DpTable;
use hnow_model::{MulticastSet, NetParams, NodeSpec, Time, TypedMulticast};
use serde::{Deserialize, Serialize};

/// The right-hand side of Theorem 1, `C·OPT_R + β` with
/// `C = 2·⌈α_max⌉/α_min`, as a real number of time units.
pub fn theorem1_bound(set: &MulticastSet, opt_r: Time) -> f64 {
    theorem1_factor(set) * opt_r.as_f64() + set.beta().as_f64()
}

/// The multiplicative constant `C = 2·⌈α_max⌉/α_min` of Theorem 1.
pub fn theorem1_factor(set: &MulticastSet) -> f64 {
    2.0 * set.alpha_max().ceil().max(1.0) / set.alpha_min()
}

/// Components of the lower bound, exposed for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LowerBound {
    /// `o_send(p_0) + L + max_i o_recv(p_i)`: the source must finish one
    /// sending overhead and the network latency before *any* destination can
    /// even start receiving, and some destination must incur the largest
    /// receive overhead.
    pub first_delivery: Time,
    /// The optimal completion time of the *relaxed homogeneous* instance in
    /// which every node is replaced by the fastest participating
    /// specification. Lowering overheads can only lower completion times, so
    /// this is a valid lower bound; it is computed exactly with the k = 1
    /// dynamic program.
    pub homogeneous_relaxation: Time,
    /// The maximum of the components — the bound actually used.
    pub value: Time,
}

/// Computes a valid lower bound on `OPT_R`.
pub fn lower_bound(set: &MulticastSet, net: NetParams) -> LowerBound {
    let n = set.num_destinations();
    if n == 0 {
        return LowerBound {
            first_delivery: Time::ZERO,
            homogeneous_relaxation: Time::ZERO,
            value: Time::ZERO,
        };
    }
    let max_recv = set
        .destinations()
        .iter()
        .map(|s| s.recv())
        .max()
        .unwrap_or(Time::ZERO);
    let first_delivery = set.source().send() + net.latency() + max_recv;

    // Fastest send/recv anywhere in the instance (including the source: a
    // hypothetical cluster of such nodes is pointwise at least as fast).
    let min_send = set
        .iter_nodes()
        .map(|(_, s)| s.send())
        .min()
        .unwrap_or(Time::new(1));
    let min_recv = set
        .destinations()
        .iter()
        .map(|s| s.recv())
        .min()
        .unwrap_or(Time::ZERO);
    let fastest = NodeSpec::new(min_send.raw().max(1), min_recv.raw());
    let typed = TypedMulticast::new(vec![fastest], 0, vec![n])
        .expect("single-class instance is always valid");
    let homogeneous_relaxation = DpTable::build(&typed, net).optimum();

    LowerBound {
        first_delivery,
        homogeneous_relaxation,
        value: first_delivery.max(homogeneous_relaxation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy::{greedy_with_options, GreedyOptions};
    use crate::algorithms::optimal::optimal_schedule;
    use crate::schedule::times::reception_completion;

    fn figure1() -> (MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        (
            MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap(),
            NetParams::new(1),
        )
    }

    #[test]
    fn theorem1_bound_value() {
        let (set, _) = figure1();
        // ⌈α_max⌉ = 2, α_min = 1, β = 2, OPT = 8 → bound = 4·8 + 2 = 34.
        assert!((theorem1_factor(&set) - 4.0).abs() < 1e-12);
        assert!((theorem1_bound(&set, Time::new(8)) - 34.0).abs() < 1e-9);

        // Homogeneous-ratio special case: α_max = α_min = 1 gives the
        // factor-2 bound the paper highlights.
        let homo = MulticastSet::homogeneous(NodeSpec::new(3, 3), 4);
        assert!((theorem1_factor(&homo) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_is_valid_for_figure1() {
        let (set, net) = figure1();
        let lb = lower_bound(&set, net);
        let opt = optimal_schedule(&set, net);
        assert!(opt.proven_optimal);
        assert!(lb.value <= opt.value, "lb {} > opt {}", lb.value, opt.value);
        // First-delivery component: 2 + 1 + 3 = 6.
        assert_eq!(lb.first_delivery, Time::new(6));
        assert!(lb.value >= Time::new(6));
    }

    #[test]
    fn lower_bound_never_exceeds_exact_optimum_on_small_instances() {
        let instances = vec![
            MulticastSet::new(
                NodeSpec::new(1, 1),
                vec![
                    NodeSpec::new(1, 1),
                    NodeSpec::new(2, 3),
                    NodeSpec::new(3, 4),
                    NodeSpec::new(5, 9),
                ],
            )
            .unwrap(),
            MulticastSet::homogeneous(NodeSpec::new(3, 4), 6),
            MulticastSet::new(
                NodeSpec::new(4, 7),
                vec![
                    NodeSpec::new(2, 2),
                    NodeSpec::new(2, 2),
                    NodeSpec::new(4, 7),
                ],
            )
            .unwrap(),
        ];
        for set in instances {
            for latency in [0u64, 1, 5] {
                let net = NetParams::new(latency);
                let lb = lower_bound(&set, net);
                let opt = optimal_schedule(&set, net);
                assert!(opt.proven_optimal);
                assert!(lb.value <= opt.value);
            }
        }
    }

    #[test]
    fn greedy_respects_theorem1_against_the_lower_bound() {
        // The theorem is stated against OPT; it must in particular hold when
        // OPT is replaced by anything ≥ OPT, and can also be *checked* with
        // the exact optimum on small instances.
        let (set, net) = figure1();
        let greedy = greedy_with_options(&set, net, GreedyOptions::PLAIN);
        let greedy_r = reception_completion(&greedy, &set, net).unwrap();
        let opt = optimal_schedule(&set, net).value;
        assert!(greedy_r.as_f64() < theorem1_bound(&set, opt));
    }

    #[test]
    fn empty_instance_bounds_are_zero() {
        let set = MulticastSet::new(NodeSpec::new(2, 2), vec![]).unwrap();
        let lb = lower_bound(&set, NetParams::new(3));
        assert_eq!(lb.value, Time::ZERO);
    }

    #[test]
    fn homogeneous_relaxation_dominates_for_large_fanout() {
        // Many fast destinations: the first-delivery term stays small but the
        // relaxation grows logarithmically and takes over.
        let set = MulticastSet::homogeneous(NodeSpec::new(2, 2), 64);
        let net = NetParams::new(1);
        let lb = lower_bound(&set, net);
        assert!(lb.homogeneous_relaxation > lb.first_delivery);
        assert_eq!(lb.value, lb.homogeneous_relaxation);
    }
}
