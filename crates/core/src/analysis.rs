//! Schedule statistics for reporting and ablation experiments.

use crate::error::CoreError;
use crate::schedule::times::evaluate;
use crate::schedule::tree::ScheduleTree;
use crate::schedule::validate::is_layered_with_timing;
use hnow_model::{MulticastSet, NetParams, NodeId, Time};
use serde::{Deserialize, Serialize};

/// Summary statistics of a complete schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Reception completion time `R_T`.
    pub reception_completion: Time,
    /// Delivery completion time `D_T`.
    pub delivery_completion: Time,
    /// Height of the tree (edges on the longest root-to-leaf path).
    pub depth: usize,
    /// Largest number of transmissions made by any single node.
    pub max_fanout: usize,
    /// Number of transmissions made by the source.
    pub source_fanout: usize,
    /// Number of leaf destinations.
    pub num_leaves: usize,
    /// Number of forwarding destinations (internal, excluding the source).
    pub num_forwarders: usize,
    /// Whether the schedule is layered.
    pub layered: bool,
    /// Total busy time summed over all nodes (send + receive overheads
    /// actually incurred), a proxy for the processor cycles the multicast
    /// steals from the application.
    pub total_busy_time: Time,
    /// Sum over destinations of the reception time — proportional to the
    /// average time a destination waits for the message.
    pub sum_reception_times: Time,
}

/// Computes summary statistics of a complete schedule.
pub fn stats(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<ScheduleStats, CoreError> {
    let timing = evaluate(tree, set, net)?;
    let mut max_fanout = 0usize;
    let mut total_busy = Time::ZERO;
    for (id, spec) in set.iter_nodes() {
        let fanout = tree.children(id).len();
        max_fanout = max_fanout.max(fanout);
        total_busy += spec.send() * (fanout as u64);
        if !id.is_source() {
            total_busy += spec.recv();
        }
    }
    let sum_reception_times = set
        .destination_ids()
        .map(|v| timing.reception(v))
        .sum::<Time>();
    let num_leaves = tree.leaves().len();
    let num_forwarders = tree
        .internal_nodes()
        .iter()
        .filter(|v| !v.is_source())
        .count();
    Ok(ScheduleStats {
        reception_completion: timing.reception_completion(),
        delivery_completion: timing.delivery_completion(),
        depth: tree.height(),
        max_fanout,
        source_fanout: tree.children(NodeId::SOURCE).len(),
        num_leaves,
        num_forwarders,
        layered: is_layered_with_timing(&timing, set),
        total_busy_time: total_busy,
        sum_reception_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baselines::{chain_schedule, star_schedule};
    use crate::algorithms::greedy::greedy_schedule;
    use hnow_model::NodeSpec;

    fn figure1() -> (MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        (
            MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap(),
            NetParams::new(1),
        )
    }

    #[test]
    fn greedy_stats_for_figure1() {
        let (set, net) = figure1();
        let tree = greedy_schedule(&set, net);
        let s = stats(&tree, &set, net).unwrap();
        assert_eq!(s.reception_completion, Time::new(10));
        assert!(s.layered);
        assert_eq!(s.num_leaves + s.num_forwarders, 4);
        assert!(s.max_fanout >= s.source_fanout.min(1));
        // Busy time: every destination incurs its receive overhead once and
        // each sender its send overhead per transmission.
        assert!(s.total_busy_time >= Time::new(1 + 1 + 1 + 3));
    }

    #[test]
    fn star_vs_chain_shapes() {
        let (set, net) = figure1();
        let star = stats(&star_schedule(&set), &set, net).unwrap();
        assert_eq!(star.depth, 1);
        assert_eq!(star.source_fanout, 4);
        assert_eq!(star.num_forwarders, 0);
        assert_eq!(star.num_leaves, 4);

        let chain = stats(&chain_schedule(&set), &set, net).unwrap();
        assert_eq!(chain.depth, 4);
        assert_eq!(chain.max_fanout, 1);
        assert_eq!(chain.num_leaves, 1);
        assert_eq!(chain.num_forwarders, 3);
    }

    #[test]
    fn sum_reception_times_orders_strategies_sensibly() {
        let (set, net) = figure1();
        let greedy = stats(&greedy_schedule(&set, net), &set, net).unwrap();
        let chain = stats(&chain_schedule(&set), &set, net).unwrap();
        assert!(greedy.sum_reception_times <= chain.sum_reception_times);
    }

    #[test]
    fn incomplete_schedule_is_an_error() {
        let (set, net) = figure1();
        let tree = ScheduleTree::new(5);
        assert!(matches!(
            stats(&tree, &set, net),
            Err(CoreError::IncompleteSchedule { .. })
        ));
    }
}
