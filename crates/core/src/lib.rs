//! # hnow-core
//!
//! Multicast scheduling for **heterogeneous networks of workstations**
//! (HNOWs) in the receive-send overhead model — a from-scratch
//! implementation of the algorithms and analysis of Libeskind-Hadas and
//! Hartline, *"Efficient Multicast in Heterogeneous Networks of
//! Workstations"* (ICPP Workshop on Network-Based Computing, 2000).
//!
//! ## What is in the crate
//!
//! * [`schedule`] — ordered multicast schedule trees, delivery/reception
//!   time evaluation (`d_T`, `r_T`, `D_T`, `R_T`), structural validation,
//!   the layeredness predicate, and the leaf-delivery refinement.
//! * [`algorithms::greedy`] — the `O(n log n)` greedy algorithm of Lemma 1,
//!   whose reception completion time is within `2·(α_max/α_min)·OPT_R + β`
//!   of optimal (Theorem 1).
//! * [`algorithms::dp`] — the `O(n^{2k})` dynamic program of Theorem 2,
//!   optimal whenever the cluster has a bounded number `k` of workstation
//!   types, including whole-network table precomputation and constant-time
//!   queries.
//! * [`algorithms::optimal`] — an exact branch-and-bound reference solver
//!   for small instances (the problem is strongly NP-complete in general).
//! * [`algorithms::baselines`] — fastest-node-first, binomial, chain, star
//!   and random schedules used as comparison points.
//! * [`algorithms::transform`] — the power-of-two rounding construction used
//!   in the proof of Theorem 1.
//! * [`bounds`] — the Theorem 1 bound and always-valid lower bounds on the
//!   optimum.
//! * [`analysis`] — schedule statistics for experiments and reports.
//!
//! ## Quick example
//!
//! ```
//! use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
//! use hnow_core::schedule::reception_completion;
//! use hnow_model::{MulticastSet, NetParams, NodeSpec};
//!
//! // Figure 1 of the paper: a slow source, three fast destinations and one
//! // slow destination, network latency 1.
//! let slow = NodeSpec::new(2, 3);
//! let fast = NodeSpec::new(1, 1);
//! let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap();
//! let net = NetParams::new(1);
//!
//! let plain = greedy_with_options(&set, net, GreedyOptions::PLAIN);
//! let refined = greedy_with_options(&set, net, GreedyOptions::REFINED);
//! assert_eq!(reception_completion(&plain, &set, net).unwrap().raw(), 10);
//! assert_eq!(reception_completion(&refined, &set, net).unwrap().raw(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod analysis;
pub mod bounds;
pub mod error;
pub mod schedule;

pub use algorithms::{
    build_schedule, dp_optimum, greedy_schedule, greedy_with_options, optimal_schedule, DpTable,
    GreedyOptions, Objective, OptimalResult, SearchOptions, Strategy,
};
pub use analysis::{stats, ScheduleStats};
pub use bounds::{lower_bound, theorem1_bound, theorem1_factor, LowerBound};
pub use error::CoreError;
pub use schedule::{
    delivery_completion, evaluate, is_layered, reception_completion, refine_leaves, ScheduleTiming,
    ScheduleTree,
};
