//! # hnow-core
//!
//! Multicast scheduling for **heterogeneous networks of workstations**
//! (HNOWs) in the receive-send overhead model — a from-scratch
//! implementation of the algorithms and analysis of Libeskind-Hadas and
//! Hartline, *"Efficient Multicast in Heterogeneous Networks of
//! Workstations"* (ICPP Workshop on Network-Based Computing, 2000).
//!
//! ## What is in the crate
//!
//! * [`planner`] — the unified planning facade: [`PlanRequest`] /
//!   [`Plan`], the [`Planner`] trait implemented by every algorithm below,
//!   the static [`planner::registry`] with per-planner capability metadata,
//!   and the batched [`planner::plan_many`] facade with a shared Theorem 2
//!   DP-table cache.
//! * [`schedule`] — ordered multicast schedule trees, delivery/reception
//!   time evaluation (`d_T`, `r_T`, `D_T`, `R_T`), structural validation,
//!   the layeredness predicate, and the leaf-delivery refinement.
//! * [`algorithms::greedy`] — the `O(n log n)` greedy algorithm of Lemma 1,
//!   whose reception completion time is within `2·(α_max/α_min)·OPT_R + β`
//!   of optimal (Theorem 1).
//! * [`algorithms::dp`] — the `O(n^{2k})` dynamic program of Theorem 2,
//!   optimal whenever the cluster has a bounded number `k` of workstation
//!   types, including whole-network table precomputation and constant-time
//!   queries.
//! * [`algorithms::optimal`] — an exact branch-and-bound reference solver
//!   for small instances (the problem is strongly NP-complete in general).
//! * [`algorithms::baselines`] — fastest-node-first, binomial, chain, star
//!   and random schedules used as comparison points.
//! * [`algorithms::transform`] — the power-of-two rounding construction used
//!   in the proof of Theorem 1.
//! * [`bounds`] — the Theorem 1 bound and always-valid lower bounds on the
//!   optimum.
//! * [`analysis`] — schedule statistics for experiments and reports.
//!
//! ## Quick example
//!
//! Every algorithm answers the same [`PlanRequest`] through the planner
//! registry, so comparing schedulers is a loop, not a match:
//!
//! ```
//! use hnow_core::planner::{self, PlanRequest};
//! use hnow_model::{MulticastSet, NetParams, NodeSpec};
//!
//! // Figure 1 of the paper: a slow source, three fast destinations and one
//! // slow destination, network latency 1.
//! let slow = NodeSpec::new(2, 3);
//! let fast = NodeSpec::new(1, 1);
//! let set = MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap();
//! let request = PlanRequest::new(set, NetParams::new(1));
//!
//! // One named planner…
//! let greedy = planner::find("greedy").unwrap().plan(&request).unwrap();
//! let refined = planner::find("greedy+leaf").unwrap().plan(&request).unwrap();
//! assert_eq!(greedy.reception_completion().raw(), 10);
//! assert_eq!(refined.reception_completion().raw(), 8);
//!
//! // …or every planner whose capability envelope covers the instance.
//! for p in planner::supporting_planners(&request.set) {
//!     let plan = p.plan(&request).unwrap();
//!     assert!(plan.reception_completion() >= plan.lower_bound.value);
//!     if plan.proven_optimal {
//!         assert_eq!(plan.reception_completion().raw(), 8);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod analysis;
pub mod bounds;
pub mod error;
pub mod planner;
pub mod schedule;

pub use algorithms::{
    dp_optimum, greedy_schedule, greedy_with_options, optimal_schedule, DpFillMode, DpTable,
    GreedyOptions, Objective, OptimalResult, SearchOptions,
};
pub use analysis::{stats, ScheduleStats};
pub use bounds::{lower_bound, theorem1_bound, theorem1_factor, LowerBound};
pub use error::CoreError;
pub use planner::{Capabilities, DpCache, Plan, PlanContext, PlanRequest, Planner, PlannerKind};
pub use schedule::{
    compose, delivery_completion, evaluate, evaluate_with_specs, is_layered, reception_completion,
    refine_leaves, ComposedSchedule, RepairPlacement, ScheduleTiming, ScheduleTree,
};
