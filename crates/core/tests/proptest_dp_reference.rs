//! Differential properties of the Theorem 2 DP fill kernel.
//!
//! [`DpTable::build`] runs an allocation-free, shell-parallel kernel whose
//! correctness rests on two non-obvious arguments (linear mixed-radix
//! indexing and the shell wavefront). These tests pin it against
//! [`DpTable::build_reference`] — the retained straightforward recurrence
//! transcription — on random limited-heterogeneity instances with `k ≤ 3`
//! types: every table state must agree exactly, in every fill mode, and the
//! reconstructed optimal schedules must be identical trees with identical
//! evaluated timings.

use hnow_core::algorithms::dp::{DpFillMode, DpTable};
use hnow_core::schedule::{reception_completion, validate};
use hnow_model::{NetParams, NodeSpec, Time, TypedMulticast};
use proptest::prelude::*;

/// Builds a random typed instance from raw draws: up to three classes whose
/// overheads are massaged into the model's correlation assumption (receive
/// overheads monotone in send overheads), so the instance can also be
/// lowered to a `MulticastSet` for schedule validation.
fn typed_from_raw(raw: Vec<(u64, u64)>, count_pool: &[usize], source_raw: usize) -> TypedMulticast {
    let k = raw.len();
    let mut raw: Vec<(u64, u64)> = raw.into_iter().map(|(s, e)| (s, s + e)).collect();
    raw.sort_unstable();
    let mut last = 0;
    let specs: Vec<NodeSpec> = raw
        .into_iter()
        .map(|(s, r)| {
            let r = r.max(last);
            last = r;
            NodeSpec::new(s, r)
        })
        .collect();
    let counts: Vec<usize> = count_pool[..k].to_vec();
    TypedMulticast::new(specs, source_raw % k, counts).expect("draw is a valid typed instance")
}

/// Enumerates every count vector inside `dims` (inclusive), in mixed-radix
/// order.
fn all_count_vectors(dims: &[usize]) -> Vec<Vec<usize>> {
    let mut all = Vec::new();
    let mut counts = vec![0usize; dims.len()];
    loop {
        all.push(counts.clone());
        let mut j = 0;
        while j < dims.len() {
            if counts[j] < dims[j] {
                counts[j] += 1;
                break;
            }
            counts[j] = 0;
            j += 1;
        }
        if j == dims.len() {
            break;
        }
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every fill mode of the kernel reproduces the reference table exactly:
    /// same value in every (source type, count vector) state.
    #[test]
    fn kernel_values_match_reference_on_every_state(
        raw in prop::collection::vec((1u64..=6, 0u64..=6), 1..=3),
        count_pool in prop::collection::vec(0usize..=3, 3..=3),
        source_raw in 0usize..3,
        latency in 0u64..4,
    ) {
        let typed = typed_from_raw(raw.clone(), &count_pool, source_raw);
        let net = NetParams::new(latency);
        let reference = DpTable::build_reference(&typed, net);
        for mode in [DpFillMode::Auto, DpFillMode::Sequential, DpFillMode::Parallel] {
            let fast = DpTable::build_with_mode(&typed, net, mode);
            prop_assert_eq!(fast.dims(), reference.dims());
            prop_assert_eq!(fast.num_states(), reference.num_states());
            for counts in all_count_vectors(reference.dims()) {
                for s in 0..reference.k() {
                    prop_assert_eq!(
                        fast.query(s, &counts),
                        reference.query(s, &counts),
                        "mode {:?}, s={}, counts={:?}", mode, s, &counts
                    );
                }
            }
        }
    }

    /// Kernel and reference agree beyond values: the recorded choices
    /// reconstruct identical schedule trees, and the trees evaluate to the
    /// table optimum on the lowered multicast set.
    #[test]
    fn kernel_reconstruction_matches_reference(
        raw in prop::collection::vec((1u64..=6, 0u64..=6), 1..=3),
        count_pool in prop::collection::vec(0usize..=3, 3..=3),
        source_raw in 0usize..3,
        latency in 0u64..4,
    ) {
        let typed = typed_from_raw(raw.clone(), &count_pool, source_raw);
        let net = NetParams::new(latency);
        let reference = DpTable::build_reference(&typed, net);
        let reference_tree = reference.reconstruct_schedule().unwrap();
        let set = typed.to_multicast_set().unwrap();
        for mode in [DpFillMode::Auto, DpFillMode::Sequential, DpFillMode::Parallel] {
            let fast = DpTable::build_with_mode(&typed, net, mode);
            let fast_tree = fast.reconstruct_schedule().unwrap();
            prop_assert_eq!(&fast_tree, &reference_tree, "mode {:?}", mode);
            validate(&fast_tree, &set).unwrap();
            let timing = if set.num_destinations() == 0 {
                Time::ZERO
            } else {
                reception_completion(&fast_tree, &set, net).unwrap()
            };
            prop_assert_eq!(timing, fast.optimum(), "mode {:?}", mode);
        }
    }
}
