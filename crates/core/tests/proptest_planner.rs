//! Property-based tests of the unified planner facade: every registered
//! planner, on random valid instances, produces a structurally valid
//! schedule whose reported timing matches a fresh evaluation, never beats
//! the always-valid lower bound, and — when it claims proven optimality —
//! is never beaten by any other planner.

use hnow_core::planner::{registry, PlanRequest};
use hnow_core::schedule::{evaluate, validate};
use hnow_model::{MulticastSet, NetParams, NodeSpec, Time};
use proptest::prelude::*;

/// Random valid multicast sets: overhead pairs are drawn, then massaged so
/// the receive overheads are monotone in the send overheads (the model's
/// correlation assumption). Sizes stay small enough for branch-and-bound to
/// prove optimality within a modest budget.
fn arb_set(max_destinations: usize) -> impl Strategy<Value = MulticastSet> {
    prop::collection::vec((1u64..=9, 0u64..=9), 2..=max_destinations + 1).prop_map(|raw| {
        let mut raw: Vec<(u64, u64)> = raw.into_iter().map(|(s, e)| (s, s + e)).collect();
        raw.sort_unstable();
        let mut last = 0;
        let specs: Vec<NodeSpec> = raw
            .into_iter()
            .map(|(s, r)| {
                let r = r.max(last);
                last = r;
                NodeSpec::new(s, r)
            })
            .collect();
        MulticastSet::new(specs[0], specs[1..].to_vec()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of every registered planner on random instances.
    #[test]
    fn every_supporting_planner_is_sound(
        set in arb_set(6),
        latency in 0u64..4,
        seed in 0u64..10_000,
    ) {
        let net = NetParams::new(latency);
        let request = PlanRequest::new(set.clone(), net)
            .with_seed(seed)
            .with_node_budget(2_000_000);

        let mut proven: Vec<(&str, Time)> = Vec::new();
        let mut completions: Vec<(&str, Time)> = Vec::new();
        for planner in registry() {
            if !planner.capabilities().supports(&set) {
                continue;
            }
            let plan = planner.plan(&request).unwrap();
            prop_assert_eq!(plan.planner, planner.name());

            // The tree is structurally valid and the reported timing is
            // exactly what a fresh evaluation of the tree yields.
            validate(&plan.tree, &set).unwrap();
            let fresh = evaluate(&plan.tree, &set, net).unwrap();
            prop_assert_eq!(&plan.timing, &fresh, "{} timing drifted", planner.name());

            // No planner — exact ones included — beats the lower bound.
            prop_assert!(
                plan.reception_completion() >= plan.lower_bound.value,
                "{} completed at {} below the lower bound {}",
                planner.name(),
                plan.reception_completion(),
                plan.lower_bound.value
            );

            if plan.proven_optimal {
                prop_assert!(planner.capabilities().exact());
                proven.push((planner.name(), plan.reception_completion()));
            }
            completions.push((planner.name(), plan.reception_completion()));
        }

        // Exact planners agree with each other and are never beaten.
        if let Some(&(_, optimum)) = proven.first() {
            for &(name, value) in &proven {
                prop_assert_eq!(value, optimum, "exact planners disagree ({})", name);
            }
            for &(name, value) in &completions {
                prop_assert!(
                    value >= optimum,
                    "{} at {} beat the proven optimum {}",
                    name,
                    value,
                    optimum
                );
            }
        }
    }

    /// The batched facade returns exactly the plans sequential planning
    /// returns, for every planner supporting the instance.
    #[test]
    fn plan_many_equals_sequential_on_random_instances(
        set in arb_set(5),
        latency in 0u64..3,
        seed in 0u64..10_000,
    ) {
        let net = NetParams::new(latency);
        let requests = vec![
            PlanRequest::new(set.clone(), net).with_seed(seed).with_node_budget(500_000),
            PlanRequest::new(set.clone(), net).with_seed(seed ^ 1).with_node_budget(500_000),
        ];
        let planners = hnow_core::planner::supporting_planners(&set);
        let batched = hnow_core::planner::plan_many(&planners, &requests);
        for (request, row) in requests.iter().zip(&batched) {
            for (planner, result) in planners.iter().zip(row) {
                prop_assert_eq!(result, &planner.plan(request), "{}", planner.name());
            }
        }
    }
}
