//! Property-based tests of the schedule-tree data structure and its timing
//! evaluation.

use hnow_core::algorithms::baselines::random_schedule;
use hnow_core::schedule::{evaluate, validate};
use hnow_core::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, NodeSpec};
use proptest::prelude::*;

fn arb_set(max_destinations: usize) -> impl Strategy<Value = MulticastSet> {
    prop::collection::vec((1u64..=9, 0u64..=9), 1..=max_destinations + 1).prop_map(|raw| {
        let mut raw: Vec<(u64, u64)> = raw.into_iter().map(|(s, e)| (s, s + e)).collect();
        raw.sort_unstable();
        let mut last = 0;
        let specs: Vec<NodeSpec> = raw
            .into_iter()
            .map(|(s, r)| {
                let r = r.max(last);
                last = r;
                NodeSpec::new(s, r)
            })
            .collect();
        MulticastSet::new(specs[0], specs[1..].to_vec()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random valid schedules satisfy every structural invariant, and their
    /// timing is internally consistent.
    #[test]
    fn random_schedules_are_structurally_sound(set in arb_set(20), seed in 0u64..10_000) {
        let tree = random_schedule(&set, seed);
        validate(&tree, &set).unwrap();
        // Child ranks are consistent with child lists.
        for v in set.destination_ids() {
            let p = tree.parent(v).unwrap();
            let rank = tree.child_rank(v).unwrap();
            prop_assert_eq!(tree.children(p)[rank - 1], v);
            prop_assert!(tree.depth(v).unwrap() >= 1);
        }
        // BFS and preorder visit every node exactly once.
        let mut bfs = tree.bfs();
        let mut pre = tree.preorder();
        bfs.sort_unstable();
        pre.sort_unstable();
        prop_assert_eq!(bfs.len(), set.num_nodes());
        prop_assert_eq!(bfs, pre);

        // Timing: children are delivered strictly after their parent's
        // reception plus latency, in strictly increasing rank order, and the
        // completion times are the maxima of the per-node times.
        let net = NetParams::new(2);
        let timing = evaluate(&tree, &set, net).unwrap();
        for v in set.destination_ids() {
            let p = tree.parent(v).unwrap();
            prop_assert!(timing.delivery(v) > timing.reception(p));
            prop_assert_eq!(timing.reception(v), timing.delivery(v) + set.spec(v).recv());
        }
        for v in tree.bfs() {
            let children = tree.children(v);
            for pair in children.windows(2) {
                prop_assert!(timing.delivery(pair[0]) < timing.delivery(pair[1]));
            }
        }
        let max_d = set.destination_ids().map(|v| timing.delivery(v)).max();
        let max_r = set.destination_ids().map(|v| timing.reception(v)).max();
        prop_assert_eq!(max_d.unwrap_or_default(), timing.delivery_completion());
        prop_assert_eq!(max_r.unwrap_or_default(), timing.reception_completion());
    }

    /// Swapping the positions of two destinations preserves completeness,
    /// the node set, and is an involution on the tree structure.
    #[test]
    fn swap_positions_is_an_involution(
        set in arb_set(12),
        seed in 0u64..1000,
        a_raw in 1usize..12,
        b_raw in 1usize..12,
    ) {
        prop_assume!(set.num_destinations() >= 2);
        let a = NodeId(1 + a_raw % set.num_destinations());
        let b = NodeId(1 + b_raw % set.num_destinations());
        let original = random_schedule(&set, seed);
        let mut tree = original.clone();
        tree.swap_positions(a, b).unwrap();
        validate(&tree, &set).unwrap();
        tree.swap_positions(a, b).unwrap();
        prop_assert_eq!(tree, original);
    }

    /// Moving a subtree under a non-descendant keeps the schedule complete
    /// and never orphans a node.
    #[test]
    fn reattach_subtree_preserves_completeness(
        set in arb_set(12),
        seed in 0u64..1000,
        child_raw in 1usize..12,
    ) {
        prop_assume!(set.num_destinations() >= 2);
        let child = NodeId(1 + child_raw % set.num_destinations());
        let mut tree = random_schedule(&set, seed);
        // Pick the first node that is not inside the moved subtree.
        let target = (0..set.num_nodes())
            .map(NodeId)
            .find(|&v| !tree.is_ancestor(child, v))
            .unwrap();
        // Insert as the target's first transmission: always a valid position,
        // even when the child is re-attached to its current parent (whose
        // child list momentarily shrinks during the move).
        tree.reattach_subtree(child, target, 0).unwrap();
        validate(&tree, &set).unwrap();
        prop_assert_eq!(tree.parent(child), Some(target));
    }
}

/// Serialisation round-trips the exact tree structure.
#[test]
fn schedule_tree_serde_roundtrip() {
    let set = MulticastSet::new(
        NodeSpec::new(2, 3),
        vec![
            NodeSpec::new(1, 1),
            NodeSpec::new(1, 1),
            NodeSpec::new(2, 3),
        ],
    )
    .unwrap();
    let tree = random_schedule(&set, 9);
    let json = serde_json::to_string(&tree).unwrap();
    let back: ScheduleTree = serde_json::from_str(&json).unwrap();
    assert_eq!(tree, back);
}
