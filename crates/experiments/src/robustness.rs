//! Experiment E9 — execution on the simulator and robustness to overhead
//! perturbation.
//!
//! Two questions: (i) does the discrete-event execution of every schedule
//! agree with the closed-form times (model-fidelity check — the stand-in for
//! the paper's testbed validation of the model), and (ii) how gracefully do
//! the strategies degrade when the *actual* overheads at run time deviate
//! from the nominal values the schedule was planned with? Perturbed replays
//! go through the simulator crate's unified occupancy kernel
//! ([`PerturbConfig::replay`]), the same loop that executes traffic-engine
//! and sharded-cluster sessions.

use crate::comparison::resolve_planners;
use crate::table::Table;
use hnow_core::planner::PlanRequest;
use hnow_model::models::Instance;
use hnow_sim::{check_against_analytic, PerturbConfig};
use hnow_workload::RandomClusterConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Robustness measurement for one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessSample {
    /// Strategy name.
    pub strategy: String,
    /// Nominal (planned) completion time.
    pub nominal: u64,
    /// Mean completion over perturbed executions.
    pub perturbed_mean: f64,
    /// Worst completion over perturbed executions.
    pub perturbed_max: u64,
    /// Whether the simulator matched the analytic times on the nominal run.
    pub matches_analytic: bool,
}

/// Configuration of the robustness experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Number of destinations.
    pub destinations: usize,
    /// Network latency.
    pub latency: u64,
    /// Relative jitter applied to every overhead.
    pub jitter: f64,
    /// Number of perturbed executions per strategy.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            destinations: 32,
            latency: 3,
            jitter: 0.25,
            trials: 20,
            seed: 0x5EED,
        }
    }
}

/// Registry names of the planners evaluated by default.
pub const DEFAULT_PLANNERS: [&str; 5] = ["greedy", "greedy+leaf", "fnf", "binomial", "star"];

/// Runs the robustness experiment.
pub fn run(config: &RobustnessConfig) -> Vec<RobustnessSample> {
    let cluster = RandomClusterConfig {
        destinations: config.destinations,
        ..RandomClusterConfig::default()
    };
    let set = cluster.generate(config.seed).expect("valid instance");
    let net = hnow_model::NetParams::new(config.latency);
    let instance = Instance::new(set, net);
    let request = PlanRequest::new(instance.set.clone(), instance.net).with_seed(config.seed);

    resolve_planners(&DEFAULT_PLANNERS)
        .par_iter()
        .map(|planner| {
            let plan = planner
                .plan(&request)
                .expect("planning a valid instance succeeds");
            let matches = check_against_analytic(&plan.tree, &instance.set, instance.net)
                .map(|m| m.is_empty())
                .unwrap_or(false);
            let nominal = plan.timing.reception_completion();
            let mut total = 0u64;
            let mut worst = 0u64;
            for trial in 0..config.trials {
                let perturb = PerturbConfig::new(config.jitter, config.seed ^ (trial as u64 + 1));
                let (_, reception) = perturb.replay(&plan.tree, &instance.set, instance.net);
                total += reception.raw();
                worst = worst.max(reception.raw());
            }
            RobustnessSample {
                strategy: plan.planner.to_string(),
                nominal: nominal.raw(),
                perturbed_mean: total as f64 / config.trials.max(1) as f64,
                perturbed_max: worst,
                matches_analytic: matches,
            }
        })
        .collect()
}

/// Renders the experiment table.
pub fn table(samples: &[RobustnessSample]) -> Table {
    let mut t = Table::new(
        "E9 / simulator fidelity and robustness to ±jitter in the overheads",
        &[
            "strategy",
            "nominal",
            "perturbed mean",
            "perturbed max",
            "sim matches analytic",
        ],
    );
    for s in samples {
        t.push_row(vec![
            s.strategy.clone().into(),
            s.nominal.into(),
            s.perturbed_mean.into(),
            s.perturbed_max.into(),
            if s.matches_analytic { "yes" } else { "NO" }.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_matches_and_perturbation_stays_bounded() {
        let config = RobustnessConfig {
            destinations: 12,
            latency: 2,
            jitter: 0.2,
            trials: 5,
            seed: 31,
        };
        let samples = run(&config);
        assert_eq!(samples.len(), DEFAULT_PLANNERS.len());
        for s in &samples {
            assert!(s.matches_analytic, "{}", s.strategy);
            // With ±20% jitter the completion cannot exceed the nominal value
            // by more than ~20% plus integer rounding slack.
            assert!(
                (s.perturbed_max as f64)
                    <= s.nominal as f64 * 1.2 + 2.0 * config.destinations as f64,
                "{}: perturbed {} vs nominal {}",
                s.strategy,
                s.perturbed_max,
                s.nominal
            );
            assert!(s.perturbed_mean > 0.0);
        }
        let greedy = samples
            .iter()
            .find(|s| s.strategy == "greedy+leaf")
            .unwrap();
        let star = samples.iter().find(|s| s.strategy == "star").unwrap();
        assert!(greedy.nominal <= star.nominal);
        assert_eq!(table(&samples).rows.len(), samples.len());
    }
}
