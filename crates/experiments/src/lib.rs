//! # hnow-experiments
//!
//! Experiment harness reproducing every figure and quantitative claim of
//! Libeskind-Hadas & Hartline (2000). Each module corresponds to one
//! experiment id of DESIGN.md §4:
//!
//! | id | module | paper artefact |
//! |----|--------|----------------|
//! | E1 | [`figure1`] | Figure 1 (two example schedules) |
//! | E2 | [`scaling`] | Lemma 1 / Theorem 2 running times |
//! | E3 | [`bound_check`] | Theorem 1 approximation bound |
//! | E4, E5 | [`layered`] | Lemma 2 / Corollary 1, Lemma 3 / eq. (4) |
//! | E6 | [`dp_opt`] | Theorem 2 optimality |
//! | E7 | [`leaf_reversal`] | Section 3 leaf refinement |
//! | E8 | [`comparison`] | heterogeneity-aware vs oblivious scheduling |
//! | E9 | [`robustness`] | simulator fidelity and overhead jitter |
//! | E10 | [`traffic`] | sessions-at-scale service throughput (beyond the paper) |
//! | E11 | [`sharded`] | sharded cluster service vs the flat engine (beyond the paper) |
//! | E12 | [`control`] | control-plane policy sweep under shifting hot spots (beyond the paper) |
//! | E13 | [`reliability`] | repairer placement under injected loss (beyond the paper) |
//! | E14 | [`streaming`] | pipelined vs sequential chunk trains (beyond the paper) |
//!
//! [`run_all`] executes a reduced version of every experiment and returns
//! the tables; the example binaries and `EXPERIMENTS.md` are produced from
//! exactly these code paths with larger parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bound_check;
pub mod comparison;
pub mod control;
pub mod dp_opt;
pub mod figure1;
pub mod layered;
pub mod leaf_reversal;
pub mod reliability;
pub mod robustness;
pub mod scaling;
pub mod sharded;
pub mod streaming;
pub mod table;
pub mod traffic;

pub use table::{Cell, Table};

/// A completed experiment: its DESIGN.md id, a human-readable headline and
/// its result tables.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id ("E1" … "E9").
    pub id: &'static str,
    /// One-sentence summary of what was checked and what was observed.
    pub headline: String,
    /// Result tables.
    pub tables: Vec<Table>,
}

/// Runs every experiment at a reduced scale suitable for CI (a few seconds
/// in total) and returns the reports in id order. The example binaries run
/// the same code with larger parameters.
pub fn run_all(seed: u64) -> Vec<ExperimentReport> {
    let mut reports = Vec::new();

    let fig = figure1::run();
    reports.push(ExperimentReport {
        id: "E1",
        headline: format!(
            "Figure 1 reproduced: schedule (a) = {}, schedule (b) = {}, greedy = {}, optimum = {}",
            fig.schedule_a, fig.schedule_b, fig.greedy, fig.optimal
        ),
        tables: vec![figure1::table(&fig)],
    });

    let greedy_scaling = scaling::greedy_scaling(&[64, 256, 1024, 4096], seed);
    let dp_scaling = scaling::dp_scaling(&[4, 8, 16, 32], 4);
    let mut scaling_samples = greedy_scaling;
    scaling_samples.extend(dp_scaling);
    reports.push(ExperimentReport {
        id: "E2",
        headline: "Greedy and DP running times recorded (see Criterion benches for statistics)"
            .to_string(),
        tables: vec![scaling::table(&scaling_samples)],
    });

    let bound_cfg = bound_check::BoundCheckConfig {
        sizes: [5, 7, 8],
        samples_per_size: 10,
        latency: 2,
        seed,
    };
    let bound_samples = bound_check::run(&bound_cfg);
    let violations = bound_samples.iter().filter(|s| !s.bound_holds).count();
    let max_ratio = bound_samples.iter().map(|s| s.ratio).fold(0.0, f64::max);
    reports.push(ExperimentReport {
        id: "E3",
        headline: format!(
            "Theorem 1 bound held on {}/{} instances; worst observed greedy/OPT ratio {:.3}",
            bound_samples.len() - violations,
            bound_samples.len(),
            max_ratio
        ),
        tables: vec![bound_check::table(&bound_samples)],
    });

    let layered_cfg = layered::LayeredConfig {
        sizes: [5, 6],
        samples_per_size: 8,
        latency: 1,
        seed,
    };
    let layered_samples = layered::run(&layered_cfg);
    let c1 = layered_samples
        .iter()
        .filter(|s| s.corollary1_holds())
        .count();
    let e4 = layered_samples
        .iter()
        .filter(|s| s.equation4_holds())
        .count();
    reports.push(ExperimentReport {
        id: "E4+E5",
        headline: format!(
            "Corollary 1 held on {c1}/{} instances, equation (4) on {e4}/{}",
            layered_samples.len(),
            layered_samples.len()
        ),
        tables: vec![layered::table(&layered_samples)],
    });

    let dp_cfg = dp_opt::DpConfig {
        two_class_max: 16,
        four_class_max: 4,
        exact_limit: 8,
        latency: 2,
        message_kib: 4,
    };
    let dp_samples = dp_opt::run(&dp_cfg);
    let dp_checked = dp_samples.iter().filter(|s| s.exact.is_some()).count();
    reports.push(ExperimentReport {
        id: "E6",
        headline: format!(
            "DP matched the exact optimum on all {dp_checked} cross-checked instances"
        ),
        tables: vec![dp_opt::table(&dp_samples)],
    });

    let refinement = leaf_reversal::default_samples(24, seed);
    let best = refinement
        .iter()
        .map(|s| s.improvement())
        .fold(0.0, f64::max);
    reports.push(ExperimentReport {
        id: "E7",
        headline: format!(
            "Leaf refinement never hurt and improved completion by up to {:.1}%",
            best * 100.0
        ),
        tables: vec![leaf_reversal::table(&refinement)],
    });

    let comparison_points = comparison::default_slow_fraction_points(32, seed);
    reports.push(ExperimentReport {
        id: "E8",
        headline: "Heterogeneity-aware greedy dominates oblivious baselines; gap widens with slow-node fraction"
            .to_string(),
        tables: vec![comparison::table(
            "slow fraction",
            &comparison_points,
            &comparison::DEFAULT_PLANNERS,
        )],
    });

    let robustness_cfg = robustness::RobustnessConfig {
        destinations: 24,
        latency: 3,
        jitter: 0.25,
        trials: 10,
        seed,
    };
    let robustness_samples = robustness::run(&robustness_cfg);
    let all_match = robustness_samples.iter().all(|s| s.matches_analytic);
    reports.push(ExperimentReport {
        id: "E9",
        headline: format!(
            "Simulator matched analytic times for every strategy: {}; completions degrade gracefully under ±25% jitter",
            if all_match { "yes" } else { "NO" }
        ),
        tables: vec![robustness::table(&robustness_samples)],
    });

    let traffic_cfg = traffic::TrafficStudyConfig {
        sessions: 80,
        mean_gaps: vec![200.0, 20.0],
        seed,
        ..traffic::TrafficStudyConfig::default()
    };
    let traffic_points = traffic::run(&traffic_cfg);
    let peak = traffic_points
        .iter()
        .map(|p| p.throughput_per_kilotick)
        .fold(0.0, f64::max);
    reports.push(ExperimentReport {
        id: "E10",
        headline: format!(
            "Traffic engine served {} sessions per load point across {} planners; peak throughput {:.2} sessions/kilotick",
            traffic_cfg.sessions,
            traffic::DEFAULT_PLANNERS.len(),
            peak
        ),
        tables: vec![traffic::table(&traffic_points)],
    });

    let sharded_cfg = sharded::ShardedStudyConfig {
        sessions: 150,
        shard_counts: vec![2, 4],
        cross_fractions: vec![0.0, 0.2],
        seed,
        ..sharded::ShardedStudyConfig::default()
    };
    let sharded_points = sharded::run(&sharded_cfg);
    let best_speedup = sharded_points.iter().map(|p| p.speedup).fold(0.0, f64::max);
    reports.push(ExperimentReport {
        id: "E11",
        headline: format!(
            "Sharded cluster served {} sessions per point at up to {:.2}x the flat engine's wall-clock speed",
            sharded_cfg.sessions, best_speedup
        ),
        tables: vec![sharded::table(&sharded_points)],
    });

    // E12 keeps its own pinned seed: the preset (load, churn, seed) is
    // calibrated together so the control-plane comparison is a claim
    // about one reproducible request vector.
    let control_cfg = control::ControlStudyConfig::default();
    let control_points = control::run(&control_cfg);
    let baseline = &control_points[0];
    let full = control_points.last().expect("control sweep is non-empty");
    reports.push(ExperimentReport {
        id: "E12",
        headline: format!(
            "Admission + rebalancing completed {} of {} sessions vs {} uncontrolled (p99 queue delay {} vs {})",
            full.completed,
            control_cfg.sessions,
            baseline.completed,
            full.p99_queue_delay,
            baseline.p99_queue_delay
        ),
        tables: vec![control::table(&control_points)],
    });

    // E13 keeps its own pinned seeds for the same reason as E12: the
    // request vector, the loss draws and the burst geometry are calibrated
    // together, so the placement comparison is a claim about one
    // reproducible lossy scenario.
    let reliability_cfg = reliability::ReliabilityStudyConfig::default();
    let reliability_points = reliability::run(&reliability_cfg);
    let worst = reliability_points
        .iter()
        .map(|p| p.residual_loss)
        .fold(0.0, f64::max);
    let repairs: u64 = reliability_points.iter().map(|p| p.repair_sends).sum();
    reports.push(ExperimentReport {
        id: "E13",
        headline: format!(
            "Injected loss swept over {} placements × {} rates: {repairs} repairs sent, worst residual loss {:.4}",
            reliability::PLACEMENTS.len(),
            reliability_cfg.rates.len(),
            worst
        ),
        tables: vec![reliability::table(&reliability_points)],
    });

    // E14 keeps its own pinned seeds too: the pipelined-vs-sequential
    // strict win is a claim about one reproducible arrival vector and one
    // set of loss draws per chunk count.
    let streaming_cfg = streaming::StreamingStudyConfig::default();
    let streaming_points = streaming::run(&streaming_cfg);
    let best = streaming_points
        .iter()
        .map(|p| p.throughput)
        .fold(0.0, f64::max);
    reports.push(ExperimentReport {
        id: "E14",
        headline: format!(
            "Chunk trains swept over {} counts × {} disciplines × {} loss rates: best steady-state throughput {:.2} chunk-deliveries/1000 ticks",
            streaming_cfg.chunk_counts.len(),
            streaming::MODES.len(),
            streaming_cfg.rates.len(),
            best
        ),
        tables: vec![streaming::table(&streaming_points)],
    });

    reports
}

/// Renders every report as a single markdown document (the body of
/// EXPERIMENTS.md is generated from this).
pub fn render_markdown(reports: &[ExperimentReport]) -> String {
    let mut out = String::new();
    for report in reports {
        out.push_str(&format!("## {} — {}\n\n", report.id, report.headline));
        for table in &report.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_produces_every_experiment() {
        let reports = run_all(0xC0FFEE);
        let ids: Vec<&str> = reports.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![
                "E1", "E2", "E3", "E4+E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
                "E14"
            ]
        );
        for report in &reports {
            assert!(!report.tables.is_empty());
            assert!(!report.headline.is_empty());
        }
        let md = render_markdown(&reports);
        assert!(md.contains("## E1"));
        assert!(md.contains("## E9"));
        assert!(md.contains("## E10"));
        assert!(md.contains("## E11"));
        assert!(md.contains("## E12"));
        assert!(md.contains("## E13"));
        assert!(md.contains("## E14"));
    }
}
