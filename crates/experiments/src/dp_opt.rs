//! Experiment E6 — the limited-heterogeneity dynamic program (Theorem 2).
//!
//! Two claims are exercised: the dynamic program is *optimal* (cross-checked
//! against the exact branch-and-bound solver on small instances), and it
//! scales polynomially so that realistic clusters with a handful of
//! workstation types are solved exactly where the general problem is
//! NP-complete. The table also reports how much the greedy approximation
//! loses against the DP optimum at sizes far beyond what branch-and-bound
//! can reach.

use crate::table::Table;
use hnow_core::algorithms::dp::DpTable;
use hnow_core::planner::{self, PlanRequest};
use hnow_model::{MessageSize, NetParams, TypedMulticast};
use hnow_workload::{standard_class_table, two_class_table};
use serde::{Deserialize, Serialize};

/// One DP measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpSample {
    /// Number of distinct types `k`.
    pub k: usize,
    /// Total destinations `n`.
    pub n: usize,
    /// DP optimum.
    pub dp_optimal: u64,
    /// Greedy (leaf-refined) completion on the same instance.
    pub greedy_refined: u64,
    /// Exact branch-and-bound optimum, when the instance is small enough to
    /// solve (`None` otherwise).
    pub exact: Option<u64>,
    /// Number of DP states computed.
    pub dp_states: usize,
    /// greedy / dp ratio.
    pub greedy_ratio: f64,
}

/// Configuration of the DP experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Largest per-class count used with the two-class table.
    pub two_class_max: usize,
    /// Largest per-class count used with the four-class table.
    pub four_class_max: usize,
    /// Destination-count threshold below which the exact solver cross-checks
    /// the DP.
    pub exact_limit: usize,
    /// Network latency.
    pub latency: u64,
    /// Message size at which the class profiles are evaluated.
    pub message_kib: u64,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig {
            two_class_max: 24,
            four_class_max: 6,
            exact_limit: 9,
            latency: 2,
            message_kib: 4,
        }
    }
}

fn measure(typed: &TypedMulticast, net: NetParams, exact_limit: usize) -> DpSample {
    let table = DpTable::build(typed, net);
    let set = typed.to_multicast_set().expect("typed instance is valid");
    let request = PlanRequest::new(set, net).with_node_budget(5_000_000);
    let greedy_r = planner::find("greedy+leaf")
        .expect("refined greedy is registered")
        .plan(&request)
        .expect("planning a valid instance succeeds")
        .timing
        .reception_completion();
    let exact = if typed.total_destinations() <= exact_limit {
        let plan = planner::find("branch-bound")
            .expect("branch-and-bound is registered")
            .plan(&request)
            .expect("planning a valid instance succeeds");
        plan.proven_optimal
            .then(|| plan.timing.reception_completion().raw())
    } else {
        None
    };
    let dp_optimal = table.optimum().raw();
    DpSample {
        k: typed.k(),
        n: typed.total_destinations(),
        dp_optimal,
        greedy_refined: greedy_r.raw(),
        exact,
        dp_states: table.num_states(),
        greedy_ratio: greedy_r.as_f64() / (dp_optimal.max(1)) as f64,
    }
}

/// Runs the experiment across two-class and four-class clusters of growing
/// size.
pub fn run(config: &DpConfig) -> Vec<DpSample> {
    let net = NetParams::new(config.latency);
    let size = MessageSize::from_kib(config.message_kib);
    let mut samples = Vec::new();

    // Two classes (fast/legacy), equal split, slow source.
    let two = two_class_table();
    let mut n = 2usize;
    while n <= config.two_class_max {
        let typed = TypedMulticast::from_classes(&two, size, 1, vec![n / 2, n - n / 2]).unwrap();
        samples.push(measure(&typed, net, config.exact_limit));
        n *= 2;
    }

    // Four classes, equal split, fastest source.
    let four = standard_class_table();
    let mut per_class = 1usize;
    while per_class <= config.four_class_max {
        let typed = TypedMulticast::from_classes(&four, size, 0, vec![per_class; 4]).unwrap();
        samples.push(measure(&typed, net, config.exact_limit));
        per_class *= 2;
    }
    samples
}

/// Renders the experiment table.
pub fn table(samples: &[DpSample]) -> Table {
    let mut t = Table::new(
        "E6 / Theorem 2 — dynamic program vs greedy and exact search",
        &[
            "k",
            "n",
            "dp optimum",
            "exact optimum",
            "greedy+leaf",
            "greedy/dp",
            "dp states",
        ],
    );
    for s in samples {
        t.push_row(vec![
            s.k.into(),
            s.n.into(),
            s.dp_optimal.into(),
            s.exact
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_string())
                .into(),
            s.greedy_refined.into(),
            s.greedy_ratio.into(),
            s.dp_states.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_matches_exact_and_bounds_greedy() {
        let config = DpConfig {
            two_class_max: 8,
            four_class_max: 2,
            exact_limit: 8,
            latency: 1,
            message_kib: 4,
        };
        let samples = run(&config);
        assert!(!samples.is_empty());
        for s in &samples {
            if let Some(exact) = s.exact {
                assert_eq!(
                    s.dp_optimal, exact,
                    "DP must equal the exact optimum: {s:?}"
                );
            }
            assert!(s.dp_optimal <= s.greedy_refined);
            assert!(s.greedy_ratio >= 1.0 - 1e-9);
        }
        let t = table(&samples);
        assert_eq!(t.rows.len(), samples.len());
    }
}
