//! Experiment E1 — reproduction of the paper's Figure 1.
//!
//! Figure 1 shows two schedules for the same 5-node instance (slow source,
//! three fast destinations, one slow destination, latency 1): schedule (a)
//! completes at time 10 and schedule (b) at time 9. This experiment rebuilds
//! both schedules exactly, checks their completion times against the paper,
//! and additionally reports what the crate's algorithms produce for the same
//! instance: the plain greedy algorithm (10, matching (a)), the
//! leaf-refined greedy (8), and the exact optimum (8) — the paper never
//! claims 9 is optimal, so the stronger schedules are consistent with it.

use crate::table::Table;
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::algorithms::optimal::optimal_schedule;
use hnow_core::schedule::{evaluate, reception_completion, ScheduleTree};
use hnow_model::{MulticastSet, NetParams, NodeId, NodeSpec, Time};
use serde::{Deserialize, Serialize};

/// The Figure 1 instance: slow source (2, 3), three fast destinations
/// (1, 1), one slow destination (2, 3), latency 1.
pub fn figure1_instance() -> (MulticastSet, NetParams) {
    let slow = NodeSpec::new(2, 3);
    let fast = NodeSpec::new(1, 1);
    (
        MulticastSet::new(slow, vec![fast, fast, fast, slow]).expect("figure 1 instance is valid"),
        NetParams::new(1),
    )
}

/// The schedule of Figure 1(a): the source sends to two fast nodes; the
/// first fast node forwards to the remaining fast node and then to the slow
/// node. Completion time 10.
pub fn figure1a_schedule() -> ScheduleTree {
    let mut tree = ScheduleTree::new(5);
    tree.attach(NodeId(0), NodeId(1)).unwrap();
    tree.attach(NodeId(0), NodeId(2)).unwrap();
    tree.attach(NodeId(1), NodeId(3)).unwrap();
    tree.attach(NodeId(1), NodeId(4)).unwrap();
    tree
}

/// The schedule of Figure 1(b): the same tree, but the forwarding fast node
/// serves the slow destination *first*. Completion time 9.
pub fn figure1b_schedule() -> ScheduleTree {
    let mut tree = ScheduleTree::new(5);
    tree.attach(NodeId(0), NodeId(1)).unwrap();
    tree.attach(NodeId(0), NodeId(2)).unwrap();
    tree.attach(NodeId(1), NodeId(4)).unwrap();
    tree.attach(NodeId(1), NodeId(3)).unwrap();
    tree
}

/// Result of the Figure 1 reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Figure1Report {
    /// Completion of the paper's schedule (a); the paper reports 10.
    pub schedule_a: Time,
    /// Completion of the paper's schedule (b); the paper reports 9.
    pub schedule_b: Time,
    /// Completion of the plain greedy schedule.
    pub greedy: Time,
    /// Completion of the leaf-refined greedy schedule.
    pub greedy_refined: Time,
    /// Exact optimal completion.
    pub optimal: Time,
    /// Per-destination reception times of schedule (a), in node-id order —
    /// the bracketed numbers of the figure.
    pub schedule_a_receptions: Vec<Time>,
}

/// Runs the Figure 1 reproduction.
pub fn run() -> Figure1Report {
    let (set, net) = figure1_instance();
    let a = figure1a_schedule();
    let b = figure1b_schedule();
    let timing_a = evaluate(&a, &set, net).expect("figure 1(a) is complete");
    let schedule_b = reception_completion(&b, &set, net).expect("figure 1(b) is complete");
    let greedy = reception_completion(
        &greedy_with_options(&set, net, GreedyOptions::PLAIN),
        &set,
        net,
    )
    .unwrap();
    let greedy_refined = reception_completion(
        &greedy_with_options(&set, net, GreedyOptions::REFINED),
        &set,
        net,
    )
    .unwrap();
    let optimal = optimal_schedule(&set, net).value;
    Figure1Report {
        schedule_a: timing_a.reception_completion(),
        schedule_b,
        greedy,
        greedy_refined,
        optimal,
        schedule_a_receptions: set
            .destination_ids()
            .map(|v| timing_a.reception(v))
            .collect(),
    }
}

/// Renders the report as the experiment table.
pub fn table(report: &Figure1Report) -> Table {
    let mut t = Table::new(
        "E1 / Figure 1 — completion times for the 5-node example",
        &["schedule", "paper", "measured"],
    );
    t.push_row(vec![
        "figure 1(a)".into(),
        10u64.into(),
        report.schedule_a.raw().into(),
    ]);
    t.push_row(vec![
        "figure 1(b)".into(),
        9u64.into(),
        report.schedule_b.raw().into(),
    ]);
    t.push_row(vec![
        "greedy (Lemma 1)".into(),
        "-".into(),
        report.greedy.raw().into(),
    ]);
    t.push_row(vec![
        "greedy + leaf refinement".into(),
        "-".into(),
        report.greedy_refined.raw().into(),
    ]);
    t.push_row(vec![
        "exact optimum".into(),
        "-".into(),
        report.optimal.raw().into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper() {
        let report = run();
        assert_eq!(report.schedule_a, Time::new(10));
        assert_eq!(report.schedule_b, Time::new(9));
        assert_eq!(report.greedy, Time::new(10));
        assert_eq!(report.greedy_refined, Time::new(8));
        assert_eq!(report.optimal, Time::new(8));
        // The bracketed reception times of Figure 1(a): 4, 6, 7 and 10.
        let mut receptions: Vec<u64> = report
            .schedule_a_receptions
            .iter()
            .map(|t| t.raw())
            .collect();
        receptions.sort_unstable();
        assert_eq!(receptions, vec![4, 6, 7, 10]);
    }

    #[test]
    fn table_contains_all_rows() {
        let t = table(&run());
        assert_eq!(t.rows.len(), 5);
        assert!(t.to_markdown().contains("figure 1(a)"));
    }
}
