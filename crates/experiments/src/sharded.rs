//! Experiment E11 — sharded cluster service: wall-clock and quality of the
//! sharded dispatcher versus the single flat engine at equal total nodes.
//!
//! The ROADMAP's service layer wants makespan and memory sub-linear in
//! total cluster size. This study fixes one large pool and one offered
//! session stream per cross-shard fraction, then serves the *identical
//! request vector* two ways: through the flat [`TrafficEngine`] over the
//! whole pool, and through a [`ShardedCluster`] at each swept shard count. Per
//! (shard count × cross-shard fraction) point it reports both engines'
//! wall-clock, the speedup, throughput/p99/queue-delay quality deltas, and
//! how many cross-shard sessions hit their stitched analytic timing
//! exactly. Expected shape: the sharded service wins wall-clock (per-shard
//! plan caches, lazily-primed per-component event heaps, pool-size-
//! independent session signatures) while quality metrics stay comparable;
//! under zero contention every cross-shard session matches its stitched
//! planned `R_T`/`D_T` exactly. Both engines now run the one shared
//! occupancy kernel (`hnow_sim`'s `kernel` module), so contended quality
//! deltas are pure sharding effects — routing, gateway stitching and
//! per-shard planning — not same-instant tie-break divergence; with zero
//! cross traffic and one shard the two services coincide per session.

use crate::table::Table;
use hnow_model::NetParams;
use hnow_sim::cluster::ShardedCluster;
use hnow_sim::sessions::TrafficEngine;
use hnow_sim::RunConfig;
use hnow_workload::traffic::NodePool;
use hnow_workload::{default_message_size, two_class_table, ShardMap, ShardedPattern};
use serde::Serialize;
use std::time::Instant;

/// Configuration of the sharded-cluster study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedStudyConfig {
    /// Fast-class and slow-class node counts of the *total* pool.
    pub pool_counts: [usize; 2],
    /// Shard counts to sweep (each compared against the flat engine).
    pub shard_counts: Vec<usize>,
    /// Cross-shard fractions to sweep.
    pub cross_fractions: Vec<f64>,
    /// Sessions offered per point.
    pub sessions: usize,
    /// Destination-group size.
    pub group_size: usize,
    /// Mean inter-arrival gap of the Poisson stream.
    pub mean_gap: f64,
    /// Network latency `L`.
    pub latency: u64,
    /// Seed of the session streams.
    pub seed: u64,
    /// Registry planner serving both engines.
    pub planner: String,
}

impl Default for ShardedStudyConfig {
    /// A CI-sized study: 48 nodes, 300 sessions, 2 shard counts × 2
    /// fractions.
    fn default() -> Self {
        ShardedStudyConfig {
            pool_counts: [32, 16],
            shard_counts: vec![2, 4],
            cross_fractions: vec![0.0, 0.2],
            sessions: 300,
            group_size: 5,
            mean_gap: 8.0,
            latency: 2,
            seed: 0x5AAD,
            planner: "greedy+leaf".to_string(),
        }
    }
}

impl ShardedStudyConfig {
    /// The acceptance-scale soak: 384 nodes, 50k sessions, 8 shards, at a
    /// per-node load matching the flat engine's saturation regime.
    pub fn soak() -> Self {
        ShardedStudyConfig {
            pool_counts: [256, 128],
            shard_counts: vec![8],
            cross_fractions: vec![0.05],
            sessions: 50_000,
            group_size: 6,
            mean_gap: 1.5,
            ..ShardedStudyConfig::default()
        }
    }
}

/// One (shard count, cross-shard fraction) measurement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedPoint {
    /// Shard count of the sharded run.
    pub shards: usize,
    /// Requested cross-shard fraction of the offered stream.
    pub cross_fraction: f64,
    /// Fraction of sessions that actually spanned shards.
    pub observed_cross_fraction: f64,
    /// Wall-clock of the sharded run, milliseconds.
    pub sharded_wall_ms: f64,
    /// Wall-clock of the flat single-engine run, milliseconds.
    pub flat_wall_ms: f64,
    /// `flat_wall_ms / sharded_wall_ms` (> 1 means the sharded service is
    /// faster).
    pub speedup: f64,
    /// Sharded-run throughput (completed sessions per kilotick).
    pub sharded_throughput: f64,
    /// Flat-run throughput.
    pub flat_throughput: f64,
    /// Sharded-run p99 reception latency.
    pub sharded_p99: u64,
    /// Flat-run p99 reception latency.
    pub flat_p99: u64,
    /// Sharded-run mean queue delay.
    pub sharded_queue_delay: f64,
    /// Flat-run mean queue delay.
    pub flat_queue_delay: f64,
    /// Cross-shard sessions in the stream.
    pub cross_sessions: usize,
    /// Cross-shard sessions whose achieved `R_T` *and* `D_T` equal their
    /// stitched planned timing (equals `cross_sessions` in an uncontended,
    /// zero-jitter run; lower under queueing, where achieved ≥ planned).
    pub cross_stitched_exact: usize,
}

/// Runs the study: per (fraction, shard count), the same request vector
/// through both engines.
pub fn run(config: &ShardedStudyConfig) -> Vec<ShardedPoint> {
    let pool = NodePool::new(
        two_class_table(),
        default_message_size(),
        &[config.pool_counts[0], config.pool_counts[1]],
    )
    .expect("study pool is non-empty");
    let net = NetParams::new(config.latency);
    let mut points = Vec::new();
    for &frac in &config.cross_fractions {
        for &shards in &config.shard_counts {
            let map = ShardMap::partition(&pool, shards).expect("valid shard count");
            let pattern = ShardedPattern {
                base: hnow_workload::TrafficPattern::poisson(config.mean_gap, config.group_size),
                cross_shard_fraction: frac,
            };
            let requests = pattern
                .generate(&map, config.sessions, config.seed)
                .expect("study pattern is valid");

            let flat_engine =
                TrafficEngine::with_config(&pool, net, &RunConfig::for_planner(&config.planner));
            let flat_start = Instant::now();
            let flat = flat_engine.run(&requests).expect("flat run succeeds");
            let flat_wall_ms = flat_start.elapsed().as_secs_f64() * 1000.0;

            let cluster = ShardedCluster::with_config(
                &pool,
                net,
                &RunConfig::for_planner(&config.planner).sharded(shards),
            )
            .expect("valid cluster config");
            let sharded_start = Instant::now();
            let sharded = cluster.run(&requests).expect("sharded run succeeds");
            let sharded_wall_ms = sharded_start.elapsed().as_secs_f64() * 1000.0;

            let cross_stitched_exact = sharded
                .per_session
                .iter()
                .filter(|s| {
                    s.cross
                        && !s.record.abandoned
                        && s.record.reception_latency == s.record.planned_reception
                        && s.record.delivery_latency == s.record.planned_delivery
                })
                .count();
            points.push(ShardedPoint {
                shards,
                cross_fraction: frac,
                observed_cross_fraction: sharded.observed_cross_fraction,
                sharded_wall_ms,
                flat_wall_ms,
                speedup: if sharded_wall_ms > 0.0 {
                    flat_wall_ms / sharded_wall_ms
                } else {
                    0.0
                },
                sharded_throughput: sharded.total.throughput_per_kilotick,
                flat_throughput: flat.throughput_per_kilotick,
                sharded_p99: sharded.total.p99_reception_latency,
                flat_p99: flat.p99_reception_latency,
                sharded_queue_delay: sharded.total.mean_queue_delay,
                flat_queue_delay: flat.mean_queue_delay,
                cross_sessions: sharded.cross_sessions,
                cross_stitched_exact,
            });
        }
    }
    points
}

/// Renders the study as a table: one row per (fraction, shard count).
pub fn table(points: &[ShardedPoint]) -> Table {
    let mut t = Table::new(
        "E11 / sharded cluster: wall-clock and quality vs the flat engine",
        &[
            "shards",
            "cross frac",
            "sharded ms",
            "flat ms",
            "speedup",
            "sharded tput/kt",
            "flat tput/kt",
            "sharded p99",
            "flat p99",
            "cross exact",
        ],
    );
    for p in points {
        t.push_row(vec![
            (p.shards as u64).into(),
            p.cross_fraction.into(),
            p.sharded_wall_ms.into(),
            p.flat_wall_ms.into(),
            p.speedup.into(),
            p.sharded_throughput.into(),
            p.flat_throughput.into(),
            p.sharded_p99.into(),
            p.flat_p99.into(),
            format!("{}/{}", p.cross_stitched_exact, p.cross_sessions).into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ShardedStudyConfig {
        ShardedStudyConfig {
            pool_counts: [8, 4],
            shard_counts: vec![2],
            cross_fractions: vec![0.0, 0.3],
            sessions: 60,
            group_size: 3,
            mean_gap: 50.0,
            ..ShardedStudyConfig::default()
        }
    }

    #[test]
    fn study_produces_one_point_per_fraction_and_shard_count() {
        let points = run(&tiny_config());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.shards, 2);
            assert!(p.sharded_wall_ms > 0.0);
            assert!(p.flat_wall_ms > 0.0);
            assert!(p.sharded_throughput > 0.0);
        }
        let zero_cross = &points[0];
        assert_eq!(zero_cross.cross_sessions, 0);
        assert_eq!(zero_cross.observed_cross_fraction, 0.0);
        let mixed = &points[1];
        assert!(mixed.cross_sessions > 0);
        let t = table(&points);
        assert!(t.to_markdown().contains("speedup"));
    }

    #[test]
    #[ignore = "acceptance-scale soak; run explicitly with --ignored"]
    fn acceptance_soak_is_at_least_twice_as_fast() {
        let points = run(&ShardedStudyConfig::soak());
        for p in &points {
            eprintln!(
                "soak: {} shards frac {:.2}: sharded {:.1} ms vs flat {:.1} ms = {:.2}x, cross exact {}/{}",
                p.shards, p.cross_fraction, p.sharded_wall_ms, p.flat_wall_ms, p.speedup,
                p.cross_stitched_exact, p.cross_sessions
            );
            assert!(p.speedup >= 2.0, "soak speedup {:.2}x < 2x", p.speedup);
        }
    }

    #[test]
    fn uncontended_cross_sessions_hit_their_stitched_timing_exactly() {
        // The zero-jitter, zero-contention configuration: a huge mean gap
        // serializes the sessions, so every cross session must land exactly
        // on its stitched analytic R_T/D_T.
        let config = ShardedStudyConfig {
            mean_gap: 100_000.0,
            cross_fractions: vec![0.5],
            sessions: 40,
            ..tiny_config()
        };
        let points = run(&config);
        assert_eq!(points.len(), 1);
        assert!(points[0].cross_sessions > 0);
        assert_eq!(
            points[0].cross_stitched_exact, points[0].cross_sessions,
            "every uncontended cross session must match its stitched timing"
        );
    }
}
