//! Experiment E14 — chunked streaming sessions: pipelined chunk trains vs
//! sequential re-sends, swept over chunk count and injected loss.
//!
//! A streaming session moves its payload as a train of chunks released
//! every `interval` ticks. The kernel offers two disciplines: *pipelined*
//! (the streaming default) opens chunk `c + 1` as soon as its release time
//! arrives, so consecutive chunks overlap in the tree wherever ports are
//! free; *sequential* holds chunk `c + 1` back until chunk `c` has settled
//! group-wide, so the train degenerates to back-to-back one-shot
//! multicasts. Both run the same `(time, band, seq)` tie-break and the same
//! one-port occupancy, and per-chunk NACK/repair rides the PR 8 fault
//! bands, so a lost chunk degrades only itself.
//!
//! The sweep holds the offered request vector fixed per chunk count (same
//! arrivals, same groups, same loss draws) and varies only the release
//! discipline. Expected shape — and the pinned acceptance claim — is that
//! pipelining strictly wins steady-state throughput once the train is long
//! enough to overlap (≥ 4 chunks), lossless and at 5% injected loss alike:
//! a sequential train serializes `chunks` full settle rounds on the
//! session's critical path, while the pipelined train hides all but the
//! last round behind the release schedule.

use crate::table::Table;
use hnow_core::RepairPlacement;
use hnow_model::NetParams;
use hnow_sim::{LossProfile, RunConfig, TrafficEngine};
use hnow_workload::traffic::NodePool;
use hnow_workload::{
    default_message_size, two_class_table, GroupSizeDist, StreamPattern, TrafficPattern,
};
use serde::Serialize;

/// Release disciplines swept by the study.
pub const MODES: [&str; 2] = ["pipelined", "sequential"];

/// Configuration of the streaming study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamingStudyConfig {
    /// Fast-class and slow-class node counts of the pool.
    pub pool_counts: [usize; 2],
    /// Sessions offered per point (every point of one chunk count serves
    /// the same arrival vector).
    pub sessions: usize,
    /// Mean inter-arrival gap of the Poisson request stream.
    pub mean_gap: f64,
    /// Destination-group size range (uniform, inclusive).
    pub group: (usize, usize),
    /// Chunk counts swept (1 is the atomic sanity row: the disciplines
    /// coincide byte for byte).
    pub chunk_counts: Vec<u32>,
    /// Release interval between consecutive chunks, in time units.
    pub interval: u64,
    /// Per-chunk playout deadline past each chunk's release.
    pub deadline: Option<u64>,
    /// Base iid loss rates swept (0 is the lossless row).
    pub rates: Vec<f64>,
    /// Repair retransmissions allowed per receiver before giving up.
    pub max_retries: u32,
    /// Base retry backoff in time units.
    pub backoff: u64,
    /// Network latency `L`.
    pub latency: u64,
    /// Seed of the request stream.
    pub seed: u64,
    /// Seed of the keyed loss draws.
    pub fault_seed: u64,
    /// Registry planner serving every point.
    pub planner: String,
}

impl Default for StreamingStudyConfig {
    /// The pinned CI-sized preset: 20 nodes, 80 sessions arriving slowly
    /// enough (mean gap 60) that each session's duration is dominated by
    /// its own critical path rather than pool saturation — under heavy
    /// contention both disciplines drain the same queued work and the
    /// comparison washes out. Chunk trains of 1/2/4/8 are released every 8
    /// ticks, far under one settle round (a legacy receive alone costs
    /// 135), so a sequential train visibly stalls its own tail; the
    /// 600-tick playout deadline is missed only by pathological stalls.
    /// The seeds are part of the preset: the headline
    /// pipelined-vs-sequential strict win is a claim about this exact
    /// request vector and these exact loss draws.
    fn default() -> Self {
        StreamingStudyConfig {
            pool_counts: [12, 8],
            sessions: 80,
            mean_gap: 60.0,
            group: (3, 7),
            chunk_counts: vec![1, 2, 4, 8],
            interval: 8,
            deadline: Some(600),
            rates: vec![0.0, 0.05],
            max_retries: 3,
            backoff: 4,
            latency: 2,
            seed: 29,
            fault_seed: 31,
            planner: "greedy+leaf".to_string(),
        }
    }
}

/// One `(chunks, mode, rate)` outcome on the shared arrival vector.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamingPoint {
    /// Chunks per session at this point.
    pub chunks: u32,
    /// Release discipline (`"pipelined"` or `"sequential"`).
    pub mode: String,
    /// Base iid loss rate of the point.
    pub rate: f64,
    /// Sessions whose every chunk-delivery eventually settled.
    pub completed: usize,
    /// Achieved makespan (last reception over served sessions).
    pub makespan: u64,
    /// Steady-state throughput: completed chunk-deliveries per 1000 ticks
    /// of makespan.
    pub throughput: f64,
    /// Fraction of offered chunks that settled past their playout
    /// deadline.
    pub deadline_miss_rate: f64,
    /// Median inter-chunk completion jitter.
    pub p50_jitter: u64,
    /// 95th-percentile inter-chunk completion jitter.
    pub p95_jitter: u64,
    /// 99th-percentile inter-chunk completion jitter.
    pub p99_jitter: u64,
    /// Total repair retransmissions charged.
    pub repair_sends: u64,
}

/// Runs the sweep: every chunk count × release discipline × loss rate,
/// each chunk count on one arrival vector generated once.
pub fn run(config: &StreamingStudyConfig) -> Vec<StreamingPoint> {
    let pool = NodePool::new(
        two_class_table(),
        default_message_size(),
        &[config.pool_counts[0], config.pool_counts[1]],
    )
    .expect("study pool is non-empty");
    let base = TrafficPattern {
        group_size: GroupSizeDist::Uniform {
            min: config.group.0,
            max: config.group.1,
        },
        ..TrafficPattern::poisson(config.mean_gap, config.group.0)
    };
    let net = NetParams::new(config.latency);

    let mut points = Vec::new();
    for &chunks in &config.chunk_counts {
        for mode in MODES {
            let pattern = StreamPattern {
                base: base.clone(),
                chunks,
                interval: config.interval,
                deadline: config.deadline,
                pipelined: mode == "pipelined",
            };
            let requests = pattern
                .generate(&pool, config.sessions, config.seed)
                .expect("study pattern is valid");
            for &rate in &config.rates {
                let mut run_config = RunConfig::for_planner(&config.planner);
                if rate > 0.0 {
                    run_config = run_config
                        .with_loss(LossProfile {
                            max_retries: config.max_retries,
                            backoff: config.backoff,
                            ..LossProfile::iid(rate, config.fault_seed)
                        })
                        .with_repair(RepairPlacement::SubtreeRoot);
                }
                let engine = TrafficEngine::with_config(&pool, net, &run_config);
                let report = engine.run(&requests).expect("study run succeeds");
                points.push(StreamingPoint {
                    chunks,
                    mode: mode.to_string(),
                    rate,
                    completed: report.completed,
                    makespan: report.makespan,
                    throughput: report.streaming.steady_state_throughput,
                    deadline_miss_rate: report.streaming.deadline_miss_rate,
                    p50_jitter: report.streaming.p50_interchunk_jitter,
                    p95_jitter: report.streaming.p95_interchunk_jitter,
                    p99_jitter: report.streaming.p99_interchunk_jitter,
                    repair_sends: report.reliability.repair_sends,
                });
            }
        }
    }
    points
}

/// Renders the sweep as a table: one row per `(chunks, mode, rate)`.
pub fn table(points: &[StreamingPoint]) -> Table {
    let mut t = Table::new(
        "E14 / streaming: chunk count × release discipline × loss rate on one arrival vector",
        &[
            "chunks",
            "mode",
            "loss rate",
            "completed",
            "makespan",
            "throughput",
            "deadline misses",
            "p50 jitter",
            "p95 jitter",
            "p99 jitter",
            "repairs",
        ],
    );
    for p in points {
        t.push_row(vec![
            u64::from(p.chunks).into(),
            p.mode.clone().into(),
            p.rate.into(),
            (p.completed as u64).into(),
            p.makespan.into(),
            p.throughput.into(),
            p.deadline_miss_rate.into(),
            p.p50_jitter.into(),
            p.p95_jitter.into(),
            p.p99_jitter.into(),
            p.repair_sends.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by<'a>(
        points: &'a [StreamingPoint],
        chunks: u32,
        mode: &str,
        rate: f64,
    ) -> &'a StreamingPoint {
        points
            .iter()
            .find(|p| p.chunks == chunks && p.mode == mode && p.rate == rate)
            .expect("swept point exists")
    }

    #[test]
    fn sweep_covers_the_grid_and_one_chunk_rows_coincide() {
        let config = StreamingStudyConfig::default();
        let points = run(&config);
        assert_eq!(
            points.len(),
            config.chunk_counts.len() * MODES.len() * config.rates.len()
        );
        // At one chunk the disciplines are the same atomic run: every
        // measured quantity agrees exactly.
        for &rate in &config.rates {
            let pipelined = by(&points, 1, "pipelined", rate);
            let sequential = by(&points, 1, "sequential", rate);
            assert_eq!(pipelined.makespan, sequential.makespan, "rate {rate}");
            assert_eq!(pipelined.throughput, sequential.throughput, "rate {rate}");
            assert_eq!(pipelined.completed, sequential.completed, "rate {rate}");
        }
        assert_eq!(table(&points).rows.len(), points.len());
    }

    #[test]
    fn pipelining_strictly_wins_at_four_chunks_and_beyond() {
        // The pinned acceptance claim of the streaming PR: on the preset
        // arrival vector, once the train is long enough to overlap (≥ 4
        // chunks), the pipelined discipline strictly beats the sequential
        // one on steady-state throughput — lossless and at 5% injected
        // loss alike. A sequential train pays `chunks` full settle rounds
        // on its critical path; the pipelined train hides all but the last
        // behind the 16-tick release schedule.
        let config = StreamingStudyConfig::default();
        let points = run(&config);
        for &chunks in config.chunk_counts.iter().filter(|&&c| c >= 4) {
            for &rate in &config.rates {
                let pipelined = by(&points, chunks, "pipelined", rate);
                let sequential = by(&points, chunks, "sequential", rate);
                assert!(
                    pipelined.throughput > sequential.throughput,
                    "chunks {chunks}, rate {rate}: pipelined {} vs sequential {}",
                    pipelined.throughput,
                    sequential.throughput
                );
                assert!(
                    pipelined.makespan < sequential.makespan,
                    "chunks {chunks}, rate {rate}: pipelined makespan {} vs sequential {}",
                    pipelined.makespan,
                    sequential.makespan
                );
            }
        }
    }

    #[test]
    fn lossy_streaming_repairs_per_chunk() {
        // Under injected loss the chunked rows must actually exercise the
        // per-chunk repair path, and losing chunks costs throughput
        // relative to the lossless row of the same discipline.
        let config = StreamingStudyConfig::default();
        let points = run(&config);
        for mode in MODES {
            let lossy = by(&points, 8, mode, 0.05);
            let clean = by(&points, 8, mode, 0.0);
            assert!(lossy.repair_sends > 0, "{mode}: 5% loss must repair");
            assert_eq!(clean.repair_sends, 0, "{mode}: lossless run repaired");
            assert!(
                lossy.makespan >= clean.makespan,
                "{mode}: repairs cannot shorten the run"
            );
        }
    }

    #[test]
    fn trace_backed_chunk_trains_release_on_schedule_and_share_ports_cleanly() {
        // The study's headline point (8-chunk pipelined train at 5% loss),
        // re-verified from the kernel's event stream: every session opens
        // once and releases exactly `chunks - 1` follow-up chunks, send
        // ports open and close in pairs, and the full stream — pipelined
        // overlaps plus band-2 repairs — passes the kernel invariant
        // checker (one-port, FIFO, bands, causality).
        use hnow_telemetry::{check_invariants, MemorySink, TelemetryConfig, TraceEventKind};
        use std::sync::Arc;
        let config = StreamingStudyConfig::default();
        let pool = NodePool::new(
            two_class_table(),
            default_message_size(),
            &[config.pool_counts[0], config.pool_counts[1]],
        )
        .unwrap();
        let chunks = 8;
        let pattern = StreamPattern {
            base: TrafficPattern {
                group_size: GroupSizeDist::Uniform {
                    min: config.group.0,
                    max: config.group.1,
                },
                ..TrafficPattern::poisson(config.mean_gap, config.group.0)
            },
            chunks,
            interval: config.interval,
            deadline: config.deadline,
            pipelined: true,
        };
        let requests = pattern
            .generate(&pool, config.sessions, config.seed)
            .unwrap();
        let sink = Arc::new(MemorySink::new());
        let run_config = RunConfig::for_planner(&config.planner)
            .with_loss(LossProfile {
                max_retries: config.max_retries,
                backoff: config.backoff,
                ..LossProfile::iid(0.05, config.fault_seed)
            })
            .with_repair(RepairPlacement::SubtreeRoot)
            .telemetry(TelemetryConfig::new().with_sink(sink.clone()));
        let report = TrafficEngine::with_config(&pool, NetParams::new(config.latency), &run_config)
            .run(&requests)
            .unwrap();
        let events = sink.take();
        check_invariants(&events).unwrap();
        let count = |kind: TraceEventKind| events.iter().filter(|ev| ev.kind == kind).count();
        assert_eq!(count(TraceEventKind::SessionOpen), config.sessions);
        assert_eq!(
            count(TraceEventKind::ChunkRelease),
            config.sessions * (chunks as usize - 1),
            "a pipelined train releases every follow-up chunk"
        );
        assert_eq!(
            count(TraceEventKind::SendStart),
            count(TraceEventKind::SendFinish)
        );
        assert!(count(TraceEventKind::Repair) > 0, "5% loss must repair");
        assert_eq!(report.streaming.streaming_sessions, config.sessions);
    }
}
