//! Experiment E10 — multicast as a service: throughput and latency of the
//! traffic engine under increasing offered load.
//!
//! The paper evaluates planners one multicast at a time; the ROADMAP's
//! north star is a *service* under sustained session traffic. This study
//! offers the same seeded Poisson session stream to several planners at a
//! range of offered loads (decreasing mean inter-arrival gaps) over one
//! shared two-class cluster, and reports, per (load, planner):
//! throughput, p50/p99 reception latency, mean queue delay, and the DP
//! cache's hit rate. Expected shape: at low load every planner matches its
//! analytic single-shot times (queue delay ≈ 0); as load rises, queueing
//! dominates and the heterogeneity-aware planners sustain materially more
//! throughput before saturating — the single-shot quality gap compounds
//! under contention, because slow nodes kept off critical paths are also
//! kept available for the *next* session.

use crate::table::Table;
use hnow_model::NetParams;
use hnow_sim::sessions::{TrafficEngine, TrafficReport};
use hnow_sim::RunConfig;
use hnow_workload::traffic::{NodePool, TrafficPattern};
use hnow_workload::{default_message_size, two_class_table};
use serde::Serialize;

/// Registry names of the planners compared by default. The DP is included —
/// the default cluster has two classes, and the canonically-keyed cache
/// makes its per-session cost a table lookup.
pub const DEFAULT_PLANNERS: [&str; 3] = ["greedy+leaf", "dp-optimal", "fnf"];

/// Configuration of the traffic study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficStudyConfig {
    /// Fast-class and slow-class node counts of the shared cluster.
    pub pool_counts: [usize; 2],
    /// Sessions offered at every load point.
    pub sessions: usize,
    /// Destination-group size of every session.
    pub group_size: usize,
    /// Mean inter-arrival gaps to sweep, largest (lightest load) first.
    pub mean_gaps: Vec<f64>,
    /// Network latency `L`.
    pub latency: u64,
    /// Seed of the session streams (one stream per load point, shared by
    /// all planners so they face identical traffic).
    pub seed: u64,
}

impl Default for TrafficStudyConfig {
    /// A CI-sized study: 24 nodes, 150 sessions per point, 4 load points.
    fn default() -> Self {
        TrafficStudyConfig {
            pool_counts: [16, 8],
            sessions: 150,
            group_size: 6,
            mean_gaps: vec![200.0, 60.0, 20.0, 5.0],
            latency: 2,
            seed: 0x7AFF1C,
        }
    }
}

/// One (offered load, planner) measurement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficPoint {
    /// Mean inter-arrival gap of the offered stream (smaller = heavier).
    pub mean_gap: f64,
    /// Planner name.
    pub planner: String,
    /// Completed sessions per 1000 time units.
    pub throughput_per_kilotick: f64,
    /// Median reception latency.
    pub p50_latency: u64,
    /// 99th-percentile reception latency.
    pub p99_latency: u64,
    /// Mean time sessions queued before their source started serving them.
    pub mean_queue_delay: f64,
    /// DP-cache hit rate of the planning phase (1.0 when the planner never
    /// consults the cache after its first table build; 0.0 for non-DP
    /// planners, which never look up).
    pub cache_hit_rate: f64,
    /// Mean per-node utilization.
    pub mean_utilization: f64,
}

/// Runs the study: one engine run per (load point, planner).
pub fn run(config: &TrafficStudyConfig) -> Vec<TrafficPoint> {
    let pool = NodePool::new(
        two_class_table(),
        default_message_size(),
        &[config.pool_counts[0], config.pool_counts[1]],
    )
    .expect("study pool is non-empty");
    let net = NetParams::new(config.latency);
    let mut points = Vec::new();
    for &mean_gap in &config.mean_gaps {
        let pattern = TrafficPattern::poisson(mean_gap, config.group_size);
        let requests = pattern
            .generate(&pool, config.sessions, config.seed)
            .expect("study pattern is valid");
        for planner in DEFAULT_PLANNERS {
            let engine = TrafficEngine::with_config(&pool, net, &RunConfig::for_planner(planner));
            let report = engine.run(&requests).expect("study sessions plan cleanly");
            points.push(point_from(mean_gap, planner, &report));
        }
    }
    points
}

fn point_from(mean_gap: f64, planner: &str, report: &TrafficReport) -> TrafficPoint {
    TrafficPoint {
        mean_gap,
        planner: planner.to_string(),
        throughput_per_kilotick: report.throughput_per_kilotick,
        p50_latency: report.p50_reception_latency,
        p99_latency: report.p99_reception_latency,
        mean_queue_delay: report.mean_queue_delay,
        cache_hit_rate: if report.cache.lookups == 0 {
            0.0
        } else {
            report.cache.hits as f64 / report.cache.lookups as f64
        },
        mean_utilization: report.mean_node_utilization,
    }
}

/// Renders the study as a table: one row per (load, planner).
pub fn table(points: &[TrafficPoint]) -> Table {
    let mut t = Table::new(
        "E10 / traffic engine: throughput vs offered load",
        &[
            "mean gap",
            "planner",
            "throughput/kt",
            "p50 latency",
            "p99 latency",
            "queue delay",
            "cache hit rate",
            "utilization",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.mean_gap.into(),
            p.planner.clone().into(),
            p.throughput_per_kilotick.into(),
            p.p50_latency.into(),
            p.p99_latency.into(),
            p.mean_queue_delay.into(),
            p.cache_hit_rate.into(),
            p.mean_utilization.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TrafficStudyConfig {
        TrafficStudyConfig {
            pool_counts: [6, 3],
            sessions: 30,
            group_size: 4,
            mean_gaps: vec![500.0, 5.0],
            ..TrafficStudyConfig::default()
        }
    }

    #[test]
    fn study_produces_one_point_per_load_and_planner() {
        let points = run(&tiny_config());
        assert_eq!(points.len(), 2 * DEFAULT_PLANNERS.len());
        for p in &points {
            assert!(
                p.throughput_per_kilotick > 0.0,
                "{}: no throughput",
                p.planner
            );
            assert!(p.p50_latency <= p.p99_latency);
        }
        let t = table(&points);
        assert!(t.to_markdown().contains("dp-optimal"));
    }

    #[test]
    fn heavier_load_increases_queueing() {
        let points = run(&tiny_config());
        for planner in DEFAULT_PLANNERS {
            let light = points
                .iter()
                .find(|p| p.planner == planner && p.mean_gap == 500.0)
                .unwrap();
            let heavy = points
                .iter()
                .find(|p| p.planner == planner && p.mean_gap == 5.0)
                .unwrap();
            assert!(
                heavy.mean_queue_delay >= light.mean_queue_delay,
                "{planner}: queueing should not shrink under heavier load"
            );
            assert!(
                heavy.p99_latency >= light.p99_latency,
                "{planner}: tail latency should not shrink under heavier load"
            );
        }
    }

    #[test]
    fn dp_planner_reuses_one_cached_table() {
        let points = run(&tiny_config());
        for p in points.iter().filter(|p| p.planner == "dp-optimal") {
            // The first few sessions may widen the shared table (one miss
            // per element-wise-larger shape); after that everything hits.
            assert!(
                p.cache_hit_rate > 0.75,
                "expected near-total sharing, got {}",
                p.cache_hit_rate
            );
        }
    }
}
