//! Experiment E13 — reliable multicast under injected loss: a sweep of
//! loss rate × repairer placement over one offered request vector.
//!
//! The fault model (`hnow-sim::faults`) loses deliveries with a seeded
//! keyed probability, layers Gilbert-style burst windows keyed by
//! `(session, sender, time bucket)` on top, and bounds recovery with both
//! a retry budget and a repair deadline. The repair protocol NACKs each
//! missed delivery to the session's designated repairer, and the
//! [`RepairPlacement`] policy decides who that is. The sweep holds the
//! request vector and the loss draws fixed and varies only the placement,
//! so the comparison is a claim about *where repairs come from*, not about
//! luck. Two mechanisms separate the placements: every repair funneled
//! through the source queues on the source's one port behind its original
//! sends (and, in a burst window keyed by that one sender, keeps getting
//! lost and re-charged), inflating completion times; and the repairs stuck
//! deepest in that queue blow the recovery deadline and are shed as
//! residual loss, while subtree-local repairers drain their smaller queues
//! within the bound. Expected shape — and the pinned acceptance claim — is
//! that `subtree-root` strictly beats `source-only` on both achieved
//! makespan and residual loss once the loss rate is non-trivial (≥ 5%).

use crate::table::Table;
use hnow_core::RepairPlacement;
use hnow_model::NetParams;
use hnow_sim::{LossProfile, RunConfig, TrafficEngine};
use hnow_workload::traffic::NodePool;
use hnow_workload::{
    default_message_size, two_class_table, GroupSizeDist, LossyPattern, TrafficPattern,
};
use serde::Serialize;

/// Repairer placements swept by the study (registry names; `gateway` is a
/// sharded-cluster policy and does not apply to the flat engine).
pub const PLACEMENTS: [&str; 3] = ["source-only", "subtree-root", "fastest-in-subtree"];

/// Configuration of the reliability study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReliabilityStudyConfig {
    /// Fast-class and slow-class node counts of the pool.
    pub pool_counts: [usize; 2],
    /// Sessions offered per point (every point serves the same vector).
    pub sessions: usize,
    /// Mean inter-arrival gap of the Poisson request stream.
    pub mean_gap: f64,
    /// Destination-group size range (uniform, inclusive).
    pub group: (usize, usize),
    /// Base iid loss rates swept (0 is the lossless sanity row).
    pub rates: Vec<f64>,
    /// Probability that a `(session, sender, bucket)` window bursts; burst
    /// windows are disabled on the rate-0 row so it stays lossless.
    pub burst_frequency: f64,
    /// Loss probability inside a burst window.
    pub burst_rate: f64,
    /// Burst window width in time units.
    pub burst_bucket: u64,
    /// Repair retransmissions allowed per receiver before giving up.
    pub max_retries: u32,
    /// Base retry backoff in time units.
    pub backoff: u64,
    /// Recovery-liveness bound: repairs still pending this long after the
    /// first miss are given up.
    pub repair_deadline: Option<u64>,
    /// Network latency `L`.
    pub latency: u64,
    /// Seed of the request stream.
    pub seed: u64,
    /// Seed of the keyed loss draws.
    pub fault_seed: u64,
    /// Registry planner serving every point.
    pub planner: String,
}

impl Default for ReliabilityStudyConfig {
    /// The pinned CI-sized preset: 40 nodes, 240 sessions offered fast
    /// enough (mean gap 6) that the pool runs saturated and repair traffic
    /// competes with scheduled sends for port time — the regime where
    /// funneling every retransmission through the source visibly stretches
    /// completions. Burst windows are wide enough (96 ticks vs a backoff-4
    /// retry envelope of ≈ 4+8+16+jitter) that a retry usually redraws
    /// inside the window that lost the original, keeping repair volume
    /// high. The 9000-tick repair deadline sits near the p99 of the
    /// subtree placements' recovery delays, so it sheds mostly the
    /// *source-only* queue tail. The seeds are part of the preset: the
    /// headline strict-win comparison is a claim about this exact request
    /// vector and these exact loss draws.
    fn default() -> Self {
        ReliabilityStudyConfig {
            pool_counts: [24, 16],
            sessions: 240,
            mean_gap: 6.0,
            group: (4, 10),
            rates: vec![0.0, 0.02, 0.05, 0.10],
            burst_frequency: 0.35,
            burst_rate: 0.85,
            burst_bucket: 96,
            max_retries: 3,
            backoff: 4,
            repair_deadline: Some(9000),
            latency: 2,
            seed: 17,
            fault_seed: 23,
            planner: "greedy+leaf".to_string(),
        }
    }
}

/// One `(loss rate, placement)` outcome on the shared request vector.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReliabilityPoint {
    /// Base iid loss rate of the point.
    pub rate: f64,
    /// Repairer placement (registry name).
    pub placement: String,
    /// Sessions whose every member was eventually reached.
    pub completed: usize,
    /// Achieved makespan (last completion over served sessions).
    pub makespan: u64,
    /// Per-member deliveries achieved / offered.
    pub delivered_fraction: f64,
    /// Per-member deliveries still missing after bounded repair.
    pub residual_loss: f64,
    /// Served sessions that completed partially (≥ 1 failed member).
    pub degraded: usize,
    /// Total NACKs raised.
    pub nacks: u64,
    /// Total repair retransmissions charged.
    pub repair_sends: u64,
    /// 99th-percentile first-miss → recovery delay.
    pub p99_repair_delay: u64,
}

/// Runs the sweep: every loss rate × every flat placement, all on one
/// request vector generated once from the base pattern.
pub fn run(config: &ReliabilityStudyConfig) -> Vec<ReliabilityPoint> {
    let pool = NodePool::new(
        two_class_table(),
        default_message_size(),
        &[config.pool_counts[0], config.pool_counts[1]],
    )
    .expect("study pool is non-empty");
    let base = TrafficPattern {
        group_size: GroupSizeDist::Uniform {
            min: config.group.0,
            max: config.group.1,
        },
        ..TrafficPattern::poisson(config.mean_gap, config.group.0)
    };
    let requests = base
        .generate(&pool, config.sessions, config.seed)
        .expect("study pattern is valid");
    let net = NetParams::new(config.latency);

    let mut points = Vec::new();
    for &rate in &config.rates {
        // The scenario value the workload crate ships around: the offered
        // pattern plus the loss envelope, lifted into the simulator's
        // profile by the `From` conversion.
        let scenario = LossyPattern {
            rate,
            per_class: None,
            burst_frequency: if rate > 0.0 {
                config.burst_frequency
            } else {
                0.0
            },
            burst_rate: config.burst_rate,
            burst_bucket: config.burst_bucket,
            max_retries: config.max_retries,
            backoff: config.backoff,
            repair_deadline: config.repair_deadline,
            fault_seed: config.fault_seed,
            base: base.clone(),
        };
        for placement in PLACEMENTS {
            let traffic = RunConfig {
                planner: config.planner.clone(),
                loss: Some(LossProfile::from(&scenario)),
                repair: RepairPlacement::from_name(placement).expect("swept placement exists"),
                ..RunConfig::default()
            };
            let engine = TrafficEngine::with_config(&pool, net, &traffic);
            let report = engine.run(&requests).expect("study run succeeds");
            points.push(ReliabilityPoint {
                rate,
                placement: placement.to_string(),
                completed: report.completed,
                makespan: report.makespan,
                delivered_fraction: report.reliability.delivered_fraction,
                residual_loss: report.reliability.residual_loss,
                degraded: report.reliability.degraded_sessions,
                nacks: report.reliability.nacks,
                repair_sends: report.reliability.repair_sends,
                p99_repair_delay: report.reliability.p99_repair_delay,
            });
        }
    }
    points
}

/// Renders the sweep as a table: one row per `(rate, placement)`.
pub fn table(points: &[ReliabilityPoint]) -> Table {
    let mut t = Table::new(
        "E13 / reliability: loss rate × repairer placement on one request vector",
        &[
            "loss rate",
            "placement",
            "completed",
            "makespan",
            "delivered",
            "residual",
            "degraded",
            "nacks",
            "repairs",
            "p99 repair delay",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.rate.into(),
            p.placement.clone().into(),
            (p.completed as u64).into(),
            p.makespan.into(),
            p.delivered_fraction.into(),
            p.residual_loss.into(),
            (p.degraded as u64).into(),
            p.nacks.into(),
            p.repair_sends.into(),
            p.p99_repair_delay.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by<'a>(points: &'a [ReliabilityPoint], rate: f64, placement: &str) -> &'a ReliabilityPoint {
        points
            .iter()
            .find(|p| p.rate == rate && p.placement == placement)
            .expect("swept point exists")
    }

    #[test]
    fn sweep_covers_the_grid_and_the_lossless_row_is_exact() {
        let config = ReliabilityStudyConfig::default();
        let points = run(&config);
        assert_eq!(points.len(), config.rates.len() * PLACEMENTS.len());
        for placement in PLACEMENTS {
            let p = by(&points, 0.0, placement);
            assert_eq!(p.delivered_fraction, 1.0, "{placement}");
            assert_eq!(p.residual_loss, 0.0, "{placement}");
            assert_eq!(p.nacks, 0, "{placement}");
            assert_eq!(p.degraded, 0, "{placement}");
        }
        // Placement is moot without loss: the three rate-0 rows agree on
        // every executed quantity.
        let anchor = by(&points, 0.0, "source-only");
        for placement in &PLACEMENTS[1..] {
            let p = by(&points, 0.0, placement);
            assert_eq!(p.makespan, anchor.makespan, "{placement}");
            assert_eq!(p.completed, anchor.completed, "{placement}");
        }
        assert_eq!(table(&points).rows.len(), points.len());
    }

    #[test]
    fn subtree_root_strictly_beats_source_only_under_real_loss() {
        // The pinned acceptance claim of the reliability PR: at ≥ 5% loss
        // on the preset vector, moving repairs off the source wins *both*
        // axes — the source's one port serializes every retransmission
        // behind its scheduled sends (stretching completions), and the
        // repairs queued deepest blow the recovery deadline and turn into
        // residual loss instead of late deliveries.
        let config = ReliabilityStudyConfig::default();
        let points = run(&config);
        for &rate in config.rates.iter().filter(|&&r| r >= 0.05) {
            let source = by(&points, rate, "source-only");
            let subtree = by(&points, rate, "subtree-root");
            assert!(
                subtree.makespan < source.makespan,
                "rate {rate}: subtree-root makespan {} vs source-only {}",
                subtree.makespan,
                source.makespan
            );
            assert!(
                subtree.residual_loss < source.residual_loss,
                "rate {rate}: subtree-root residual {} vs source-only {}",
                subtree.residual_loss,
                source.residual_loss
            );
            assert!(source.nacks > 0 && subtree.nacks > 0);
        }
    }

    #[test]
    fn repair_traffic_grows_with_the_loss_rate() {
        let config = ReliabilityStudyConfig::default();
        let points = run(&config);
        for placement in PLACEMENTS {
            let low = by(&points, 0.02, placement);
            let high = by(&points, 0.10, placement);
            assert!(
                high.repair_sends > low.repair_sends,
                "{placement}: {} repairs at 10% vs {} at 2%",
                high.repair_sends,
                low.repair_sends
            );
            assert!(
                high.delivered_fraction > 0.9,
                "{placement}: bounded repair still delivers most traffic, got {}",
                high.delivered_fraction
            );
        }
    }

    #[test]
    fn trace_backed_counts_reconcile_with_the_lossy_report() {
        // The study's aggregate NACK/repair counters, re-derived from the
        // kernel's event stream: one `Nack` event per NACK raised, one
        // `Repair` event per retransmission charged, one `SessionOpen` per
        // offered session — and the stream passes the kernel invariant
        // checker (one-port, FIFO, bands, causality) on the preset's
        // bursty 5% point.
        use hnow_telemetry::{check_invariants, MemorySink, TelemetryConfig, TraceEventKind};
        use std::sync::Arc;
        let config = ReliabilityStudyConfig::default();
        let pool = NodePool::new(
            two_class_table(),
            default_message_size(),
            &[config.pool_counts[0], config.pool_counts[1]],
        )
        .unwrap();
        let base = TrafficPattern {
            group_size: GroupSizeDist::Uniform {
                min: config.group.0,
                max: config.group.1,
            },
            ..TrafficPattern::poisson(config.mean_gap, config.group.0)
        };
        let requests = base.generate(&pool, config.sessions, config.seed).unwrap();
        let scenario = LossyPattern {
            rate: 0.05,
            per_class: None,
            burst_frequency: config.burst_frequency,
            burst_rate: config.burst_rate,
            burst_bucket: config.burst_bucket,
            max_retries: config.max_retries,
            backoff: config.backoff,
            repair_deadline: config.repair_deadline,
            fault_seed: config.fault_seed,
            base: base.clone(),
        };
        let sink = Arc::new(MemorySink::new());
        let traffic = RunConfig {
            planner: config.planner.clone(),
            loss: Some(LossProfile::from(&scenario)),
            repair: RepairPlacement::SubtreeRoot,
            ..RunConfig::default()
        }
        .telemetry(TelemetryConfig::new().with_sink(sink.clone()));
        let report = TrafficEngine::with_config(&pool, NetParams::new(config.latency), &traffic)
            .run(&requests)
            .unwrap();
        let events = sink.take();
        check_invariants(&events).unwrap();
        let count = |kind: TraceEventKind| events.iter().filter(|ev| ev.kind == kind).count();
        assert_eq!(count(TraceEventKind::SessionOpen), config.sessions);
        assert_eq!(count(TraceEventKind::Nack) as u64, report.reliability.nacks);
        assert_eq!(
            count(TraceEventKind::Repair) as u64,
            report.reliability.repair_sends
        );
        assert!(report.reliability.nacks > 0, "5% bursty loss must NACK");
    }
}
