//! Experiment E12 — control-plane policy sweep: goodput and tail queue
//! delay of the online service loop versus the uncontrolled batch replayer
//! on identical request vectors.
//!
//! The workload is the control plane's adversarial regime
//! ([`HotSpotPattern`]): bursty flash crowds, half the sessions impatient,
//! and a hot shard that rotates faster than any static partition can
//! suit. Every point serves the *same* request vector; only the control
//! configuration varies — no control (the batch path), admission with
//! each gateway policy, and admission plus the shard rebalancer. Expected
//! shape: shortest-planned-`R_T`-first admission drains flash crowds in
//! an order that lets more impatient sessions start before their patience
//! expires (higher goodput), and shedding plus reordering pulls the tail
//! of the queue-delay distribution in (lower p99 over completed
//! sessions); the non-default gateway policies shift cross-shard work off
//! busy gateways.

use crate::table::Table;
use hnow_model::NetParams;
use hnow_sim::cluster::{ControlConfig, RebalanceConfig, ShardedCluster};
use hnow_sim::RunConfig;
use hnow_workload::traffic::NodePool;
use hnow_workload::{
    default_message_size, two_class_table, ChurnProfile, HotSpotPattern, SessionRequest, ShardMap,
};
use serde::Serialize;

/// Gateway policies swept by the study (registry names).
pub const POLICIES: [&str; 3] = ["fastest-member", "load-aware", "stitched-rt-min"];

/// Configuration of the control-plane study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ControlStudyConfig {
    /// Fast-class and slow-class node counts of the pool.
    pub pool_counts: [usize; 2],
    /// Shard count of the partition.
    pub shards: usize,
    /// Sessions offered per point (every point serves the same vector).
    pub sessions: usize,
    /// Sessions per flash crowd.
    pub burst: usize,
    /// Ticks between flash crowds.
    pub period: u64,
    /// Destination-group size range (uniform, inclusive).
    pub group: (usize, usize),
    /// Sessions per hot-spot phase (the hot shard rotates every phase).
    pub phase_sessions: usize,
    /// Fraction of sessions pinned inside the current hot shard.
    pub hot_fraction: f64,
    /// Fraction of sessions with finite patience.
    pub impatient_fraction: f64,
    /// Mean patience of impatient sessions.
    pub mean_patience: f64,
    /// Network latency `L`.
    pub latency: u64,
    /// Seed of the request stream.
    pub seed: u64,
    /// Registry planner serving every configuration.
    pub planner: String,
    /// Sessions per control epoch.
    pub epoch: usize,
    /// Rebalancer tuning of the admission+rebalance point.
    pub rebalance: RebalanceConfig,
}

impl Default for ControlStudyConfig {
    /// The pinned CI-sized preset: 40 nodes, 4 shards, 400 sessions in
    /// flash crowds of 12 every 1500 ticks with 50% churn, admitted in
    /// epochs of one crowd. The load is calibrated so hot-shard queues
    /// mostly drain between crowds — the regime where per-crowd
    /// shortest-first admission converts near-miss impatient sessions
    /// into completions instead of merely re-labelling a hopeless
    /// backlog. The seed is part of the preset: the sweep's headline
    /// comparison is a claim about this exact request vector.
    fn default() -> Self {
        ControlStudyConfig {
            pool_counts: [24, 16],
            shards: 4,
            sessions: 400,
            burst: 12,
            period: 1500,
            group: (2, 6),
            phase_sessions: 64,
            hot_fraction: 0.7,
            impatient_fraction: 0.5,
            mean_patience: 150.0,
            latency: 2,
            seed: 13,
            planner: "greedy+leaf".to_string(),
            epoch: 12,
            rebalance: RebalanceConfig {
                enter_gap: 90.0,
                exit_gap: 30.0,
                max_moves: 1,
                min_shard_nodes: 2,
            },
        }
    }
}

/// One control configuration's outcome on the shared request vector.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ControlPoint {
    /// Configuration label (`no-control`, `admission/<policy>`,
    /// `admission+rebalance/<policy>`).
    pub label: String,
    /// Sessions fully delivered (the goodput).
    pub completed: usize,
    /// Sessions lost to churn (shed ones included).
    pub abandoned: usize,
    /// Sessions shed by the admission controller (0 without control).
    pub shed: usize,
    /// Admitted sessions executed out of submission order.
    pub reordered: usize,
    /// Node migrations committed by the rebalancer.
    pub migrations: usize,
    /// Completed sessions per kilotick.
    pub throughput: f64,
    /// 95th-percentile reception latency over completed sessions.
    pub p95_reception: u64,
    /// 99th-percentile reception latency over completed sessions.
    pub p99_reception: u64,
    /// Mean queue delay over completed sessions.
    pub mean_queue_delay: f64,
    /// 99th-percentile queue delay over completed sessions.
    pub p99_queue_delay: u64,
}

/// Serves the hot-spot request vector under one cluster configuration.
fn measure(
    label: &str,
    pool: &NodePool,
    net: NetParams,
    config: RunConfig,
    requests: &[SessionRequest],
) -> ControlPoint {
    let cluster = ShardedCluster::with_config(pool, net, &config).expect("valid study cluster");
    let report = cluster.run(requests).expect("study run succeeds");
    let mut delays: Vec<u64> = report
        .per_session
        .iter()
        .filter(|s| !s.record.abandoned)
        .map(|s| s.record.queue_delay)
        .collect();
    delays.sort_unstable();
    let p99_queue_delay = if delays.is_empty() {
        0
    } else {
        delays[(delays.len() - 1) * 99 / 100]
    };
    let (shed, reordered, migrations) = report
        .control
        .as_ref()
        .map(|c| (c.shed, c.reordered, c.migrations.len()))
        .unwrap_or((0, 0, 0));
    ControlPoint {
        label: label.to_string(),
        completed: report.total.completed,
        abandoned: report.total.abandoned,
        shed,
        reordered,
        migrations,
        throughput: report.total.throughput_per_kilotick,
        p95_reception: report.total.p95_reception_latency,
        p99_reception: report.total.p99_reception_latency,
        mean_queue_delay: report.total.mean_queue_delay,
        p99_queue_delay,
    }
}

/// Runs the sweep: no control, admission under each gateway policy, then
/// admission plus rebalancing — all on one request vector.
pub fn run(config: &ControlStudyConfig) -> Vec<ControlPoint> {
    let pool = NodePool::new(
        two_class_table(),
        default_message_size(),
        &[config.pool_counts[0], config.pool_counts[1]],
    )
    .expect("study pool is non-empty");
    let map = ShardMap::partition(&pool, config.shards).expect("valid shard count");
    let mut pattern = HotSpotPattern::bursty(
        config.burst,
        config.period,
        config.group.0,
        config.group.1,
        config.phase_sessions,
        config.hot_fraction,
    );
    pattern.base.churn = Some(ChurnProfile {
        impatient_fraction: config.impatient_fraction,
        mean_patience: config.mean_patience,
    });
    let requests = pattern
        .generate(&map, config.sessions, config.seed)
        .expect("study pattern is valid");
    let net = NetParams::new(config.latency);
    let base = RunConfig::for_planner(&config.planner).sharded(config.shards);

    let mut points = vec![measure("no-control", &pool, net, base.clone(), &requests)];
    for policy in POLICIES {
        let controlled = base.clone().with_control(ControlConfig {
            epoch: config.epoch,
            admission: true,
            policy: policy.to_string(),
            rebalance: None,
        });
        points.push(measure(
            &format!("admission/{policy}"),
            &pool,
            net,
            controlled,
            &requests,
        ));
    }
    let full = base.clone().with_control(ControlConfig {
        epoch: config.epoch,
        admission: true,
        policy: "load-aware".to_string(),
        rebalance: Some(config.rebalance.clone()),
    });
    points.push(measure(
        "admission+rebalance/load-aware",
        &pool,
        net,
        full,
        &requests,
    ));
    points
}

/// Renders the sweep as a table: one row per configuration.
pub fn table(points: &[ControlPoint]) -> Table {
    let mut t = Table::new(
        "E12 / control plane: goodput and tail queue delay per policy",
        &[
            "config",
            "completed",
            "abandoned",
            "shed",
            "reordered",
            "migrations",
            "tput/kt",
            "p95 R_T",
            "p99 R_T",
            "mean qdelay",
            "p99 qdelay",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.label.clone().into(),
            (p.completed as u64).into(),
            (p.abandoned as u64).into(),
            (p.shed as u64).into(),
            (p.reordered as u64).into(),
            (p.migrations as u64).into(),
            p.throughput.into(),
            p.p95_reception.into(),
            p.p99_reception.into(),
            p.mean_queue_delay.into(),
            p.p99_queue_delay.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_configuration() {
        let points = run(&ControlStudyConfig::default());
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "no-control",
                "admission/fastest-member",
                "admission/load-aware",
                "admission/stitched-rt-min",
                "admission+rebalance/load-aware",
            ]
        );
        for p in &points {
            assert_eq!(
                p.completed + p.abandoned,
                ControlStudyConfig::default().sessions,
                "{}: every session accounted",
                p.label
            );
        }
        assert_eq!(points[0].shed, 0, "no control, nothing shed");
        assert_eq!(points[0].reordered, 0);
        let t = table(&points);
        assert!(t.to_markdown().contains("p99 qdelay"));
    }

    #[test]
    fn admission_and_rebalancing_strictly_beat_no_control() {
        // The PR's acceptance claim: on the shifting hot-spot preset the
        // full control plane wins *both* axes against the batch replayer
        // on an identical request vector.
        let points = run(&ControlStudyConfig::default());
        let baseline = &points[0];
        let controlled = points
            .iter()
            .find(|p| p.label == "admission+rebalance/load-aware")
            .unwrap();
        assert!(
            controlled.completed > baseline.completed,
            "goodput: controlled {} vs baseline {}",
            controlled.completed,
            baseline.completed
        );
        assert!(
            controlled.p99_queue_delay < baseline.p99_queue_delay,
            "p99 queue delay: controlled {} vs baseline {}",
            controlled.p99_queue_delay,
            baseline.p99_queue_delay
        );
    }

    #[test]
    fn trace_backed_decisions_cover_every_session_exactly_once() {
        // The full control-plane point of the study, re-verified from the
        // trace stream: the admission controller emits exactly one
        // decision event per offered session, the per-kind counts
        // reconcile with the control report, and the stream — admission
        // decisions plus per-epoch kernel events under live migrations —
        // passes the kernel invariant checker.
        use hnow_telemetry::{check_invariants, MemorySink, TelemetryConfig, TraceEventKind};
        use std::sync::Arc;
        let config = ControlStudyConfig::default();
        let pool = NodePool::new(
            two_class_table(),
            default_message_size(),
            &[config.pool_counts[0], config.pool_counts[1]],
        )
        .unwrap();
        let map = ShardMap::partition(&pool, config.shards).unwrap();
        let mut pattern = HotSpotPattern::bursty(
            config.burst,
            config.period,
            config.group.0,
            config.group.1,
            config.phase_sessions,
            config.hot_fraction,
        );
        pattern.base.churn = Some(ChurnProfile {
            impatient_fraction: config.impatient_fraction,
            mean_patience: config.mean_patience,
        });
        let requests = pattern
            .generate(&map, config.sessions, config.seed)
            .unwrap();
        let sink = Arc::new(MemorySink::new());
        let run_config = RunConfig::for_planner(&config.planner)
            .sharded(config.shards)
            .with_control(ControlConfig {
                epoch: config.epoch,
                admission: true,
                policy: "load-aware".to_string(),
                rebalance: Some(config.rebalance.clone()),
            })
            .telemetry(TelemetryConfig::new().with_sink(sink.clone()));
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(config.latency), &run_config)
                .unwrap();
        let report = cluster.run(&requests).unwrap();
        let events = sink.take();
        check_invariants(&events).unwrap();
        let control = report.control.as_ref().expect("controlled run");
        let count = |kind: TraceEventKind| events.iter().filter(|ev| ev.kind == kind).count();
        assert_eq!(count(TraceEventKind::Admitted), control.admitted);
        assert_eq!(count(TraceEventKind::Reordered), control.reordered);
        assert_eq!(count(TraceEventKind::Shed), control.shed);
        assert_eq!(
            count(TraceEventKind::Admitted)
                + count(TraceEventKind::Reordered)
                + count(TraceEventKind::Shed),
            config.sessions,
            "one decision event per offered session"
        );
    }
}
