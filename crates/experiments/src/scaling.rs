//! Experiment E2 — running-time scaling of the algorithms.
//!
//! Lemma 1 claims the greedy algorithm runs in `O(n log n)`; Theorem 2
//! claims the dynamic program runs in `O(n^{2k})`. Criterion benches
//! (`bench_greedy_scaling`, `bench_dp_scaling`) measure this precisely; this
//! module provides the same measurements with coarse wall-clock timers so
//! the scaling table can be produced by a plain example binary without the
//! benchmark harness.

use crate::table::Table;
use hnow_core::algorithms::dp::DpTable;
use hnow_core::algorithms::greedy::greedy_schedule;
use hnow_model::{MessageSize, NetParams, TypedMulticast};
use hnow_workload::{two_class_table, RandomClusterConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timing measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingSample {
    /// Algorithm name.
    pub algorithm: String,
    /// Problem size (destinations).
    pub n: usize,
    /// Wall-clock time in microseconds.
    pub micros: u128,
    /// Normalised cost: `micros / (n log2 n)` for greedy, `micros / n²` for
    /// the two-class DP. Flat values across sizes support the claimed
    /// asymptotics.
    pub normalised: f64,
}

/// Times the greedy algorithm on random clusters of the given sizes.
pub fn greedy_scaling(sizes: &[usize], seed: u64) -> Vec<ScalingSample> {
    let net = NetParams::new(2);
    sizes
        .iter()
        .map(|&n| {
            let set = RandomClusterConfig {
                destinations: n,
                ..RandomClusterConfig::default()
            }
            .generate(seed)
            .expect("valid instance");
            let start = Instant::now();
            let tree = greedy_schedule(&set, net);
            let micros = start.elapsed().as_micros().max(1);
            assert!(tree.is_complete());
            let denom = (n.max(2) as f64) * (n.max(2) as f64).log2();
            ScalingSample {
                algorithm: "greedy".to_string(),
                n,
                micros,
                normalised: micros as f64 / denom,
            }
        })
        .collect()
}

/// Times the two-class dynamic program on balanced clusters of the given
/// sizes.
pub fn dp_scaling(sizes: &[usize], message_kib: u64) -> Vec<ScalingSample> {
    let net = NetParams::new(2);
    let table = two_class_table();
    sizes
        .iter()
        .map(|&n| {
            let typed = TypedMulticast::from_classes(
                &table,
                MessageSize::from_kib(message_kib),
                0,
                vec![n / 2, n - n / 2],
            )
            .expect("valid typed instance");
            let start = Instant::now();
            let dp = DpTable::build(&typed, net);
            let micros = start.elapsed().as_micros().max(1);
            assert!(dp.optimum().raw() > 0);
            // Two classes: the table has Θ(n²) states and each state scans
            // O(n²) splits, so the predicted cost is Θ(n⁴); normalising by n²
            // (states) keeps the numbers readable while still exposing
            // super-quadratic growth if the implementation regressed.
            ScalingSample {
                algorithm: "dp (k=2)".to_string(),
                n,
                micros,
                normalised: micros as f64 / (n.max(1) as f64).powi(2),
            }
        })
        .collect()
}

/// Renders scaling samples as a table.
pub fn table(samples: &[ScalingSample]) -> Table {
    let mut t = Table::new(
        "E2 / running-time scaling (coarse wall-clock; see Criterion benches for precise numbers)",
        &["algorithm", "n", "time (µs)", "normalised"],
    );
    for s in samples {
        t.push_row(vec![
            s.algorithm.clone().into(),
            s.n.into(),
            (s.micros as u64).into(),
            s.normalised.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_scaling_runs() {
        let samples = greedy_scaling(&[64, 256, 1024], 3);
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(s.micros >= 1);
            assert!(s.normalised > 0.0);
        }
    }

    #[test]
    fn dp_scaling_runs() {
        let samples = dp_scaling(&[4, 8, 16], 4);
        assert_eq!(samples.len(), 3);
        assert_eq!(table(&samples).rows.len(), 3);
    }
}
