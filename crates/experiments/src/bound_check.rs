//! Experiment E3 — empirical validation of the Theorem 1 bound.
//!
//! Theorem 1: `GREEDY_R < 2·(α_max/α_min)·OPT_R + β`. This experiment draws
//! random instances with receive-send ratios inside the published 1.05–1.85
//! band, computes the exact optimum (branch-and-bound for small instances),
//! and reports the observed ratio `GREEDY_R / OPT_R` alongside the bound.
//! The expected shape: the bound always holds, and the observed ratios are
//! far below it (typically under 1.3), which is the empirical argument the
//! greedy algorithm's practicality rests on.

use crate::table::Table;
use hnow_core::bounds::theorem1_bound;
use hnow_core::planner::{self, PlanRequest};
use hnow_model::models::Instance;
use hnow_workload::RandomClusterConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One measured instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundSample {
    /// Number of destinations.
    pub destinations: usize,
    /// Seed that generated the instance.
    pub seed: u64,
    /// Greedy reception completion time.
    pub greedy: u64,
    /// Leaf-refined greedy completion time.
    pub greedy_refined: u64,
    /// Exact optimal completion time.
    pub optimal: u64,
    /// Whether the optimum was proven (node budget not exhausted).
    pub proven: bool,
    /// `greedy / optimal`.
    pub ratio: f64,
    /// The Theorem 1 right-hand side for this instance.
    pub bound: f64,
    /// Whether `greedy < bound` (Theorem 1) held.
    pub bound_holds: bool,
}

/// Configuration of the bound-validation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundCheckConfig {
    /// Destination counts to sample.
    pub sizes: [usize; 3],
    /// Instances per size.
    pub samples_per_size: usize,
    /// Network latency.
    pub latency: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for BoundCheckConfig {
    fn default() -> Self {
        BoundCheckConfig {
            sizes: [5, 7, 9],
            samples_per_size: 20,
            latency: 2,
            seed: 0xB0B,
        }
    }
}

fn measure(instance: &Instance, destinations: usize, seed: u64) -> BoundSample {
    let request = PlanRequest::new(instance.set.clone(), instance.net)
        .with_node_budget(5_000_000)
        .with_seed(seed);
    let plan_with = |name: &str| {
        planner::find(name)
            .unwrap_or_else(|| panic!("planner {name} is registered"))
            .plan(&request)
            .expect("planning a valid instance succeeds")
    };
    let greedy = plan_with("greedy").timing.reception_completion();
    let refined = plan_with("greedy+leaf").timing.reception_completion();
    let exact = plan_with("branch-bound");
    let optimal = exact.timing.reception_completion();
    let bound = theorem1_bound(&instance.set, optimal);
    BoundSample {
        destinations,
        seed,
        greedy: greedy.raw(),
        greedy_refined: refined.raw(),
        optimal: optimal.raw(),
        proven: exact.proven_optimal,
        ratio: greedy.as_f64() / optimal.as_f64().max(1.0),
        bound,
        bound_holds: greedy.as_f64() < bound,
    }
}

/// Runs the experiment, parallelising over instances.
pub fn run(config: &BoundCheckConfig) -> Vec<BoundSample> {
    let mut jobs = Vec::new();
    for &n in &config.sizes {
        for i in 0..config.samples_per_size {
            jobs.push((n, config.seed ^ ((n as u64) << 32) ^ i as u64));
        }
    }
    jobs.par_iter()
        .map(|&(n, seed)| {
            let cfg = RandomClusterConfig {
                destinations: n,
                min_send: 5,
                max_send: 40,
                min_ratio: 1.05,
                max_ratio: 1.85,
                random_source: true,
            };
            let set = cfg
                .generate(seed)
                .expect("generator produces valid instances");
            let instance = Instance::new(set, hnow_model::NetParams::new(config.latency));
            measure(&instance, n, seed)
        })
        .collect()
}

/// Checks the Figure 1 instance specifically (used by tests and the
/// quickstart example).
pub fn figure1_sample() -> BoundSample {
    let (set, net) = crate::figure1::figure1_instance();
    // Four destinations: the branch-and-bound planner inside `measure`
    // proves the exact optimum well within its budget.
    measure(&Instance::new(set, net), 4, 0)
}

/// Summarises samples into the experiment table (one row per size).
pub fn table(samples: &[BoundSample]) -> Table {
    let mut t = Table::new(
        "E3 / Theorem 1 — greedy vs exact optimum (ratios within the published 1.05–1.85 band)",
        &[
            "destinations",
            "samples",
            "mean ratio",
            "max ratio",
            "mean bound/OPT",
            "violations",
        ],
    );
    let mut sizes: Vec<usize> = samples.iter().map(|s| s.destinations).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for n in sizes {
        let group: Vec<&BoundSample> = samples.iter().filter(|s| s.destinations == n).collect();
        let count = group.len() as f64;
        let mean_ratio = group.iter().map(|s| s.ratio).sum::<f64>() / count;
        let max_ratio = group.iter().map(|s| s.ratio).fold(0.0, f64::max);
        let mean_bound = group
            .iter()
            .map(|s| s.bound / s.optimal.max(1) as f64)
            .sum::<f64>()
            / count;
        let violations = group.iter().filter(|s| !s.bound_holds).count();
        t.push_row(vec![
            n.into(),
            group.len().into(),
            mean_ratio.into(),
            max_ratio.into(),
            mean_bound.into(),
            violations.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_on_a_small_batch() {
        let config = BoundCheckConfig {
            sizes: [4, 5, 6],
            samples_per_size: 4,
            latency: 1,
            seed: 77,
        };
        let samples = run(&config);
        assert_eq!(samples.len(), 12);
        for s in &samples {
            assert!(s.proven, "small instances must be solved exactly");
            assert!(s.bound_holds, "Theorem 1 violated: {s:?}");
            assert!(s.ratio >= 1.0 - 1e-9);
            assert!(s.greedy_refined <= s.greedy);
            assert!(s.optimal <= s.greedy_refined);
        }
    }

    #[test]
    fn figure1_sample_matches_known_values() {
        let s = figure1_sample();
        assert_eq!(s.greedy, 10);
        assert_eq!(s.optimal, 8);
        assert!(s.bound_holds);
    }

    #[test]
    fn table_has_one_row_per_size() {
        let config = BoundCheckConfig {
            sizes: [4, 5, 6],
            samples_per_size: 2,
            latency: 1,
            seed: 3,
        };
        let t = table(&run(&config));
        assert_eq!(t.rows.len(), 3);
    }
}
