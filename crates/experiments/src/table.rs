//! Minimal table type for experiment reports.
//!
//! Every experiment produces one or more [`Table`]s; the examples print them
//! as markdown and EXPERIMENTS.md embeds them directly, so the format is
//! deliberately plain.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Text cell.
    Text(String),
    /// Integer cell.
    Int(u64),
    /// Floating-point cell (rendered with three decimals).
    Float(f64),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Float(v) => write!(f, "{v:.3}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// A simple rectangular table with named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; every row has `columns.len()` entries.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row length must match column count"
        );
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("**{}**\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = format!("{}\n", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("{}\n", cells.join(",")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("demo", &["strategy", "completion", "ratio"]);
        t.push_row(vec!["greedy".into(), 10u64.into(), 1.25f64.into()]);
        t.push_row(vec!["optimal".into(), Cell::Int(8), Cell::Float(1.0)]);
        let md = t.to_markdown();
        assert!(md.contains("**demo**"));
        assert!(md.contains("| greedy | 10 | 1.250 |"));
        assert!(md.contains("|---|---|---|"));
        let csv = t.to_csv();
        assert!(csv.starts_with("strategy,completion,ratio\n"));
        assert!(csv.contains("optimal,8,1.000"));
        assert_eq!(t.to_string(), md);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec![1u64.into()]);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from(3usize), Cell::Int(3));
        assert_eq!(Cell::from("x").to_string(), "x");
        assert_eq!(Cell::from(2.5f64).to_string(), "2.500");
    }
}
