//! Experiments E4 and E5 — the layered-schedule machinery behind Theorem 1.
//!
//! * **E4 (Lemma 2 / Corollary 1):** the greedy schedule attains the minimum
//!   *delivery* completion time over all layered schedules. We verify this
//!   by exhaustively searching the layered schedule class (delivery
//!   objective) on small random instances and comparing with greedy.
//! * **E5 (Lemma 3 / equation 4):** after the power-of-two rounding
//!   construction `S → S'`, greedy attains the minimum delivery completion
//!   time over *all* schedules of `S'`. We verify `GREEDY_D(S') = OPT_D(S')`
//!   with the unrestricted exact search. (The subtree-exchange argument of
//!   Lemma 3 is what makes this equality provable; the experiment checks its
//!   observable consequence.)

use crate::table::Table;
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::algorithms::optimal::{search, Objective, SearchOptions};
use hnow_core::algorithms::transform::power_of_two_rounding;
use hnow_core::schedule::delivery_completion;
use hnow_model::NetParams;
use hnow_workload::RandomClusterConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One verified instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayeredSample {
    /// Number of destinations.
    pub destinations: usize,
    /// Seed.
    pub seed: u64,
    /// Greedy delivery completion time on the original instance.
    pub greedy_delivery: u64,
    /// Minimum delivery completion time over layered schedules (E4).
    pub layered_optimal_delivery: u64,
    /// Greedy delivery completion on the rounded instance `S'`.
    pub rounded_greedy_delivery: u64,
    /// Unrestricted optimal delivery completion on `S'` (E5).
    pub rounded_optimal_delivery: u64,
}

impl LayeredSample {
    /// Lemma 2 / Corollary 1 check.
    pub fn corollary1_holds(&self) -> bool {
        self.greedy_delivery == self.layered_optimal_delivery
    }
    /// Lemma 3 / equation (4) check.
    pub fn equation4_holds(&self) -> bool {
        self.rounded_greedy_delivery == self.rounded_optimal_delivery
    }
}

/// Configuration for the layered-schedule experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayeredConfig {
    /// Destination counts to sample.
    pub sizes: [usize; 2],
    /// Instances per size.
    pub samples_per_size: usize,
    /// Network latency.
    pub latency: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            sizes: [5, 7],
            samples_per_size: 15,
            latency: 1,
            seed: 0x1A7E,
        }
    }
}

/// Runs the experiment.
pub fn run(config: &LayeredConfig) -> Vec<LayeredSample> {
    let mut jobs = Vec::new();
    for &n in &config.sizes {
        for i in 0..config.samples_per_size {
            jobs.push((n, config.seed ^ ((n as u64) << 24) ^ i as u64));
        }
    }
    jobs.par_iter()
        .map(|&(n, seed)| {
            let cfg = RandomClusterConfig {
                destinations: n,
                min_send: 2,
                max_send: 12,
                min_ratio: 1.0,
                max_ratio: 1.8,
                random_source: true,
            };
            let set = cfg.generate(seed).expect("valid instance");
            let net = NetParams::new(config.latency);
            let greedy = greedy_with_options(&set, net, GreedyOptions::PLAIN);
            let greedy_delivery = delivery_completion(&greedy, &set, net).unwrap();
            let layered_opt = search(
                &set,
                net,
                SearchOptions {
                    objective: Objective::Delivery,
                    layered_only: true,
                    node_budget: 5_000_000,
                },
            );

            let rounded = power_of_two_rounding(&set).expect("rounding preserves validity");
            let rounded_greedy = greedy_with_options(&rounded.set, net, GreedyOptions::PLAIN);
            let rounded_greedy_delivery =
                delivery_completion(&rounded_greedy, &rounded.set, net).unwrap();
            let rounded_opt = search(
                &rounded.set,
                net,
                SearchOptions {
                    objective: Objective::Delivery,
                    layered_only: false,
                    node_budget: 5_000_000,
                },
            );

            LayeredSample {
                destinations: n,
                seed,
                greedy_delivery: greedy_delivery.raw(),
                layered_optimal_delivery: layered_opt.value.raw(),
                rounded_greedy_delivery: rounded_greedy_delivery.raw(),
                rounded_optimal_delivery: rounded_opt.value.raw(),
            }
        })
        .collect()
}

/// Summarises the samples.
pub fn table(samples: &[LayeredSample]) -> Table {
    let mut t = Table::new(
        "E4+E5 / Lemma 2, Lemma 3 — greedy delivery optimality over layered schedules and rounded instances",
        &[
            "destinations",
            "samples",
            "Corollary 1 holds",
            "equation (4) holds",
        ],
    );
    let mut sizes: Vec<usize> = samples.iter().map(|s| s.destinations).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for n in sizes {
        let group: Vec<&LayeredSample> = samples.iter().filter(|s| s.destinations == n).collect();
        let c1 = group.iter().filter(|s| s.corollary1_holds()).count();
        let e4 = group.iter().filter(|s| s.equation4_holds()).count();
        t.push_row(vec![
            n.into(),
            group.len().into(),
            format!("{c1}/{}", group.len()).into(),
            format!("{e4}/{}", group.len()).into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary1_and_equation4_hold_on_small_batch() {
        let config = LayeredConfig {
            sizes: [4, 6],
            samples_per_size: 5,
            latency: 1,
            seed: 11,
        };
        let samples = run(&config);
        assert_eq!(samples.len(), 10);
        for s in &samples {
            assert!(s.corollary1_holds(), "Corollary 1 failed: {s:?}");
            assert!(s.equation4_holds(), "equation (4) failed: {s:?}");
        }
        let t = table(&samples);
        assert_eq!(t.rows.len(), 2);
    }
}
