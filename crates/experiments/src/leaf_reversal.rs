//! Experiment E7 — the leaf-delivery refinement (end of Section 3).
//!
//! The greedy algorithm hands the message to fast nodes first, which is
//! right for forwarding nodes but wrong for leaves: a leaf with a large
//! receiving overhead should be served early. The paper proposes reversing
//! the leaf delivery order after greedy finishes and notes it "will not
//! increase the reception completion time and may decrease it". This
//! experiment quantifies the improvement across cluster compositions.

use crate::table::Table;
use hnow_core::algorithms::greedy::{greedy_with_options, GreedyOptions};
use hnow_core::schedule::reception_completion;
use hnow_model::models::Instance;
use hnow_workload::Sweep;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Improvement measurement on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinementSample {
    /// Swept parameter value.
    pub x: f64,
    /// Number of destinations.
    pub destinations: usize,
    /// Plain greedy completion time.
    pub plain: u64,
    /// Leaf-refined greedy completion time.
    pub refined: u64,
}

impl RefinementSample {
    /// Relative improvement of the refinement (0 when it changes nothing).
    pub fn improvement(&self) -> f64 {
        if self.plain == 0 {
            0.0
        } else {
            1.0 - self.refined as f64 / self.plain as f64
        }
    }
}

/// Runs the refinement experiment over a sweep.
pub fn run(sweep: &Sweep) -> Vec<RefinementSample> {
    sweep
        .points
        .par_iter()
        .map(|point| {
            let Instance { set, net } = point.instance().expect("sweep points are valid");
            let plain = reception_completion(
                &greedy_with_options(&set, net, GreedyOptions::PLAIN),
                &set,
                net,
            )
            .unwrap();
            let refined = reception_completion(
                &greedy_with_options(&set, net, GreedyOptions::REFINED),
                &set,
                net,
            )
            .unwrap();
            RefinementSample {
                x: point.x,
                destinations: set.num_destinations(),
                plain: plain.raw(),
                refined: refined.raw(),
            }
        })
        .collect()
}

/// Default configuration: sweep the slow-node fraction at a fixed cluster
/// size.
pub fn default_samples(destinations: usize, seed: u64) -> Vec<RefinementSample> {
    run(&Sweep::over_slow_fraction(
        destinations,
        &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0],
        3,
        seed,
    ))
}

/// Renders the experiment table.
pub fn table(samples: &[RefinementSample]) -> Table {
    let mut t = Table::new(
        "E7 / leaf refinement — plain vs refined greedy",
        &["slow fraction", "n", "greedy", "greedy+leaf", "improvement"],
    );
    for s in samples {
        t.push_row(vec![
            s.x.into(),
            s.destinations.into(),
            s.plain.into(),
            s.refined.into(),
            s.improvement().into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_never_hurts_across_the_sweep() {
        let samples = default_samples(20, 17);
        assert_eq!(samples.len(), 6);
        for s in &samples {
            assert!(s.refined <= s.plain, "{s:?}");
            assert!(s.improvement() >= 0.0);
            assert!(s.improvement() < 1.0);
        }
        assert_eq!(table(&samples).rows.len(), 6);
    }

    #[test]
    fn figure1_improvement_is_twenty_percent() {
        let (set, net) = crate::figure1::figure1_instance();
        let plain = reception_completion(
            &greedy_with_options(&set, net, GreedyOptions::PLAIN),
            &set,
            net,
        )
        .unwrap();
        let refined = reception_completion(
            &greedy_with_options(&set, net, GreedyOptions::REFINED),
            &set,
            net,
        )
        .unwrap();
        let sample = RefinementSample {
            x: 0.0,
            destinations: 4,
            plain: plain.raw(),
            refined: refined.raw(),
        };
        assert_eq!(sample.plain, 10);
        assert_eq!(sample.refined, 8);
        assert!((sample.improvement() - 0.2).abs() < 1e-9);
    }
}
