//! Experiment E8 — heterogeneity-aware scheduling vs oblivious baselines.
//!
//! The paper's motivation: ignoring heterogeneity when building a multicast
//! tree puts slow workstations on the critical path. This experiment sweeps
//! the fraction of slow nodes in a bimodal cluster and the cluster size, and
//! reports the completion time of every strategy relative to the greedy
//! algorithm. Expected shape: binomial/chain/star/random degrade sharply as
//! slow nodes appear, the heterogeneous-node-model greedy (fnf) tracks the
//! receive-send greedy closely but loses ground as receive overheads and
//! latency grow, and the DP optimum (where computable) shows greedy's
//! remaining gap is small.
//!
//! Planners are addressed by their registry names — there is no
//! per-algorithm dispatch here; adding a planner to
//! `hnow_core::planner::registry()` makes it sweepable by name.

use crate::table::Table;
use hnow_core::planner::{self, plan_many, PlanRequest, Planner};
use hnow_model::models::Instance;
use hnow_workload::Sweep;
use serde::{Deserialize, Serialize};

/// Registry names of the planners compared by default (the DP is excluded
/// here because bimodal random clusters can have many distinct types; see
/// E6 for DP comparisons).
pub const DEFAULT_PLANNERS: [&str; 7] = [
    "greedy",
    "greedy+leaf",
    "fnf",
    "binomial",
    "chain",
    "star",
    "random",
];

/// Resolves registry names into planners, panicking on an unknown name.
pub fn resolve_planners(names: &[&str]) -> Vec<&'static dyn Planner> {
    names
        .iter()
        .map(|name| planner::find(name).unwrap_or_else(|| panic!("unknown planner name: {name}")))
        .collect()
}

/// Completion times of every strategy on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonPoint {
    /// The swept parameter value.
    pub x: f64,
    /// Number of destinations.
    pub destinations: usize,
    /// `(planner name, completion time)` pairs.
    pub completions: Vec<(String, u64)>,
}

impl ComparisonPoint {
    /// Completion of a named planner.
    pub fn completion(&self, name: &str) -> Option<u64> {
        self.completions
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Evaluates every named planner on every point of a sweep, through the
/// batched planning facade.
pub fn run_sweep(sweep: &Sweep, planner_names: &[&str], seed: u64) -> Vec<ComparisonPoint> {
    let planners = resolve_planners(planner_names);
    let requests: Vec<PlanRequest> = sweep
        .points
        .iter()
        .map(|point| {
            let Instance { set, net } = point.instance().expect("sweep points are valid");
            PlanRequest::new(set, net).with_seed(seed)
        })
        .collect();
    let rows = plan_many(&planners, &requests);
    sweep
        .points
        .iter()
        .zip(&requests)
        .zip(rows)
        .map(|((point, request), row)| {
            let completions = planners
                .iter()
                .zip(row)
                .map(|(p, plan)| {
                    let plan = plan.expect("planning a valid sweep point succeeds");
                    (
                        p.name().to_string(),
                        plan.timing.reception_completion().raw(),
                    )
                })
                .collect();
            ComparisonPoint {
                x: point.x,
                destinations: request.set.num_destinations(),
                completions,
            }
        })
        .collect()
}

/// Renders a sweep comparison as a table: one row per point, one column per
/// planner (absolute completion times).
pub fn table(parameter: &str, points: &[ComparisonPoint], planner_names: &[&str]) -> Table {
    let mut columns: Vec<&str> = vec![parameter, "n"];
    columns.extend(planner_names.iter());
    let mut t = Table::new(
        format!("E8 / baseline comparison over {parameter}"),
        &columns,
    );
    for p in points {
        let mut row = vec![p.x.into(), p.destinations.into()];
        for name in planner_names {
            row.push(p.completion(name).unwrap_or(0).into());
        }
        t.push_row(row);
    }
    t
}

/// Convenience: the default slow-fraction sweep of the experiment.
pub fn default_slow_fraction_points(destinations: usize, seed: u64) -> Vec<ComparisonPoint> {
    let sweep = Sweep::over_slow_fraction(destinations, &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0], 4, seed);
    run_sweep(&sweep, &DEFAULT_PLANNERS, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_never_worse_than_oblivious_baselines_on_the_sweep() {
        let points = default_slow_fraction_points(24, 5);
        assert_eq!(points.len(), 6);
        for p in &points {
            let greedy = p.completion("greedy").unwrap();
            let refined = p.completion("greedy+leaf").unwrap();
            for name in ["binomial", "chain", "star", "random"] {
                let other = p.completion(name).unwrap();
                assert!(
                    refined <= other,
                    "x={} refined greedy {refined} lost to {name} {other}",
                    p.x
                );
            }
            assert!(refined <= greedy);
        }
    }

    #[test]
    fn slow_nodes_hurt_oblivious_strategies_more() {
        let points = default_slow_fraction_points(24, 9);
        let first = &points[0];
        let last = &points[points.len() - 1];
        let degradation = |p: &ComparisonPoint, name: &str| {
            p.completion(name).unwrap() as f64 / p.completion("greedy+leaf").unwrap() as f64
        };
        // The binomial tree's relative disadvantage grows (or at least does
        // not shrink) as the cluster becomes more heterogeneous... it is
        // largest somewhere in the middle of the sweep, where the mix is most
        // heterogeneous, and at least as large as in the all-fast cluster.
        let max_mid = points
            .iter()
            .map(|p| degradation(p, "binomial"))
            .fold(0.0, f64::max);
        assert!(max_mid >= degradation(first, "binomial") - 1e-9);
        assert!(max_mid >= degradation(last, "binomial") - 1e-9);
    }

    #[test]
    fn table_rendering() {
        let points = default_slow_fraction_points(8, 2);
        let t = table("slow fraction", &points, &DEFAULT_PLANNERS);
        assert_eq!(t.rows.len(), points.len());
        assert!(t.columns.iter().any(|c| c == "binomial"));
    }

    #[test]
    #[should_panic(expected = "unknown planner name")]
    fn unknown_planner_names_are_rejected() {
        resolve_planners(&["no-such-planner"]);
    }
}
