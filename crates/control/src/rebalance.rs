//! Hysteresis-gated shard rebalancing.
//!
//! The sharded service reports per-shard mean queue delays every epoch.
//! When the spread between the hottest and the coldest shard crosses
//! [`RebalanceConfig::enter_gap`], the rebalancer activates and starts
//! proposing node migrations from hot to cold; it stays active until the
//! spread falls back below the (strictly smaller) `exit_gap`, so a load
//! skew hovering around one threshold cannot make membership flap.
//!
//! Proposals are *class-aware*: the class moved is the one with the
//! largest surplus on the hot shard relative to the cold shard, so
//! repeated migrations converge toward the partitioner's even per-class
//! spread instead of draining one class. Every argmin/argmax tie breaks
//! toward the lowest shard or class index, making the decision a pure
//! function of `(config, activation state, delays, counts)`.

use serde::Serialize;

/// Tuning knobs of the [`Rebalancer`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RebalanceConfig {
    /// Queue-delay spread (hottest minus coldest shard mean, in ticks) at
    /// which the rebalancer activates.
    pub enter_gap: f64,
    /// Spread at which an active rebalancer deactivates; must be below
    /// `enter_gap` for the hysteresis to exist.
    pub exit_gap: f64,
    /// Maximum migrations proposed per epoch.
    pub max_moves: usize,
    /// A hot shard never shrinks below this many nodes.
    pub min_shard_nodes: usize,
}

impl Default for RebalanceConfig {
    /// Activate at a 64-tick spread, deactivate at 16, one move per epoch,
    /// never shrink a shard below 2 nodes.
    fn default() -> Self {
        RebalanceConfig {
            enter_gap: 64.0,
            exit_gap: 16.0,
            max_moves: 1,
            min_shard_nodes: 2,
        }
    }
}

/// One proposed migration: move one node of `class` from shard `from` to
/// shard `to`. Which concrete node moves is the caller's choice (the
/// simulator picks the least-busy node of that class, ties by lowest id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// Shard to shrink (the hottest).
    pub from: usize,
    /// Shard to grow (the coldest).
    pub to: usize,
    /// Class of the node to move.
    pub class: usize,
}

/// The stateful rebalancing decision loop — the only state is the
/// hysteresis activation flag.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    config: RebalanceConfig,
    active: bool,
}

impl Rebalancer {
    /// A rebalancer in the inactive state.
    pub fn new(config: RebalanceConfig) -> Self {
        Rebalancer {
            config,
            active: false,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &RebalanceConfig {
        &self.config
    }

    /// Whether the hysteresis gate is currently open.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Feeds one epoch's per-shard mean queue delays and per-shard
    /// per-class node counts, returning the migrations to apply (possibly
    /// none). Delay values must be finite (the simulator's aggregates are
    /// NaN-free by construction).
    pub fn decide(&mut self, shard_delay: &[f64], class_counts: &[Vec<usize>]) -> Vec<ShardMove> {
        debug_assert_eq!(shard_delay.len(), class_counts.len());
        if shard_delay.len() < 2 {
            return Vec::new();
        }
        let hottest = argmax(shard_delay);
        let coldest = argmin(shard_delay);
        let gap = shard_delay[hottest] - shard_delay[coldest];
        if !self.active && gap >= self.config.enter_gap {
            self.active = true;
        } else if self.active && gap <= self.config.exit_gap {
            self.active = false;
        }
        if !self.active || hottest == coldest {
            return Vec::new();
        }

        let mut counts: Vec<Vec<usize>> = class_counts.to_vec();
        let mut moves = Vec::new();
        for _ in 0..self.config.max_moves {
            let hot_total: usize = counts[hottest].iter().sum();
            if hot_total <= self.config.min_shard_nodes {
                break;
            }
            // Largest hot-minus-cold surplus among classes the hot shard
            // can still give up; ties toward the lowest class index.
            let mut best: Option<(i64, usize)> = None;
            for (c, &have) in counts[hottest].iter().enumerate() {
                if have == 0 {
                    continue;
                }
                let surplus = have as i64 - counts[coldest][c] as i64;
                if best.is_none_or(|(s, _)| surplus > s) {
                    best = Some((surplus, c));
                }
            }
            let Some((_, class)) = best else {
                break;
            };
            counts[hottest][class] -= 1;
            counts[coldest][class] += 1;
            moves.push(ShardMove {
                from: hottest,
                to: coldest,
                class,
            });
        }
        moves
    }
}

/// Index of the maximal value, first occurrence (= lowest index) on ties.
fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, v) in values.iter().enumerate().skip(1) {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimal value, first occurrence (= lowest index) on ties.
fn argmin(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, v) in values.iter().enumerate().skip(1) {
        if *v < values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(enter: f64, exit: f64, moves: usize) -> RebalanceConfig {
        RebalanceConfig {
            enter_gap: enter,
            exit_gap: exit,
            max_moves: moves,
            min_shard_nodes: 2,
        }
    }

    #[test]
    fn stays_quiet_below_the_entry_threshold() {
        let mut rb = Rebalancer::new(config(50.0, 10.0, 4));
        let counts = vec![vec![3, 3], vec![3, 3]];
        assert!(rb.decide(&[40.0, 0.0], &counts).is_empty());
        assert!(!rb.is_active());
    }

    #[test]
    fn hysteresis_enters_at_enter_gap_and_exits_at_exit_gap() {
        let mut rb = Rebalancer::new(config(50.0, 10.0, 1));
        let counts = vec![vec![4, 4], vec![2, 2]];
        // Crosses the entry threshold: active, moves from shard 0 to 1.
        let moves = rb.decide(&[60.0, 0.0], &counts);
        assert!(rb.is_active());
        assert_eq!(
            moves,
            vec![ShardMove {
                from: 0,
                to: 1,
                class: 0
            }]
        );
        // Still above exit: keeps moving even though below the entry gap.
        assert!(!rb.decide(&[30.0, 0.0], &counts).is_empty());
        assert!(rb.is_active());
        // Falls to the exit gap: deactivates and stops.
        assert!(rb.decide(&[10.0, 0.0], &counts).is_empty());
        assert!(!rb.is_active());
    }

    #[test]
    fn moves_the_class_with_the_largest_surplus() {
        let mut rb = Rebalancer::new(config(1.0, 0.5, 2));
        // Class 1 has the bigger hot-cold surplus (4-0 vs 2-1).
        let counts = vec![vec![2, 4], vec![1, 0]];
        let moves = rb.decide(&[100.0, 0.0], &counts);
        assert_eq!(moves.len(), 2);
        assert_eq!(moves[0].class, 1);
        // After one move the surplus order is 2-1 vs 3-1: still class 1.
        assert_eq!(moves[1].class, 1);
    }

    #[test]
    fn never_shrinks_a_shard_below_the_floor() {
        let mut rb = Rebalancer::new(config(1.0, 0.5, 10));
        let counts = vec![vec![2, 1], vec![0, 0]];
        // Hot shard has 3 nodes, floor is 2: exactly one move allowed.
        let moves = rb.decide(&[100.0, 0.0], &counts);
        assert_eq!(moves.len(), 1);
        // At the floor nothing moves, though the gate stays active.
        let at_floor = vec![vec![1, 1], vec![1, 1]];
        assert!(rb.decide(&[100.0, 0.0], &at_floor).is_empty());
        assert!(rb.is_active());
    }

    #[test]
    fn ties_break_toward_the_lowest_index() {
        let mut rb = Rebalancer::new(config(1.0, 0.5, 1));
        let counts = vec![vec![3, 3], vec![3, 3], vec![3, 3]];
        // Shards 0 and 2 tie as hottest; 1 and 2... all-equal delays give
        // gap 0 → inactive. Use distinct hot with tied colds instead.
        assert!(rb.decide(&[0.0, 0.0, 0.0], &counts).is_empty());
        let moves = rb.decide(&[50.0, 0.0, 0.0], &counts);
        assert_eq!(
            moves,
            vec![ShardMove {
                from: 0,
                to: 1,
                class: 0
            }]
        );
        // Tied surpluses pick the lowest class.
        let mut rb = Rebalancer::new(config(1.0, 0.5, 1));
        let even = vec![vec![2, 2], vec![2, 2]];
        let moves = rb.decide(&[50.0, 0.0], &even);
        assert_eq!(moves[0].class, 0);
    }

    #[test]
    fn single_shard_clusters_never_rebalance() {
        let mut rb = Rebalancer::new(config(0.0, 0.0, 5));
        assert!(rb.decide(&[1000.0], &[vec![5]]).is_empty());
    }
}
