//! Gateway-placement policies.
//!
//! A cross-shard session designates one *gateway* per remote shard it
//! touches: the node that receives the payload from the gateway tree and
//! fans it out to the shard's local members. Which member is promoted
//! matters — the hierarchical reliable-multicast literature (Byun) found
//! placement policy dominating achieved makespan — so the choice is
//! pluggable behind [`GatewayPolicy`], with policies selected by registry
//! name exactly like planners.
//!
//! Every policy is a pure function of the candidate list it is handed, and
//! candidates are always presented in ascending global-id order, so a
//! policy's choice is deterministic and independent of thread count.

use hnow_model::NodeSpec;

/// One member of a remote shard, as seen by a gateway policy.
#[derive(Debug, Clone, Copy)]
pub struct GatewayCandidate {
    /// Global pool id of the candidate node.
    pub node: usize,
    /// The candidate's overhead spec.
    pub spec: NodeSpec,
    /// The node's busy horizon at the start of the current control epoch
    /// (raw ticks): how far into the future the node is already committed.
    /// Snapshotted at the epoch boundary, never updated mid-epoch, so the
    /// value a policy sees does not depend on planning order details.
    pub load: u64,
    /// How many of the session's members (including this candidate) live on
    /// the candidate's shard — the local fan-out the gateway must serve.
    pub shard_members: usize,
}

/// A gateway-placement policy: picks which member of a remote shard is
/// promoted to gateway for one cross-shard session.
///
/// # Contract
///
/// `select` receives a non-empty candidate slice in **ascending global-id
/// order** and returns an index into it. Implementations must be pure: the
/// same candidates must always produce the same index (no interior state,
/// no randomness), and ties must break deterministically — by convention
/// on `(speed_key, node id)` — so that the sharded cluster's reports stay
/// byte-identical per seed at every thread count.
pub trait GatewayPolicy: Sync {
    /// Registry name of the policy (`--policy` on the demo binaries).
    fn name(&self) -> &'static str;

    /// One-line human description for listings.
    fn describe(&self) -> &'static str;

    /// Index of the chosen gateway within `candidates` (non-empty).
    fn select(&self, candidates: &[GatewayCandidate]) -> usize;
}

/// The pre-control-plane baseline: the fastest member wins, ties by lowest
/// global id. Exactly reproduces the batch path's inline
/// `min_by(speed_cmp)` choice.
struct FastestMember;

impl GatewayPolicy for FastestMember {
    fn name(&self) -> &'static str {
        "fastest-member"
    }

    fn describe(&self) -> &'static str {
        "fastest member by (send, recv) overhead, ties by lowest id"
    }

    fn select(&self, candidates: &[GatewayCandidate]) -> usize {
        argmin_by_key(candidates, |c| (c.spec.speed_key(), c.node))
    }
}

/// Least-busy member: the node with the smallest committed busy horizon at
/// the epoch boundary, ties by speed then id. Under a hot spot this steers
/// gateway (and thus fan-out) work away from already-saturated nodes.
struct LoadAware;

impl GatewayPolicy for LoadAware {
    fn name(&self) -> &'static str {
        "load-aware"
    }

    fn describe(&self) -> &'static str {
        "least busy horizon at epoch start, ties by speed then lowest id"
    }

    fn select(&self, candidates: &[GatewayCandidate]) -> usize {
        argmin_by_key(candidates, |c| (c.load, c.spec.speed_key(), c.node))
    }
}

/// Minimizes a proxy for the stitched reception completion of the
/// gateway's subtree: the gateway pays one receive overhead to take the
/// payload, then at best serializes sends to its remaining local members,
/// so `recv + (shard_members - 1) * send` lower-bounds the subtree's
/// contribution to the composed `R_T`. Ties by speed then id.
struct StitchedRtMin;

impl GatewayPolicy for StitchedRtMin {
    fn name(&self) -> &'static str {
        "stitched-rt-min"
    }

    fn describe(&self) -> &'static str {
        "minimal recv + (local members - 1) * send proxy for the stitched R_T"
    }

    fn select(&self, candidates: &[GatewayCandidate]) -> usize {
        argmin_by_key(candidates, |c| {
            let fan_out = c.shard_members.saturating_sub(1) as u64;
            let proxy = c
                .spec
                .recv()
                .raw()
                .saturating_add(fan_out.saturating_mul(c.spec.send().raw()));
            (proxy, c.spec.speed_key(), c.node)
        })
    }
}

/// Index of the first minimal element — first occurrence wins ties, which
/// combined with ascending-id candidate order makes every policy's
/// tie-break the lowest global id.
fn argmin_by_key<K: Ord>(
    candidates: &[GatewayCandidate],
    key: impl Fn(&GatewayCandidate) -> K,
) -> usize {
    debug_assert!(!candidates.is_empty(), "no gateway candidates");
    let mut best = 0usize;
    let mut best_key = key(&candidates[0]);
    for (i, candidate) in candidates.iter().enumerate().skip(1) {
        let k = key(candidate);
        if k < best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

static FASTEST_MEMBER: FastestMember = FastestMember;
static LOAD_AWARE: LoadAware = LoadAware;
static STITCHED_RT_MIN: StitchedRtMin = StitchedRtMin;

/// Every registered gateway policy, in stable listing order.
pub fn policies() -> &'static [&'static dyn GatewayPolicy] {
    static REGISTRY: [&dyn GatewayPolicy; 3] = [&FASTEST_MEMBER, &LOAD_AWARE, &STITCHED_RT_MIN];
    &REGISTRY
}

/// Looks a policy up by its registry name.
pub fn find_policy(name: &str) -> Option<&'static dyn GatewayPolicy> {
    policies().iter().copied().find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(node: usize, send: u64, recv: u64, load: u64, members: usize) -> GatewayCandidate {
        GatewayCandidate {
            node,
            spec: NodeSpec::new(send, recv),
            load,
            shard_members: members,
        }
    }

    #[test]
    fn registry_finds_every_policy_and_rejects_unknown_names() {
        for p in policies() {
            let found = find_policy(p.name()).expect("registered policy resolves");
            assert_eq!(found.name(), p.name());
            assert!(!p.describe().is_empty());
        }
        assert!(find_policy("no-such-policy").is_none());
        assert_eq!(policies().len(), 3);
    }

    #[test]
    fn fastest_member_matches_the_speed_then_id_baseline() {
        let candidates = vec![
            candidate(3, 4, 6, 100, 3),
            candidate(5, 2, 3, 100, 3),
            candidate(9, 2, 3, 0, 3),
        ];
        // Nodes 5 and 9 tie on speed; the lower id wins regardless of load.
        let p = find_policy("fastest-member").unwrap();
        assert_eq!(candidates[p.select(&candidates)].node, 5);
    }

    #[test]
    fn load_aware_prefers_the_idle_node() {
        let candidates = vec![
            candidate(3, 1, 1, 50, 2),
            candidate(5, 9, 9, 0, 2),
            candidate(7, 1, 1, 50, 2),
        ];
        let p = find_policy("load-aware").unwrap();
        assert_eq!(candidates[p.select(&candidates)].node, 5);
        // Equal loads fall back to speed, then id.
        let tied = vec![candidate(4, 2, 2, 10, 2), candidate(2, 2, 2, 10, 2)];
        assert_eq!(tied[p.select(&tied)].node, 2);
    }

    #[test]
    fn stitched_rt_min_accounts_for_local_fan_out() {
        // Fast sender with slow receive vs balanced node, 4 local members:
        // proxy = recv + 3 * send.
        let candidates = vec![
            candidate(1, 2, 20, 0, 4), // proxy 26
            candidate(6, 5, 5, 0, 4),  // proxy 20
        ];
        let p = find_policy("stitched-rt-min").unwrap();
        assert_eq!(candidates[p.select(&candidates)].node, 6);
        // With a single local member the fan-out term vanishes.
        let singles = vec![candidate(1, 2, 20, 0, 1), candidate(6, 5, 5, 0, 1)];
        assert_eq!(singles[p.select(&singles)].node, 6);
        let singles = vec![candidate(1, 2, 4, 0, 1), candidate(6, 5, 5, 0, 1)];
        assert_eq!(singles[p.select(&singles)].node, 1);
    }

    #[test]
    fn selection_is_pure() {
        let candidates = vec![
            candidate(0, 3, 3, 7, 2),
            candidate(1, 2, 5, 1, 2),
            candidate(2, 5, 2, 3, 2),
        ];
        for p in policies() {
            let first = p.select(&candidates);
            for _ in 0..5 {
                assert_eq!(p.select(&candidates), first, "{}", p.name());
            }
        }
    }
}
