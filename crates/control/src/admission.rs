//! Epoch admission control: shortest-planned-`R_T`-first reordering and
//! patience-based load shedding.
//!
//! The service loop hands the controller one epoch's worth of planned
//! sessions as [`AdmissionIntent`]s plus the per-node busy horizons carried
//! in from previous epochs. The controller decides, per session:
//!
//! * the **execution order** — a stable sort on `(arrival,
//!   planned_reception, submission index)`. Arrival order is never
//!   violated (a later arrival cannot overtake an earlier one), but among
//!   sessions arriving at the same instant the shortest planned `R_T` goes
//!   first, the classic SJF move that trims mean and tail queueing delay
//!   without starving anyone (same-instant ties fall back to submission
//!   order);
//! * **shedding** — a session whose predicted start already exceeds its
//!   churn deadline is refused up front. It would have abandoned anyway
//!   (the simulator's churn gate fires at the first send), but shedding it
//!   at admission keeps its claim out of every node FIFO, so the capacity
//!   it would have briefly held goes to sessions that can still meet their
//!   deadlines.
//!
//! Prediction uses a per-node virtual clock seeded from the carried busy
//! horizons: processing sessions in execution order, a session is
//! predicted to start when its source frees up (`max(arrival,
//! clock[source])`) and then charges each of its nodes its planned
//! overhead there. The clock is an estimate — the discrete-event kernel
//! remains the ground truth — but it is a *deterministic* estimate, a pure
//! function of the intents and the carried horizons.

/// One planned session, as the admission controller sees it.
#[derive(Debug, Clone)]
pub struct AdmissionIntent {
    /// Arrival time (raw ticks).
    pub arrival: u64,
    /// Absolute churn deadline (`arrival + patience`), if the session is
    /// impatient.
    pub deadline: Option<u64>,
    /// The planner's analytic reception completion for the session's tree
    /// on an idle cluster — the SJF sort key.
    pub planned_reception: u64,
    /// Pool node id of the session's source.
    pub source: usize,
    /// `(node, planned busy ticks)` per distinct tree node: the overhead
    /// the session will charge that node if it runs (sends plus receive).
    pub charges: Vec<(usize, u64)>,
}

/// The controller's verdict on one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admitted in its original relative position.
    Admitted,
    /// Admitted, but moved relative to the other admitted sessions of its
    /// epoch by the shortest-planned-`R_T`-first rule.
    Reordered,
    /// Refused: its predicted queue delay already exceeded its patience.
    Shed,
}

impl AdmissionDecision {
    /// Stable lowercase label used in serialized reports.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionDecision::Admitted => "admitted",
            AdmissionDecision::Reordered => "reordered",
            AdmissionDecision::Shed => "shed",
        }
    }
}

/// The controller's output for one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionOutcome {
    /// Indices into the intent slice of every admitted session, in
    /// execution order.
    pub order: Vec<usize>,
    /// One decision per submitted intent, in submission order.
    pub decisions: Vec<AdmissionDecision>,
}

/// Runs admission control over one epoch.
///
/// `node_clock` holds the per-node busy horizons carried in from previous
/// epochs (raw ticks, indexed by pool node id) and is advanced in place by
/// the admitted sessions' predicted charges, so a caller replaying epochs
/// through one clock sees consistent predictions.
pub fn admit(intents: &[AdmissionIntent], node_clock: &mut [u64]) -> AdmissionOutcome {
    let mut order: Vec<usize> = (0..intents.len()).collect();
    order.sort_by_key(|&i| (intents[i].arrival, intents[i].planned_reception, i));

    let mut decisions = vec![AdmissionDecision::Admitted; intents.len()];
    let mut admitted: Vec<usize> = Vec::with_capacity(intents.len());
    for &i in &order {
        let intent = &intents[i];
        let predicted_start = intent.arrival.max(node_clock[intent.source]);
        if intent.deadline.is_some_and(|d| predicted_start > d) {
            decisions[i] = AdmissionDecision::Shed;
            continue;
        }
        for &(node, charge) in &intent.charges {
            node_clock[node] = node_clock[node].max(predicted_start).saturating_add(charge);
        }
        admitted.push(i);
    }

    // A session is "reordered" when its rank in the execution order differs
    // from its rank among the admitted sessions in submission order.
    let mut by_submission = admitted.clone();
    by_submission.sort_unstable();
    for (rank, &i) in admitted.iter().enumerate() {
        if by_submission[rank] != i {
            decisions[i] = AdmissionDecision::Reordered;
        }
    }
    AdmissionOutcome {
        order: admitted,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intent(arrival: u64, planned: u64, source: usize, deadline: Option<u64>) -> AdmissionIntent {
        AdmissionIntent {
            arrival,
            deadline,
            planned_reception: planned,
            source,
            charges: vec![(source, planned)],
        }
    }

    #[test]
    fn same_instant_sessions_run_shortest_planned_rt_first() {
        let intents = vec![
            intent(0, 90, 0, None),
            intent(0, 10, 1, None),
            intent(0, 50, 2, None),
        ];
        let outcome = admit(&intents, &mut [0; 3]);
        assert_eq!(outcome.order, vec![1, 2, 0]);
        assert_eq!(
            outcome.decisions,
            vec![
                AdmissionDecision::Reordered,
                AdmissionDecision::Reordered,
                AdmissionDecision::Reordered,
            ]
        );
    }

    #[test]
    fn arrival_order_is_never_violated() {
        // The late long session must not overtake the earlier short one,
        // and distinct arrivals admitted in order count as plain Admitted.
        let intents = vec![intent(5, 100, 0, None), intent(9, 1, 1, None)];
        let outcome = admit(&intents, &mut [0; 2]);
        assert_eq!(outcome.order, vec![0, 1]);
        assert!(outcome
            .decisions
            .iter()
            .all(|d| *d == AdmissionDecision::Admitted));
    }

    #[test]
    fn sessions_past_their_deadline_are_shed() {
        // Source node 0 is committed until t=100; the impatient session
        // cannot start before its deadline of 20 and is refused, while the
        // patient one on the same node is kept.
        let intents = vec![intent(0, 10, 0, Some(20)), intent(0, 30, 0, None)];
        let mut clock = vec![100u64, 0];
        let outcome = admit(&intents, &mut clock);
        assert_eq!(outcome.decisions[0], AdmissionDecision::Shed);
        assert_eq!(outcome.order, vec![1]);
        // The shed session charged nothing; the admitted one advanced the
        // clock from the carried horizon.
        assert_eq!(clock[0], 130);
    }

    #[test]
    fn shedding_uses_the_charges_of_previously_admitted_sessions() {
        // Three same-instant sessions on one source with patience 15: the
        // first two admitted (planned 10 each) push the predicted start to
        // 20, so the third is shed even though the node started idle.
        let intents = vec![
            intent(0, 10, 0, Some(15)),
            intent(0, 10, 0, Some(15)),
            intent(0, 10, 0, Some(15)),
        ];
        let outcome = admit(&intents, &mut [0; 1]);
        assert_eq!(
            outcome
                .decisions
                .iter()
                .filter(|d| **d == AdmissionDecision::Shed)
                .count(),
            1
        );
        assert_eq!(outcome.decisions[2], AdmissionDecision::Shed);
        assert_eq!(outcome.order, vec![0, 1]);
    }

    #[test]
    fn decisions_and_order_are_deterministic() {
        let intents: Vec<AdmissionIntent> = (0..40)
            .map(|i| {
                intent(
                    (i / 7) as u64,
                    ((i * 13) % 29) as u64,
                    (i % 5) as usize,
                    (i % 3 == 0).then_some((i / 7) as u64 + 8),
                )
            })
            .collect();
        let a = admit(&intents, &mut [0; 5]);
        let b = admit(&intents, &mut [0; 5]);
        assert_eq!(a, b);
        // Every admitted index appears exactly once and respects arrivals.
        for w in a.order.windows(2) {
            assert!(intents[w[0]].arrival <= intents[w[1]].arrival);
        }
        let shed = a
            .decisions
            .iter()
            .filter(|d| **d == AdmissionDecision::Shed)
            .count();
        assert_eq!(a.order.len() + shed, intents.len());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AdmissionDecision::Admitted.label(), "admitted");
        assert_eq!(AdmissionDecision::Reordered.label(), "reordered");
        assert_eq!(AdmissionDecision::Shed.label(), "shed");
    }
}
