//! # hnow-control
//!
//! The control plane of the sharded multicast service: the pure decision
//! logic that turns the batch replayer in `hnow_sim::cluster` into an
//! online service loop. Three concerns live here, each stateless or
//! explicitly-stated-state so every decision is a deterministic function
//! of its inputs:
//!
//! * [`admission`] — per-epoch admission control: reorder the epoch's
//!   sessions shortest-planned-`R_T`-first and shed the ones whose
//!   predicted queue delay already exceeds their churn patience, emitting
//!   an explicit [`AdmissionDecision`] per session.
//! * [`rebalance`] — a hysteresis-gated shard rebalancer that watches
//!   per-shard mean queue delays between epochs and proposes class-aware
//!   node migrations from the hottest to the coldest shard.
//! * [`policy`] — pluggable gateway-placement policies behind the
//!   [`GatewayPolicy`] trait, selected by registry name exactly like
//!   planners.
//!
//! Nothing in this crate touches clocks, threads or randomness: given the
//! same inputs, every function returns the same outputs, which is what
//! lets the simulator's reports stay byte-identical per seed at every
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod policy;
pub mod rebalance;

pub use admission::{admit, AdmissionDecision, AdmissionIntent, AdmissionOutcome};
pub use policy::{find_policy, policies, GatewayCandidate, GatewayPolicy};
pub use rebalance::{RebalanceConfig, Rebalancer, ShardMove};
