//! The telemetry attachment carried by a run configuration.

use crate::event::TraceSink;
use crate::profile::PhaseProfiler;
use std::fmt;
use std::sync::Arc;

/// What a run should observe: an optional event sink, an optional
/// time-series window, and an optional phase profiler. The default
/// (`TelemetryConfig::new()`) observes nothing and is indistinguishable
/// from running without telemetry.
///
/// Sinks and profilers are shared handles (`Arc`), so equality of two
/// configs — needed because run configurations are comparable — is
/// *identity* of the attachments plus equality of the window: two configs
/// are equal when they observe into the same objects.
#[derive(Clone, Default)]
pub struct TelemetryConfig {
    /// Receives every kernel and control-plane trace event of the run.
    pub sink: Option<Arc<dyn TraceSink>>,
    /// When set, the run folds its own trace into fixed windows of this
    /// many sim ticks and attaches a `telemetry` section to the report.
    pub timeseries: Option<u64>,
    /// Collects wall-clock phase spans (never part of the report).
    pub profiler: Option<Arc<PhaseProfiler>>,
}

impl TelemetryConfig {
    /// Observe nothing (every attachment off).
    pub fn new() -> Self {
        TelemetryConfig::default()
    }

    /// Streams every trace event of the run into `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Buckets the run's trace into `window`-tick time series and
    /// attaches the result to the report's `telemetry` section.
    pub fn with_timeseries(mut self, window: u64) -> Self {
        self.timeseries = Some(window);
        self
    }

    /// Records wall-clock phase spans into `profiler`.
    pub fn with_profiler(mut self, profiler: Arc<PhaseProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Whether this config observes anything at all.
    pub fn is_active(&self) -> bool {
        self.sink.is_some() || self.timeseries.is_some() || self.profiler.is_some()
    }
}

impl fmt::Debug for TelemetryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryConfig")
            .field("sink", &self.sink.as_ref().map(|_| "<dyn TraceSink>"))
            .field("timeseries", &self.timeseries)
            .field(
                "profiler",
                &self.profiler.as_ref().map(|_| "<PhaseProfiler>"),
            )
            .finish()
    }
}

impl PartialEq for TelemetryConfig {
    fn eq(&self, other: &Self) -> bool {
        let same_sink = match (&self.sink, &other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        let same_profiler = match (&self.profiler, &other.profiler) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        same_sink && same_profiler && self.timeseries == other.timeseries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemorySink;

    #[test]
    fn equality_is_attachment_identity() {
        let sink: Arc<dyn TraceSink> = Arc::new(MemorySink::new());
        let a = TelemetryConfig::new().with_sink(Arc::clone(&sink));
        let b = TelemetryConfig::new().with_sink(Arc::clone(&sink));
        let c = TelemetryConfig::new().with_sink(Arc::new(MemorySink::new()));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, TelemetryConfig::new());
        assert!(!TelemetryConfig::new().is_active());
        assert!(a.is_active());
        assert!(TelemetryConfig::new().with_timeseries(500).is_active());
        let debug = format!("{a:?}");
        assert!(debug.contains("dyn TraceSink"));
    }
}
