//! Structured trace events, the sink trait they flow into, and the
//! [`Recorder`] handle the simulator emits through.

use std::sync::Mutex;

/// What happened at a traced instant of the simulation.
///
/// The first ten kinds are emitted by the occupancy kernel; the last three
/// are admission decisions emitted by the sharded control plane (stamped
/// with the session's arrival time). Variant order is the deterministic
/// tie-break rank used when exporting a stream, so it is part of the
/// crate's stability surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEventKind {
    /// A session's first chunk entered the event heap (band 0, injection
    /// rank as sequence number).
    SessionOpen,
    /// A sender port went busy transmitting one chunk to one child;
    /// [`TraceEvent::dur`] is the occupancy length.
    SendStart,
    /// The sender port went idle again (the message is now in flight).
    SendFinish,
    /// A receiver port went busy absorbing a delivered chunk;
    /// [`TraceEvent::dur`] is the occupancy length.
    Receive,
    /// A claim found its node busy and joined that node's FIFO park queue.
    Park,
    /// A parked claim was popped (node freed, or passed on by an
    /// abandoning claim) and re-entered the heap.
    Wake,
    /// A receiver missed a chunk and scheduled a NACK to its repairer.
    Nack,
    /// A repairer port went busy retransmitting a missed chunk;
    /// [`TraceEvent::dur`] is the occupancy length.
    Repair,
    /// A streaming session released its next chunk into the train.
    ChunkRelease,
    /// A session gave up: churn patience or repair deadline exceeded.
    Abandon,
    /// The control plane admitted a session in arrival order.
    Admitted,
    /// The control plane admitted a session ahead of earlier arrivals.
    Reordered,
    /// The control plane shed a session without starting it.
    Shed,
}

impl TraceEventKind {
    /// Short lower-case label used by the Chrome exporter.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::SessionOpen => "session_open",
            TraceEventKind::SendStart => "send",
            TraceEventKind::SendFinish => "send_finish",
            TraceEventKind::Receive => "receive",
            TraceEventKind::Park => "park",
            TraceEventKind::Wake => "wake",
            TraceEventKind::Nack => "nack",
            TraceEventKind::Repair => "repair",
            TraceEventKind::ChunkRelease => "chunk_release",
            TraceEventKind::Abandon => "abandon",
            TraceEventKind::Admitted => "admitted",
            TraceEventKind::Reordered => "reordered",
            TraceEventKind::Shed => "shed",
        }
    }

    /// Deterministic tie-break rank (declaration order).
    pub(crate) fn rank(self) -> u8 {
        self as u8
    }

    /// Whether events of this kind occupy a node port for
    /// [`TraceEvent::dur`] ticks.
    pub fn is_occupancy(self) -> bool {
        matches!(
            self,
            TraceEventKind::SendStart | TraceEventKind::Receive | TraceEventKind::Repair
        )
    }
}

/// One sim-time-stamped structured record out of the simulator.
///
/// Times are raw sim ticks; `node` is a global node id once the emitting
/// [`Recorder`] has applied its dense→global remap, and `shard` is filled
/// in by the recorder's shard map when one is attached (flat runs leave it
/// `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim tick the event happened at.
    pub time: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Session id the event belongs to.
    pub session: u64,
    /// Global node id, when the event is tied to a port.
    pub node: Option<usize>,
    /// Shard owning [`TraceEvent::node`], when a shard map is attached.
    pub shard: Option<usize>,
    /// Scheduling band of the heap item that produced the event
    /// (0 = session opening, 1 = planned traffic, 2 = NACK/repair).
    pub band: u8,
    /// Chunk index within the session's train (0 for atomic sessions).
    pub chunk: u32,
    /// Heap sequence number of the item that produced the event.
    pub seq: u64,
    /// Port occupancy length for occupancy kinds, 0 otherwise.
    pub dur: u64,
}

impl TraceEvent {
    /// A minimal event: everything beyond `(time, kind, session)` defaults
    /// to "not applicable" and is filled in with the builder methods.
    pub fn new(time: u64, kind: TraceEventKind, session: u64) -> Self {
        TraceEvent {
            time,
            kind,
            session,
            node: None,
            shard: None,
            band: 0,
            chunk: 0,
            seq: 0,
            dur: 0,
        }
    }

    /// Ties the event to a node port (dense id at emission time; the
    /// recorder remaps it to the global id).
    pub fn node(mut self, node: usize) -> Self {
        self.node = Some(node);
        self
    }

    /// Stamps the scheduling band.
    pub fn band(mut self, band: u8) -> Self {
        self.band = band;
        self
    }

    /// Stamps the chunk index.
    pub fn chunk(mut self, chunk: u32) -> Self {
        self.chunk = chunk;
        self
    }

    /// Stamps the heap sequence number.
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Stamps the occupancy duration.
    pub fn dur(mut self, dur: u64) -> Self {
        self.dur = dur;
        self
    }
}

/// Where trace events go. Implementations must tolerate concurrent calls:
/// component simulations record from rayon worker threads.
pub trait TraceSink: Send + Sync {
    /// Accepts one event. Must not block on the caller's progress.
    fn record(&self, ev: &TraceEvent);
}

/// The bundled emission handle the simulator threads through the kernel:
/// a fan-out over one or two sinks plus the dense→global node remap and
/// global→shard map of the emitting component.
///
/// Emission sites cost one `Option<&Recorder>` branch when tracing is
/// disabled — the kernel never constructs an event unless a recorder is
/// attached.
pub struct Recorder<'a> {
    sinks: Vec<&'a dyn TraceSink>,
    nodes: Option<&'a [usize]>,
    shard_of: Option<&'a [usize]>,
}

impl<'a> Recorder<'a> {
    /// A recorder feeding a single sink, with identity node mapping.
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Recorder {
            sinks: vec![sink],
            nodes: None,
            shard_of: None,
        }
    }

    /// A recorder duplicating every event into each of `sinks`.
    pub fn fanout(sinks: Vec<&'a dyn TraceSink>) -> Self {
        Recorder {
            sinks,
            nodes: None,
            shard_of: None,
        }
    }

    /// Attaches a dense→global node remap: an emitted `node(i)` becomes
    /// `nodes[i]` before reaching the sinks. Component simulations over a
    /// dense node subset use this so traces always carry global ids.
    pub fn with_node_map(mut self, nodes: &'a [usize]) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Attaches a global→shard map: events tied to a node gain its shard.
    pub fn with_shards(mut self, shard_of: &'a [usize]) -> Self {
        self.shard_of = Some(shard_of);
        self
    }

    /// Remaps and records one event into every sink.
    pub fn emit(&self, mut ev: TraceEvent) {
        if let (Some(map), Some(local)) = (self.nodes, ev.node) {
            ev.node = Some(map[local]);
        }
        if let (Some(shard_of), Some(node)) = (self.shard_of, ev.node) {
            ev.shard = Some(shard_of[node]);
        }
        for sink in &self.sinks {
            sink.record(&ev);
        }
    }
}

/// An in-memory sink: a mutex around a growable event buffer. The mutex is
/// uncontended in flat runs and held for one push in sharded ones; each
/// worker's own emission order is preserved, which is what the per-node
/// FIFO replay in [`check_invariants`](crate::check_invariants) relies on.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Copies out everything recorded so far, leaving the buffer intact.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, ev: &TraceEvent) {
        self.events.lock().unwrap().push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_remaps_dense_nodes_and_assigns_shards() {
        let sink = MemorySink::new();
        let dense_to_global = [7usize, 3];
        let shard_of = [0usize, 0, 0, 1, 0, 0, 0, 2];
        let rec = Recorder::new(&sink)
            .with_node_map(&dense_to_global)
            .with_shards(&shard_of);
        rec.emit(
            TraceEvent::new(5, TraceEventKind::SendStart, 42)
                .node(0)
                .dur(3),
        );
        rec.emit(
            TraceEvent::new(9, TraceEventKind::Receive, 42)
                .node(1)
                .dur(2),
        );
        rec.emit(TraceEvent::new(9, TraceEventKind::Abandon, 42));
        let events = sink.take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].node, Some(7));
        assert_eq!(events[0].shard, Some(2));
        assert_eq!(events[1].node, Some(3));
        assert_eq!(events[1].shard, Some(1));
        assert_eq!(events[2].node, None);
        assert_eq!(events[2].shard, None);
        assert!(sink.is_empty());
    }

    #[test]
    fn fanout_duplicates_into_every_sink() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let rec = Recorder::fanout(vec![&a, &b]);
        rec.emit(
            TraceEvent::new(1, TraceEventKind::Nack, 7)
                .band(2)
                .chunk(3)
                .seq(11),
        );
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.len(), 1);
        assert_eq!(a.snapshot()[0].band, 2);
    }
}
