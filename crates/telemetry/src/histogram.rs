//! A fixed-allocation log-bucketed histogram for streaming percentile
//! estimation over `u64` sim-time samples.

/// Sub-buckets per octave. 64 sub-buckets bound the relative quantization
/// error of any reported percentile at `1/64` (< 1.6%).
const SUBBUCKETS: u64 = 64;

/// Bucket index space: values below 64 map to themselves (exact); a value
/// with leading bit `e >= 6` maps to octave `e - 6` and the 6 mantissa
/// bits right below the leading bit.
const BUCKETS: usize = (SUBBUCKETS + (64 - 6) * SUBBUCKETS) as usize;

/// A log-bucketed histogram over `u64` samples with fixed allocation
/// (~30 KiB) and O(1) record, replacing clone-and-sort percentile scans.
///
/// The value→bucket map is monotone non-decreasing, so it commutes with
/// order statistics: `percentile(q)` returns exactly the lower bound of
/// the bucket holding the rank-`q` sample of an exact sort, which is at
/// most `1/64` below it. Values below 64 are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value.
    fn index(v: u64) -> usize {
        if v < SUBBUCKETS {
            return v as usize;
        }
        let e = 63 - v.leading_zeros() as u64; // e >= 6
        let mantissa = (v >> (e - 6)) & (SUBBUCKETS - 1);
        (SUBBUCKETS + (e - 6) * SUBBUCKETS + mantissa) as usize
    }

    /// Smallest value mapping to bucket `idx` — what percentiles report.
    fn bucket_lo(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUBBUCKETS {
            return idx;
        }
        let e = idx / SUBBUCKETS - 1 + 6;
        let mantissa = idx % SUBBUCKETS;
        (SUBBUCKETS + mantissa) << (e - 6)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0 when empty, never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-th percentile (`0..=100`), using the same rank convention
    /// as an exact sort's `sorted[(len - 1) * q / 100]`: the returned
    /// value is the lower bound of the bucket holding that rank's sample.
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count - 1) * q.min(100) / 100;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return Self::bucket_lo(idx);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The exact-sort reference the histogram replaces.
    fn exact_percentile(sorted: &[u64], q: u64) -> u64 {
        sorted[(sorted.len() - 1) * q as usize / 100]
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0), 0);
        assert_eq!(h.percentile(50), 31);
        assert_eq!(h.percentile(100), 63);
        assert_eq!(h.count(), 64);
        assert_eq!(h.sum(), (0..64).sum::<u64>());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn empty_histogram_reports_zeros_not_nan() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_bounds_roundtrip() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX] {
            let idx = LogHistogram::index(v);
            let lo = LogHistogram::bucket_lo(idx);
            assert!(lo <= v, "lo {lo} > v {v}");
            // Relative quantization error is bounded by one sub-bucket.
            assert!(v - lo <= lo / 64, "v {v} lo {lo}");
            assert_eq!(LogHistogram::index(lo), idx);
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let samples_a = [3u64, 99, 4096, 70000, 5];
        let samples_b = [12u64, 12, 1 << 30];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for &v in &samples_a {
            a.record(v);
            whole.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The satellite contract: p50/p95/p99 land in the same bucket as
        /// the exact sort's answer — the histogram reports that bucket's
        /// lower bound, never more than 1/64 below the exact value.
        #[test]
        fn percentiles_stay_within_one_bucket_of_the_exact_sort(
            samples in proptest::collection::vec(0u64..2_000_000, 1..400),
        ) {
            let mut h = LogHistogram::new();
            for &v in &samples {
                h.record(v);
            }
            let mut samples = samples.clone();
            samples.sort_unstable();
            for q in [50u64, 95, 99] {
                let exact = exact_percentile(&samples, q);
                let approx = h.percentile(q);
                prop_assert_eq!(
                    LogHistogram::index(approx),
                    LogHistogram::index(exact),
                    "q {} exact {} approx {}", q, exact, approx
                );
                prop_assert!(approx <= exact);
                prop_assert!(exact - approx <= exact / 64);
            }
        }
    }
}
