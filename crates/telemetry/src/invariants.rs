//! Structural invariant checking over a collected trace stream.

use crate::event::{TraceEvent, TraceEventKind};
use std::collections::VecDeque;

/// Replays a trace stream against the occupancy kernel's structural
/// invariants; `Err` carries a description of the first violation.
///
/// Checked, in order:
///
/// 1. **Band labeling** — session openings carry band 0, planned traffic
///    band 1, NACK/repair traffic band 2.
/// 2. **One-port occupancy** — per node, the `[time, time + dur)`
///    intervals of `send`/`receive`/`repair` events never overlap
///    (zero-length occupancies cannot overlap anything, matching the
///    simulator's own activity-log checker).
/// 3. **FIFO park order** — per node, every wake pops the oldest parked
///    claim: replaying parks into a queue, each wake must match the
///    queue's head `(session, chunk)`, and no wake may fire on an empty
///    queue.
/// 4. **Causality** — a session's first kernel event is its opening, and
///    at no point has a session seen more repair transmissions than
///    NACKs.
///
/// The FIFO and causality replays walk the stream in recorded order;
/// that order is meaningful because every node (and every session)
/// belongs to exactly one simulation component, whose events enter the
/// sink in emission order even when components run on parallel workers.
pub fn check_invariants(events: &[TraceEvent]) -> Result<(), String> {
    check_bands(events)?;
    check_one_port(events)?;
    check_fifo(events)?;
    check_causality(events)
}

fn check_bands(events: &[TraceEvent]) -> Result<(), String> {
    for ev in events {
        let ok = match ev.kind {
            TraceEventKind::SessionOpen => ev.band == 0,
            TraceEventKind::SendStart
            | TraceEventKind::SendFinish
            | TraceEventKind::Receive
            | TraceEventKind::ChunkRelease => ev.band == 1,
            TraceEventKind::Nack | TraceEventKind::Repair => ev.band == 2,
            // Parks, wakes and abandonments inherit the band of the claim
            // that parked, woke or gave up; admission decisions carry no
            // kernel band.
            TraceEventKind::Park
            | TraceEventKind::Wake
            | TraceEventKind::Abandon
            | TraceEventKind::Admitted
            | TraceEventKind::Reordered
            | TraceEventKind::Shed => true,
        };
        if !ok {
            return Err(format!(
                "band violation: {} event of session {} at t={} carries band {}",
                ev.kind.name(),
                ev.session,
                ev.time,
                ev.band
            ));
        }
    }
    Ok(())
}

fn check_one_port(events: &[TraceEvent]) -> Result<(), String> {
    let mut per_node: Vec<(usize, u64, u64)> = events
        .iter()
        .filter(|ev| ev.kind.is_occupancy() && ev.dur > 0)
        .map(|ev| {
            ev.node
                .map(|node| (node, ev.time, ev.time + ev.dur))
                .ok_or_else(|| format!("{} event without a node", ev.kind.name()))
        })
        .collect::<Result<_, _>>()?;
    per_node.sort_unstable();
    for pair in per_node.windows(2) {
        let ((node, _, end), (next_node, next_start, _)) = (pair[0], pair[1]);
        if node == next_node && next_start < end {
            return Err(format!(
                "one-port violation: node {node} busy past t={end} overlaps a claim at t={next_start}"
            ));
        }
    }
    Ok(())
}

fn check_fifo(events: &[TraceEvent]) -> Result<(), String> {
    let nodes = events
        .iter()
        .filter_map(|ev| ev.node)
        .max()
        .map_or(0, |n| n + 1);
    let mut queues: Vec<VecDeque<(u64, u32)>> = vec![VecDeque::new(); nodes];
    for ev in events {
        let Some(node) = ev.node else { continue };
        match ev.kind {
            TraceEventKind::Park => queues[node].push_back((ev.session, ev.chunk)),
            TraceEventKind::Wake => match queues[node].pop_front() {
                Some(head) if head == (ev.session, ev.chunk) => {}
                Some((session, chunk)) => {
                    return Err(format!(
                        "FIFO violation: node {node} woke session {} chunk {} at t={} \
                         ahead of parked session {session} chunk {chunk}",
                        ev.session, ev.chunk, ev.time
                    ));
                }
                None => {
                    return Err(format!(
                        "FIFO violation: node {node} woke session {} at t={} with nothing parked",
                        ev.session, ev.time
                    ));
                }
            },
            _ => {}
        }
    }
    Ok(())
}

fn check_causality(events: &[TraceEvent]) -> Result<(), String> {
    // Session ids are sparse; a sorted probe list keeps this allocation-
    // light without hashing (determinism is irrelevant here, but the
    // checker runs inside property tests and should stay cheap).
    let mut sessions: Vec<u64> = events.iter().map(|ev| ev.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    let slot = |id: u64| sessions.binary_search(&id).expect("probed above");
    let mut opened = vec![false; sessions.len()];
    let mut nack_balance = vec![0i64; sessions.len()];
    for ev in events {
        let s = slot(ev.session);
        match ev.kind {
            TraceEventKind::SessionOpen => opened[s] = true,
            // Admission decisions precede the kernel; wakes of carried-over
            // busy nodes can also precede a session's own opening only via
            // another session, so any session-tagged kernel event requires
            // an opening first.
            TraceEventKind::Admitted | TraceEventKind::Reordered | TraceEventKind::Shed => {}
            kind => {
                if !opened[s] {
                    return Err(format!(
                        "causality violation: {} event of session {} at t={} before its opening",
                        kind.name(),
                        ev.session,
                        ev.time
                    ));
                }
                match kind {
                    TraceEventKind::Nack => nack_balance[s] += 1,
                    TraceEventKind::Repair => {
                        nack_balance[s] -= 1;
                        if nack_balance[s] < 0 {
                            return Err(format!(
                                "causality violation: session {} repaired at t={} \
                                 with no outstanding NACK",
                                ev.session, ev.time
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind as K;

    fn open(session: u64) -> TraceEvent {
        TraceEvent::new(0, K::SessionOpen, session)
    }

    #[test]
    fn a_clean_stream_passes() {
        let events = [
            open(1),
            TraceEvent::new(0, K::SendStart, 1).node(0).band(1).dur(4),
            TraceEvent::new(2, K::Park, 1).node(0).band(1),
            TraceEvent::new(4, K::SendFinish, 1).node(0).band(1),
            TraceEvent::new(4, K::Wake, 1).node(0).band(1),
            TraceEvent::new(4, K::Receive, 1).node(1).band(1).dur(3),
            TraceEvent::new(9, K::Nack, 1).node(1).band(2).chunk(0),
            TraceEvent::new(12, K::Repair, 1).node(0).band(2).dur(4),
        ];
        assert_eq!(check_invariants(&events), Ok(()));
    }

    #[test]
    fn double_booked_ports_are_caught() {
        let events = [
            open(1),
            open(2),
            TraceEvent::new(0, K::SendStart, 1).node(3).band(1).dur(10),
            TraceEvent::new(5, K::Receive, 2).node(3).band(1).dur(2),
        ];
        let err = check_invariants(&events).unwrap_err();
        assert!(err.contains("one-port"), "{err}");
    }

    #[test]
    fn out_of_order_wakes_are_caught() {
        let events = [
            open(1),
            open(2),
            TraceEvent::new(1, K::Park, 1).node(0).band(1),
            TraceEvent::new(2, K::Park, 2).node(0).band(1),
            TraceEvent::new(3, K::Wake, 2).node(0).band(1),
        ];
        let err = check_invariants(&events).unwrap_err();
        assert!(err.contains("FIFO"), "{err}");
    }

    #[test]
    fn activity_before_opening_is_caught() {
        let events = [TraceEvent::new(3, K::Receive, 9).node(1).band(1).dur(2)];
        let err = check_invariants(&events).unwrap_err();
        assert!(err.contains("before its opening"), "{err}");
    }

    #[test]
    fn repairs_without_nacks_are_caught() {
        let events = [
            open(1),
            TraceEvent::new(5, K::Repair, 1).node(0).band(2).dur(2),
        ];
        let err = check_invariants(&events).unwrap_err();
        assert!(err.contains("outstanding NACK"), "{err}");
    }

    #[test]
    fn mislabeled_bands_are_caught() {
        let events = [open(1), TraceEvent::new(2, K::Nack, 1).node(0).band(1)];
        let err = check_invariants(&events).unwrap_err();
        assert!(err.contains("band violation"), "{err}");
    }
}
