//! Wall-clock phase profiling, kept strictly apart from sim-time data.
//!
//! Phase spans measure the host's planning/admission/binding/simulation/
//! rebalancing wall time with thread attribution. They are never folded
//! into a traffic report: wall-clock readings differ run to run, and the
//! reports must stay byte-identical per seed.

use std::sync::Mutex;
use std::time::Instant;

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase label (`"plan"`, `"admit"`, `"bind"`, `"simulate"`,
    /// `"rebalance"`).
    pub phase: &'static str,
    /// Debug rendering of the `std::thread::ThreadId` that ran the span.
    pub thread: String,
    /// Wall-clock length in nanoseconds.
    pub nanos: u128,
}

/// Collects [`PhaseSpan`]s from any thread. Attach one to a run with
/// `TelemetryConfig::with_profiler` and read it back once the run
/// returns.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    spans: Mutex<Vec<PhaseSpan>>,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Opens a span; it records itself when the guard drops.
    pub fn span(&self, phase: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            profiler: self,
            phase,
            start: Instant::now(),
        }
    }

    /// Everything recorded so far, in completion order.
    pub fn spans(&self) -> Vec<PhaseSpan> {
        self.spans.lock().unwrap().clone()
    }

    /// Total wall nanoseconds attributed to `phase` so far.
    pub fn total_nanos(&self, phase: &str) -> u128 {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.nanos)
            .sum()
    }

    /// A one-line-per-phase human summary (span count and total wall
    /// time), sorted by label for stable output.
    pub fn summary(&self) -> String {
        let spans = self.spans.lock().unwrap();
        let mut phases: Vec<&'static str> = spans.iter().map(|s| s.phase).collect();
        phases.sort_unstable();
        phases.dedup();
        let mut out = String::new();
        for phase in phases {
            let (count, nanos) = spans
                .iter()
                .filter(|s| s.phase == phase)
                .fold((0u64, 0u128), |(c, n), s| (c + 1, n + s.nanos));
            out.push_str(&format!(
                "{phase}: {count} spans, {:.3} ms\n",
                nanos as f64 / 1e6
            ));
        }
        out
    }
}

/// RAII guard for an open phase span.
#[must_use = "a phase span measures until the guard drops"]
pub struct PhaseGuard<'a> {
    profiler: &'a PhaseProfiler,
    phase: &'static str,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let span = PhaseSpan {
            phase: self.phase,
            thread: format!("{:?}", std::thread::current().id()),
            nanos: self.start.elapsed().as_nanos(),
        };
        self.profiler.spans.lock().unwrap().push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_phase_and_thread() {
        let profiler = PhaseProfiler::new();
        {
            let _plan = profiler.span("plan");
            let _sim = profiler.span("simulate");
        }
        let spans = profiler.spans();
        assert_eq!(spans.len(), 2);
        // Guards drop in reverse declaration order.
        assert_eq!(spans[0].phase, "simulate");
        assert_eq!(spans[1].phase, "plan");
        assert!(!spans[0].thread.is_empty());
        assert!(profiler.total_nanos("plan") >= spans[1].nanos);
        let summary = profiler.summary();
        assert!(summary.contains("plan: 1 spans"));
        assert!(summary.contains("simulate: 1 spans"));
    }
}
