//! # hnow-telemetry
//!
//! The observability layer of the workstation-multicast reproduction:
//! structured event tracing out of the occupancy kernel, time-bucketed
//! metrics, fixed-allocation log-bucketed histograms, and wall-clock phase
//! profiling — all built so that attaching any of it never perturbs the
//! simulation's byte-identical-per-seed determinism contract.
//!
//! The crate is deliberately free of simulator dependencies: everything is
//! expressed over raw `u64` sim ticks and dense ids, and the simulator
//! adapts its own types at the emission boundary. Three rules keep the
//! determinism contract intact:
//!
//! 1. **Tracing is observation only.** A [`TraceSink`] receives copies of
//!    [`TraceEvent`]s; nothing flows back into the kernel. A disabled sink
//!    is a single predictable `Option` branch per event site.
//! 2. **Aggregation is order-independent.** The [`TimeSeries`] collector
//!    folds events into per-bucket `u64` sums and counts, so any thread
//!    interleaving of component simulations produces the same
//!    [`TelemetryReport`]. Floats appear only in final divisions.
//! 3. **Wall-clock data never enters a report.** The [`PhaseProfiler`]
//!    keeps `plan`/`admit`/`bind`/`simulate`/`rebalance` spans on the
//!    side; sim-time reports stay comparable byte for byte.
//!
//! [`chrome_trace_json`] renders a collected event stream as Chrome
//! `trace_event` JSON (load it at `chrome://tracing` or in Perfetto), one
//! "process" per shard and one "thread" per node port.
//! [`check_invariants`] replays a stream against the kernel's structural
//! invariants (one-port occupancy, FIFO park/wake order, causality).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod chrome;
mod config;
mod event;
mod histogram;
mod invariants;
mod profile;
mod series;

pub use chrome::chrome_trace_json;
pub use config::TelemetryConfig;
pub use event::{MemorySink, Recorder, TraceEvent, TraceEventKind, TraceSink};
pub use histogram::LogHistogram;
pub use invariants::check_invariants;
pub use profile::{PhaseGuard, PhaseProfiler, PhaseSpan};
pub use series::{TelemetryReport, TimeSeries};
