//! Chrome `trace_event` JSON export of a collected trace stream.

use crate::event::TraceEvent;

/// Deterministic export order: group by shard, then node port, then time,
/// with the kernel's own `(band, seq)` and the remaining fields as
/// tie-breaks. Sorting makes the rendered JSON byte-stable even when the
/// stream was recorded from parallel component simulations in arbitrary
/// interleavings.
fn sort_key(ev: &TraceEvent) -> (usize, usize, u64, u8, u64, u64, u8, u32) {
    (
        ev.shard.unwrap_or(0),
        ev.node.map_or(usize::MAX, |n| n),
        ev.time,
        ev.band,
        ev.seq,
        ev.session,
        ev.kind.rank(),
        ev.chunk,
    )
}

/// Renders a trace stream as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form), loadable in `chrome://tracing`
/// or Perfetto.
///
/// Layout: each shard is a "process" (`pid`), each global node port a
/// "thread" (`tid`), so the one-port occupancy claim is visually checkable
/// — a node's `send`/`receive`/`repair` spans (`ph: "X"`, with sim ticks
/// as microseconds) must never overlap on its row. Non-occupancy kinds
/// (parks, wakes, NACKs, chunk releases, admission decisions, ...) render
/// as thread-scoped instants (`ph: "i"`); events without a node land on
/// `tid` 0. The output is deterministically sorted, so traced runs of the
/// same seed export byte-identical files at any thread count.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|ev| sort_key(ev));
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in ordered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let pid = ev.shard.unwrap_or(0);
        let tid = ev.node.unwrap_or(0);
        let name = ev.kind.name();
        if ev.kind.is_occupancy() {
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"occupancy\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"session\":{},\"chunk\":{},\"band\":{},\"seq\":{}}}}}",
                ev.time, ev.dur, ev.session, ev.chunk, ev.band, ev.seq
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"kernel\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"session\":{},\"chunk\":{},\"band\":{},\"seq\":{}}}}}",
                ev.time, ev.session, ev.chunk, ev.band, ev.seq
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind as K;
    use serde::Deserialize;

    #[derive(Deserialize)]
    #[allow(non_snake_case)]
    struct Export {
        traceEvents: Vec<Entry>,
    }

    #[derive(Deserialize)]
    struct Entry {
        name: String,
        ph: String,
        ts: u64,
        pid: u64,
        tid: u64,
        dur: Option<u64>,
    }

    #[test]
    fn export_is_valid_json_and_sorted_independently_of_input_order() {
        let mut events = vec![
            TraceEvent::new(10, K::SendStart, 1)
                .node(2)
                .band(1)
                .seq(4)
                .dur(5),
            TraceEvent::new(3, K::SessionOpen, 1).seq(0),
            TraceEvent::new(15, K::Receive, 1)
                .node(0)
                .band(1)
                .seq(6)
                .dur(2),
            TraceEvent::new(15, K::Nack, 2).node(0).band(2).seq(9),
        ];
        let forward = chrome_trace_json(&events);
        events.reverse();
        let backward = chrome_trace_json(&events);
        assert_eq!(forward, backward);
        let parsed: Export = serde_json::from_str(&forward).unwrap();
        assert_eq!(parsed.traceEvents.len(), 4);
        let spans: Vec<&Entry> = parsed.traceEvents.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|e| e.dur.is_some()));
        let instants: Vec<&Entry> = parsed.traceEvents.iter().filter(|e| e.ph == "i").collect();
        assert_eq!(instants.len(), 2);
        assert!(parsed.traceEvents.iter().all(|e| e.pid == 0));
        let send = parsed
            .traceEvents
            .iter()
            .find(|e| e.name == "send")
            .unwrap();
        assert_eq!((send.ts, send.dur, send.tid), (10, Some(5), 2));
    }

    #[test]
    fn empty_stream_exports_an_empty_event_list() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }
}
