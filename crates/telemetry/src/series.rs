//! Time-bucketed metrics over a trace stream.

use crate::event::{TraceEvent, TraceEventKind};
use serde::Serialize;

/// Per-bucket counter vector that grows to cover the highest bucket seen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Counters(Vec<u64>);

impl Counters {
    fn add(&mut self, bucket: usize, amount: u64) {
        if self.0.len() <= bucket {
            self.0.resize(bucket + 1, 0);
        }
        self.0[bucket] += amount;
    }

    fn padded(&self, buckets: usize) -> Vec<u64> {
        let mut out = self.0.clone();
        out.resize(buckets, 0);
        out
    }
}

/// Folds [`TraceEvent`]s into fixed-window sim-time buckets.
///
/// Every accumulator is a per-bucket `u64` sum, so feeding the collector
/// any permutation of the same event multiset produces the same
/// [`TelemetryReport`] — which is what keeps the schema-5 `telemetry`
/// section byte-identical across thread counts. Occupancy events are
/// split across the bucket boundaries they straddle.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window: u64,
    shard_sizes: Vec<usize>,
    nodes: usize,
    events: u64,
    busy: Counters,
    per_shard_busy: Vec<Counters>,
    per_node_busy: Vec<Counters>,
    parks: Counters,
    wakes: Counters,
    nacks: Counters,
    repairs: Counters,
    opens: Counters,
    admitted: Counters,
    reordered: Counters,
    shed: Counters,
}

impl TimeSeries {
    /// A collector bucketing sim time into `window`-tick buckets over a
    /// cluster described by `shard_sizes` (node count per shard; a flat
    /// run is one shard holding the whole pool). `window` is clamped to
    /// at least 1.
    pub fn new(window: u64, shard_sizes: &[usize]) -> Self {
        let nodes = shard_sizes.iter().sum();
        TimeSeries {
            window: window.max(1),
            shard_sizes: shard_sizes.to_vec(),
            nodes,
            events: 0,
            busy: Counters::default(),
            per_shard_busy: vec![Counters::default(); shard_sizes.len()],
            per_node_busy: vec![Counters::default(); nodes],
            parks: Counters::default(),
            wakes: Counters::default(),
            nacks: Counters::default(),
            repairs: Counters::default(),
            opens: Counters::default(),
            admitted: Counters::default(),
            reordered: Counters::default(),
            shed: Counters::default(),
        }
    }

    /// Folds one event in.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;
        let bucket = (ev.time / self.window) as usize;
        match ev.kind {
            TraceEventKind::SessionOpen => self.opens.add(bucket, 1),
            TraceEventKind::Park => self.parks.add(bucket, 1),
            TraceEventKind::Wake => self.wakes.add(bucket, 1),
            TraceEventKind::Nack => self.nacks.add(bucket, 1),
            TraceEventKind::Admitted => self.admitted.add(bucket, 1),
            TraceEventKind::Reordered => self.reordered.add(bucket, 1),
            TraceEventKind::Shed => self.shed.add(bucket, 1),
            TraceEventKind::Repair => {
                self.repairs.add(bucket, 1);
                self.occupy(ev);
            }
            TraceEventKind::SendStart | TraceEventKind::Receive => self.occupy(ev),
            TraceEventKind::SendFinish | TraceEventKind::ChunkRelease | TraceEventKind::Abandon => {
            }
        }
    }

    /// Charges an occupancy interval `[time, time + dur)` to every bucket
    /// it overlaps.
    fn occupy(&mut self, ev: &TraceEvent) {
        let mut start = ev.time;
        let end = ev.time.saturating_add(ev.dur);
        while start < end {
            let bucket = start / self.window;
            let bucket_end = (bucket + 1) * self.window;
            let ticks = end.min(bucket_end) - start;
            self.busy.add(bucket as usize, ticks);
            if let Some(shard) = ev.shard {
                self.per_shard_busy[shard].add(bucket as usize, ticks);
            } else if self.shard_sizes.len() == 1 {
                self.per_shard_busy[0].add(bucket as usize, ticks);
            }
            if let Some(node) = ev.node {
                self.per_node_busy[node].add(bucket as usize, ticks);
            }
            start = bucket_end;
        }
    }

    /// Folds a whole stream and renders the report in one call.
    pub fn over(events: &[TraceEvent], window: u64, shard_sizes: &[usize]) -> TelemetryReport {
        let mut series = TimeSeries::new(window, shard_sizes);
        for ev in events {
            series.observe(ev);
        }
        series.report()
    }

    /// Renders the collected buckets as the report's `telemetry` section.
    pub fn report(&self) -> TelemetryReport {
        let buckets = [
            &self.busy,
            &self.parks,
            &self.wakes,
            &self.nacks,
            &self.repairs,
            &self.opens,
            &self.admitted,
            &self.reordered,
            &self.shed,
        ]
        .iter()
        .map(|c| c.0.len())
        .chain(self.per_node_busy.iter().map(|c| c.0.len()))
        .max()
        .unwrap_or(0);
        let busy_ticks = self.busy.padded(buckets);
        let capacity = (self.window * self.nodes as u64).max(1) as f64;
        let utilization = busy_ticks.iter().map(|&b| b as f64 / capacity).collect();
        let per_shard_utilization = self
            .per_shard_busy
            .iter()
            .zip(&self.shard_sizes)
            .map(|(c, &n)| {
                let capacity = (self.window * n as u64).max(1) as f64;
                c.padded(buckets)
                    .iter()
                    .map(|&b| b as f64 / capacity)
                    .collect()
            })
            .collect();
        let cumulative_depth = |plus: &Counters, minus: &Counters| {
            let mut depth = 0u64;
            plus.padded(buckets)
                .iter()
                .zip(minus.padded(buckets))
                .map(|(&p, m)| {
                    depth = (depth + p).saturating_sub(m);
                    depth
                })
                .collect::<Vec<u64>>()
        };
        TelemetryReport {
            window: self.window,
            buckets,
            events: self.events,
            busy_ticks,
            utilization,
            queue_depth: cumulative_depth(&self.parks, &self.wakes),
            session_opens: self.opens.padded(buckets),
            nacks: self.nacks.padded(buckets),
            repair_backlog: cumulative_depth(&self.nacks, &self.repairs),
            admitted: self.admitted.padded(buckets),
            reordered: self.reordered.padded(buckets),
            shed: self.shed.padded(buckets),
            per_shard_utilization,
            per_node_busy: self
                .per_node_busy
                .iter()
                .map(|c| c.padded(buckets))
                .collect(),
        }
    }
}

/// The optional `telemetry` section of a schema-5 traffic report: fixed-
/// window time series over the run's trace stream. Every series has
/// [`TelemetryReport::buckets`] entries covering sim time
/// `[0, buckets * window)`; index `i` describes
/// `[i * window, (i + 1) * window)`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetryReport {
    /// Bucket width in sim ticks.
    pub window: u64,
    /// Number of buckets every series below carries.
    pub buckets: usize,
    /// Total trace events folded in.
    pub events: u64,
    /// Port-busy ticks per bucket, summed over all nodes.
    pub busy_ticks: Vec<u64>,
    /// `busy_ticks / (window * nodes)`: mean cluster utilization per
    /// bucket, in `[0, 1]`.
    pub utilization: Vec<f64>,
    /// Parked (deferred) claims still waiting at each bucket's close.
    pub queue_depth: Vec<u64>,
    /// Sessions opened per bucket.
    pub session_opens: Vec<u64>,
    /// NACKs raised per bucket (a rate: count per window).
    pub nacks: Vec<u64>,
    /// NACKs not yet answered by a repair transmission at each bucket's
    /// close.
    pub repair_backlog: Vec<u64>,
    /// Control-plane in-order admissions per bucket (arrival-stamped).
    pub admitted: Vec<u64>,
    /// Control-plane reordered admissions per bucket.
    pub reordered: Vec<u64>,
    /// Control-plane shed sessions per bucket.
    pub shed: Vec<u64>,
    /// Per-shard utilization in `[0, 1]`, indexed `[shard][bucket]`.
    pub per_shard_utilization: Vec<Vec<f64>>,
    /// Per-node busy ticks, indexed `[node][bucket]`; divide by `window`
    /// for per-node utilization.
    pub per_node_busy: Vec<Vec<u64>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind as K;

    fn ev(time: u64, kind: K) -> TraceEvent {
        TraceEvent::new(time, kind, 1)
    }

    #[test]
    fn occupancy_splits_across_bucket_boundaries() {
        let events = [
            ev(8, K::SendStart).node(0).dur(7), // 2 ticks in bucket 0, 5 in bucket 1
            ev(25, K::Receive).node(1).dur(5),  // all in bucket 2
        ];
        let report = TimeSeries::over(&events, 10, &[2]);
        assert_eq!(report.buckets, 3);
        assert_eq!(report.busy_ticks, vec![2, 5, 5]);
        assert_eq!(report.utilization, vec![0.1, 0.25, 0.25]);
        assert_eq!(report.per_node_busy, vec![vec![2, 5, 0], vec![0, 0, 5]]);
        // One shard holding the whole pool mirrors overall utilization.
        assert_eq!(report.per_shard_utilization, vec![vec![0.1, 0.25, 0.25]]);
    }

    #[test]
    fn cumulative_series_track_backlogs() {
        let events = [
            ev(1, K::Park),
            ev(2, K::Park),
            ev(12, K::Wake),
            ev(13, K::Nack).band(2),
            ev(14, K::Nack).band(2),
            ev(27, K::Repair).node(0).dur(2),
        ];
        let report = TimeSeries::over(&events, 10, &[1]);
        assert_eq!(report.queue_depth, vec![2, 1, 1]);
        assert_eq!(report.nacks, vec![0, 2, 0]);
        assert_eq!(report.repair_backlog, vec![0, 2, 1]);
    }

    #[test]
    fn report_is_order_independent() {
        let mut events = vec![
            ev(3, K::SessionOpen),
            ev(5, K::SendStart).node(0).dur(12),
            ev(17, K::Receive).node(2).dur(4),
            ev(6, K::Park),
            ev(17, K::Wake),
            ev(30, K::Admitted),
        ];
        let forward = TimeSeries::over(&events, 8, &[2, 1]);
        events.reverse();
        let backward = TimeSeries::over(&events, 8, &[2, 1]);
        assert_eq!(forward, backward);
        assert_eq!(forward.events, 6);
    }

    #[test]
    fn empty_stream_is_empty_but_nan_free() {
        let report = TimeSeries::over(&[], 100, &[4, 4]);
        assert_eq!(report.buckets, 0);
        assert!(report.utilization.is_empty());
        assert_eq!(report.per_shard_utilization.len(), 2);
        assert_eq!(report.per_node_busy.len(), 8);
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("NaN"));
    }
}
