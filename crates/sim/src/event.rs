//! Discrete events and the event queue.

use hnow_model::{NodeId, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A discrete event in the execution of a multicast schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// `sender` begins incurring its sending overhead for the transmission
    /// to `receiver` (its `rank`-th transmission overall, 1-based).
    SendStart {
        /// The transmitting node.
        sender: NodeId,
        /// The destination of this transmission.
        receiver: NodeId,
        /// 1-based index of this transmission at the sender.
        rank: u64,
    },
    /// The message (sent by `sender`) arrives at `receiver` after the network
    /// latency; the receiver begins incurring its receiving overhead.
    Arrival {
        /// The transmitting node.
        sender: NodeId,
        /// The node at which the message arrives.
        receiver: NodeId,
    },
    /// `node` finishes its receiving overhead and now fully holds the
    /// message; it may begin its own transmissions.
    ReceiveComplete {
        /// The node that completed reception.
        node: NodeId,
    },
}

/// Time-ordered event queue with a deterministic tie-break (insertion
/// sequence number), so simulations are reproducible regardless of heap
/// internals.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Time, u64, Event)>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: Event) {
        self.heap.push(Reverse((time, self.seq, event)));
        self.seq += 1;
    }

    /// Pops the earliest event (ties resolved in insertion order).
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::new(5), Event::ReceiveComplete { node: NodeId(1) });
        q.push(Time::new(2), Event::ReceiveComplete { node: NodeId(2) });
        q.push(Time::new(9), Event::ReceiveComplete { node: NodeId(3) });
        assert_eq!(q.len(), 3);
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        let (t3, _) = q.pop().unwrap();
        assert_eq!((t1.raw(), t2.raw(), t3.raw()), (2, 5, 9));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10usize {
            q.push(Time::new(4), Event::ReceiveComplete { node: NodeId(i) });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::ReceiveComplete { node } => node.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
