//! Seeded, deterministic message-loss injection.
//!
//! The paper's model is fully deterministic — a scheduled send always
//! arrives. [`LossProfile`] adds the missing failure axis: each delivery
//! (original or repair retransmission) is independently lost with a
//! configured probability, optionally elevated during Gilbert-style burst
//! windows and overridden per receiver class.
//!
//! # The determinism contract for loss draws
//!
//! Every draw is a **pure keyed hash**, never a sequential RNG stream:
//!
//! * a delivery's loss draw is keyed by
//!   `(seed, session id, sender, receiver, attempt, send time)`,
//! * a burst-window draw by `(seed, session id, sender, time bucket)`,
//! * a retry-backoff jitter draw by `(seed, session id, receiver, attempt)`.
//!
//! None of the keys involve event-*processing* order, so the same offered
//! traffic produces the same losses regardless of how the surrounding
//! simulation is batched, sharded, partitioned into components or spread
//! over threads — the property the byte-identical report contract rests
//! on. (Burst windows are keyed by simulated time, which the kernel itself
//! computes deterministically.)
//!
//! A profile whose rates are all zero draws no losses at all, so fault
//! injection is strictly additive: a rate-0 lossy run is byte-identical to
//! a run with no loss configured.

use hnow_model::Time;
use hnow_workload::LossyPattern;
use serde::{Deserialize, Serialize};

/// Gilbert-style burst losses: windows of elevated loss probability.
///
/// For each `(session, sender, time bucket)` an independent keyed draw
/// decides whether the sender's link is inside a burst window; within a
/// window the loss probability is raised to [`BurstProfile::rate`] (never
/// lowered below the base rate). This models correlated outages — a busy
/// switch port, a cable hiccup — that iid loss cannot express, and is what
/// separates repairer placements: repairs funneled through one sender keep
/// redrawing inside the *same* burst windows, while distributed repairers
/// decorrelate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstProfile {
    /// Probability that any given `(session, sender, bucket)` window is
    /// bursting (clamped to `[0, 1]`).
    pub frequency: f64,
    /// Loss probability inside a burst window (clamped to `[0, 1]`; the
    /// effective rate is `max(base, rate)`).
    pub rate: f64,
    /// Width of a burst window in simulated time units (≥ 1).
    pub bucket: u64,
}

/// A complete, seeded description of injected message loss plus the repair
/// protocol's retry envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossProfile {
    /// Base iid probability that a delivery is lost (clamped to `[0, 1]`).
    pub rate: f64,
    /// Optional per-receiver-class overrides of the base rate (indexed by
    /// workstation class; classes beyond the vector keep the base rate).
    pub per_class: Option<Vec<f64>>,
    /// Optional burst windows layered over the base rate.
    pub burst: Option<BurstProfile>,
    /// Retransmissions a receiver may request before it is given up on and
    /// the session completes partially (graceful degradation).
    pub max_retries: u32,
    /// Base retry backoff in time units; attempt `a` waits
    /// `backoff << min(a − 1, 6)` plus keyed jitter in `[0, backoff]`.
    pub backoff: u64,
    /// Optional recovery-liveness bound: once a receiver first detects a
    /// missed delivery, any repair attempt issued (or still queued on a
    /// busy repairer) more than this many time units later gives the
    /// receiver up exactly like retry exhaustion. This is what makes
    /// repairer *placement* matter for residual loss: a congested repairer
    /// whose one-port queue outgrows the deadline sheds its repairs.
    pub repair_deadline: Option<u64>,
    /// Seed of every keyed draw.
    pub seed: u64,
}

impl LossProfile {
    /// A plain iid profile: the given loss rate, no class overrides, no
    /// bursts, 8 retries, backoff 4.
    pub fn iid(rate: f64, seed: u64) -> Self {
        LossProfile {
            rate,
            per_class: None,
            burst: None,
            max_retries: 8,
            backoff: 4,
            repair_deadline: None,
            seed,
        }
    }

    /// Adds burst windows to the profile.
    pub fn with_burst(mut self, burst: BurstProfile) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Whether the profile can ever lose a delivery. A lossless profile
    /// makes the kernel's fault path draw-free, which is what keeps a
    /// rate-0 run byte-identical to an unfaulted one.
    pub fn is_lossless(&self) -> bool {
        let base = self.rate <= 0.0;
        let classes = self
            .per_class
            .as_ref()
            .is_none_or(|rates| rates.iter().all(|&r| r <= 0.0));
        let burst = self
            .burst
            .is_none_or(|b| b.frequency <= 0.0 || b.rate <= 0.0);
        base && classes && burst
    }

    /// Whether the delivery `sender -> receiver` (tree-local ids) of
    /// `session`'s attempt `attempt` (0 = the original transmission,
    /// 1..=max_retries = repairs) sent at time `at` to a receiver of class
    /// `receiver_class` is lost.
    pub fn lost(
        &self,
        session: u64,
        sender: usize,
        receiver: usize,
        attempt: u32,
        at: Time,
        receiver_class: usize,
    ) -> bool {
        let mut rate = match &self.per_class {
            Some(rates) => rates.get(receiver_class).copied().unwrap_or(self.rate),
            None => self.rate,
        };
        if let Some(burst) = &self.burst {
            let bucket = at.raw() / burst.bucket.max(1);
            if unit(hash(&[self.seed, 0xb5, session, sender as u64, bucket])) < burst.frequency {
                rate = rate.max(burst.rate);
            }
        }
        unit(hash(&[
            self.seed,
            0x10,
            session,
            sender as u64,
            receiver as u64,
            attempt as u64,
            at.raw(),
        ])) < rate
    }

    /// The delay between receiving attempt `attempt`'s NACK and issuing the
    /// retransmission: exponential base backoff plus keyed jitter, so
    /// retries against one congested repairer spread out instead of
    /// re-colliding in lockstep.
    pub fn retry_delay(&self, session: u64, receiver: usize, attempt: u32) -> u64 {
        let base = self.backoff << attempt.saturating_sub(1).min(6);
        let jitter = if self.backoff == 0 {
            0
        } else {
            hash(&[self.seed, 0xde, session, receiver as u64, attempt as u64]) % (self.backoff + 1)
        };
        base + jitter
    }
}

impl From<&LossyPattern> for LossProfile {
    /// Lifts a workload-level [`LossyPattern`]'s loss parameters into the
    /// simulator's fault model (the workload crate cannot depend on this
    /// one, so the wrapper carries plain fields and this conversion binds
    /// them).
    fn from(pattern: &LossyPattern) -> Self {
        LossProfile {
            rate: pattern.rate,
            per_class: pattern.per_class.clone(),
            burst: (pattern.burst_frequency > 0.0).then_some(BurstProfile {
                frequency: pattern.burst_frequency,
                rate: pattern.burst_rate,
                bucket: pattern.burst_bucket,
            }),
            max_retries: pattern.max_retries,
            backoff: pattern.backoff,
            repair_deadline: pattern.repair_deadline,
            seed: pattern.fault_seed,
        }
    }
}

/// SplitMix64-style keyed hash over a word sequence: statistically uniform,
/// stable across platforms, and a pure function of its key.
fn hash(words: &[u64]) -> u64 {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for &w in words {
        state = mix(state ^ mix(w));
    }
    state
}

/// SplitMix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to `[0, 1)` with 53-bit precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_their_keys() {
        let profile = LossProfile::iid(0.3, 7);
        let a = profile.lost(3, 0, 5, 1, Time::new(100), 0);
        for _ in 0..5 {
            assert_eq!(profile.lost(3, 0, 5, 1, Time::new(100), 0), a);
        }
        // Any key component changes the draw stream somewhere.
        let draws = |f: &dyn Fn(u64) -> bool| (0..2000).map(f).filter(|&l| l).count();
        let base = draws(&|i| profile.lost(i, 0, 5, 1, Time::new(100), 0));
        let other_receiver = draws(&|i| profile.lost(i, 0, 6, 1, Time::new(100), 0));
        let other_attempt = draws(&|i| profile.lost(i, 0, 5, 2, Time::new(100), 0));
        assert!(base > 0);
        assert_ne!(
            (0..2000)
                .map(|i| profile.lost(i, 0, 5, 1, Time::new(100), 0))
                .collect::<Vec<_>>(),
            (0..2000)
                .map(|i| profile.lost(i, 0, 6, 1, Time::new(100), 0))
                .collect::<Vec<_>>(),
        );
        // Rates stay statistical, not positional.
        for count in [base, other_receiver, other_attempt] {
            assert!((400..800).contains(&count), "~30% of 2000, got {count}");
        }
    }

    #[test]
    fn zero_rate_never_loses_and_reports_lossless() {
        let profile = LossProfile::iid(0.0, 9);
        assert!(profile.is_lossless());
        for session in 0..100 {
            assert!(!profile.lost(session, 0, 1, 0, Time::new(session), 0));
        }
        assert!(!LossProfile::iid(0.1, 9).is_lossless());
        let bursty = LossProfile::iid(0.0, 9).with_burst(BurstProfile {
            frequency: 0.5,
            rate: 0.9,
            bucket: 16,
        });
        assert!(!bursty.is_lossless());
        let dead_burst = LossProfile::iid(0.0, 9).with_burst(BurstProfile {
            frequency: 0.0,
            rate: 0.9,
            bucket: 16,
        });
        assert!(dead_burst.is_lossless());
        let class_override = LossProfile {
            per_class: Some(vec![0.0, 0.2]),
            ..LossProfile::iid(0.0, 9)
        };
        assert!(!class_override.is_lossless());
    }

    #[test]
    fn per_class_overrides_apply_to_the_receiver_class() {
        let profile = LossProfile {
            per_class: Some(vec![0.0, 1.0]),
            ..LossProfile::iid(0.5, 3)
        };
        for session in 0..50 {
            assert!(!profile.lost(session, 0, 1, 0, Time::ZERO, 0));
            assert!(profile.lost(session, 0, 1, 0, Time::ZERO, 1));
            // A class beyond the override vector keeps the base rate.
            let _ = profile.lost(session, 0, 1, 0, Time::ZERO, 7);
        }
        let lost_base = (0..2000)
            .filter(|&s| profile.lost(s, 0, 1, 0, Time::ZERO, 7))
            .count();
        assert!((800..1200).contains(&lost_base), "base ~50%: {lost_base}");
    }

    #[test]
    fn burst_windows_elevate_losses_in_their_buckets() {
        let profile = LossProfile::iid(0.02, 11).with_burst(BurstProfile {
            frequency: 0.25,
            rate: 0.95,
            bucket: 32,
        });
        // Same edge and attempt across many time buckets: bursting buckets
        // lose far more often than the 2% base.
        let lost = (0..4000u64)
            .filter(|&b| profile.lost(1, 0, 2, 0, Time::new(b * 32), 0))
            .count();
        // Expectation ≈ 0.25·0.95 + 0.75·0.02 ≈ 0.25.
        assert!((700..1300).contains(&lost), "burst mixture, got {lost}");
        // Draws within one bucket share the window decision; the loss draw
        // itself still varies by attempt.
        let in_bucket: Vec<bool> = (0..4u32)
            .map(|attempt| profile.lost(1, 0, 2, attempt, Time::new(5), 0))
            .collect();
        assert_eq!(in_bucket.len(), 4);
    }

    #[test]
    fn retry_delay_grows_exponentially_with_bounded_jitter() {
        let profile = LossProfile::iid(0.1, 5);
        let base = profile.backoff;
        for attempt in 1..=12u32 {
            let d = profile.retry_delay(9, 3, attempt);
            let expected = base << attempt.saturating_sub(1).min(6);
            assert!(
                d >= expected && d <= expected + base,
                "attempt {attempt}: {d}"
            );
        }
        assert_eq!(
            profile.retry_delay(9, 3, 2),
            profile.retry_delay(9, 3, 2),
            "jitter is keyed, not sampled"
        );
        let zero = LossProfile {
            backoff: 0,
            ..profile
        };
        assert_eq!(zero.retry_delay(9, 3, 1), 0);
    }

    #[test]
    fn lossy_pattern_lifts_into_a_profile() {
        use hnow_workload::TrafficPattern;
        let pattern = LossyPattern::iid(TrafficPattern::poisson(8.0, 4), 0.05, 13);
        let profile = LossProfile::from(&pattern);
        assert_eq!(profile.rate, 0.05);
        assert_eq!(profile.seed, 13);
        assert!(profile.burst.is_none());
        let mut bursty = pattern;
        bursty.burst_frequency = 0.2;
        bursty.burst_rate = 0.8;
        bursty.burst_bucket = 64;
        let profile = LossProfile::from(&bursty);
        let burst = profile.burst.unwrap();
        assert_eq!(burst.frequency, 0.2);
        assert_eq!(burst.rate, 0.8);
        assert_eq!(burst.bucket, 64);
    }
}
