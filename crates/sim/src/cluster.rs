//! Sharded cluster service: a front-end dispatcher, per-shard traffic
//! engines, and gateway-stitched cross-shard multicast.
//!
//! One [`TrafficEngine`](crate::sessions::TrafficEngine) plans and
//! simulates every session against one flat pool; its per-session costs
//! (class signatures, busy bookkeeping, one global event heap primed with
//! every arrival) all scale with total cluster size. [`ShardedCluster`]
//! is the service-shaped alternative for large pools:
//!
//! 1. **Dispatch** — a [`ShardMap`] partitions the pool into class-aware
//!    shards; each [`SessionRequest`] is routed to the *home shard* of its
//!    source. Sessions whose members stay inside the home shard are served
//!    entirely by that shard.
//! 2. **Per-shard planning** — every shard owns a
//!    [`PlanContext`]/DP-cache and a *plan cache*: sessions reduce to their
//!    shard-local class signature, and all sessions sharing a signature
//!    reuse one planned tree shape (bound to their concrete nodes per
//!    session). Deterministic planners only; a seeded planner bypasses the
//!    plan cache.
//! 3. **Gateway stitching** — a session spanning shards is planned in two
//!    levels: a *gateway tree* over one designated gateway per touched
//!    shard (the source for the home shard; the fastest member, ties by
//!    lowest id, for remote shards), planned by the same registry planner
//!    over the gateway class vector, then one per-shard subtree rooted at
//!    each gateway. [`compose()`](hnow_core::schedule::compose::compose) grafts the subtrees
//!    onto the gateway tree and re-evaluates the stitched
//!    [`ScheduleTiming`](hnow_core::ScheduleTiming) from scratch, so the
//!    session's planned `R_T`/`D_T` obey the ordinary occupancy semantics
//!    and planned-vs-achieved accounting holds exactly as for flat
//!    sessions (in a zero-jitter, zero-contention run they are equal).
//! 4. **Component simulation** — admitted sessions are grouped by
//!    union-find over the *session-node contact graph*: two sessions
//!    sharing any pool node land in one component, so one hot shard can
//!    still split into independently simulable components and cross
//!    traffic only merges the sessions it actually connects. Each
//!    component compacts its nodes to a dense range and runs the crate's
//!    one shared occupancy kernel (`kernel`, the same loop behind the flat
//!    engine), so both surfaces obey a single documented same-instant
//!    tie-break rule. Components fan out over rayon's real worker threads
//!    and merge positionally, so the serialized report is byte-identical
//!    at every thread count.
//!
//! The result is a [`ShardedTrafficReport`]: per-session records (with
//! home shard and touched shards), per-shard and cross-shard aggregates
//! (all NaN-free via [`TrafficMetrics`]), and per-shard DP-cache
//! statistics. The whole pipeline is deterministic: the same `(pool,
//! config, requests)` produce a byte-identical serialized report.

use crate::error::SimError;
use crate::kernel;
use crate::sessions::{
    bind_node_map, children_lists, record_for, CacheStats, SessionRecord, SessionRuntime,
    TrafficConfig, TrafficMetrics,
};
use hnow_core::planner::{find, PlanContext, PlanRequest, Planner};
use hnow_core::schedule::compose::compose;
use hnow_core::ScheduleTree;
use hnow_model::{NetParams, NodeId, NodeSpec, Time, TypedMulticast};
use hnow_workload::{NodePool, SessionRequest, ShardMap};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Configuration of a [`ShardedCluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedClusterConfig {
    /// Number of shards the pool is partitioned into.
    pub shards: usize,
    /// Per-shard engine configuration (planner, batch size, DP-cache
    /// capacity). The same planner serves gateway trees.
    pub traffic: TrafficConfig,
    /// Whether per-shard plan caches reuse one planned tree shape across
    /// sessions with the same class signature. Ignored (treated as `false`)
    /// for planners that consume the request seed, whose plans are not a
    /// pure function of the signature.
    pub plan_cache: bool,
}

impl ShardedClusterConfig {
    /// `shards` shards with the default traffic config and plan caching on.
    pub fn with_shards(shards: usize) -> Self {
        ShardedClusterConfig {
            shards,
            traffic: TrafficConfig::default(),
            plan_cache: true,
        }
    }

    /// Same, with a named planner.
    pub fn for_planner(shards: usize, planner: &str) -> Self {
        ShardedClusterConfig {
            shards,
            traffic: TrafficConfig::for_planner(planner),
            plan_cache: true,
        }
    }
}

/// Aggregates of one shard's intra-shard traffic.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardReport {
    /// Shard id.
    pub shard: usize,
    /// Nodes owned by the shard.
    pub nodes: usize,
    /// NaN-free aggregates over the sessions homed (and contained) in this
    /// shard. The two node-utilization fields are the exception to the
    /// record-subset rule: they cover *all* work the shard's nodes
    /// performed — cross-shard sessions included — over the run-wide
    /// makespan, so they stay in `[0, 1]` and are meaningful even for a
    /// shard with no intra-shard sessions of its own.
    pub metrics: TrafficMetrics,
    /// The shard engine's DP-cache statistics.
    pub dp_cache: CacheStats,
    /// The shard's DP-cache hit rate (0, never NaN, when nothing was looked
    /// up — e.g. an empty shard or a non-DP planner).
    pub dp_hit_rate: f64,
    /// Distinct class signatures resident in the shard's plan cache after
    /// the run (0 when plan caching is off).
    pub plan_signatures: usize,
}

/// One session's record plus its routing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedSessionRecord {
    /// Home shard (the source's shard).
    pub home_shard: usize,
    /// Whether the session spanned more than the home shard.
    pub cross: bool,
    /// Touched shards, home first, then ascending.
    pub shards: Vec<usize>,
    /// The ordinary per-session record; for cross-shard sessions
    /// `planned_reception`/`planned_delivery` are the *stitched* analytic
    /// times of the composed two-level schedule.
    pub record: SessionRecord,
}

/// The serializable result of one sharded run. Deterministic per `(pool,
/// config, requests)` — byte-identical JSON across repeated runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedTrafficReport {
    /// Schema version of this artifact.
    pub schema: u32,
    /// Planner serving every shard and the gateway trees.
    pub planner: String,
    /// Number of shards.
    pub shards: usize,
    /// Whether per-shard plan caches were active.
    pub plan_cache: bool,
    /// Network latency `L`.
    pub net_latency: u64,
    /// Offered sessions.
    pub sessions: usize,
    /// Sessions that spanned at least two shards.
    pub cross_sessions: usize,
    /// `cross_sessions / sessions` (0 when no sessions were offered).
    pub observed_cross_fraction: f64,
    /// Number of independent simulation components the admitted sessions
    /// split into under session-node contact grouping (sessions sharing a
    /// pool node merge): 1 when cross traffic connects everything, at
    /// least the number of session-bearing shards when nothing crosses —
    /// and possibly more, since even one shard's sessions split when their
    /// node sets are disjoint.
    pub components: usize,
    /// Aggregates over every session, with utilization over every node.
    pub total: TrafficMetrics,
    /// Aggregates over cross-shard sessions only (utilization fields are 0
    /// here — cross sessions borrow nodes accounted to their shards).
    pub cross: TrafficMetrics,
    /// The dispatcher's DP-cache statistics (gateway-tree planning).
    pub gateway_dp_cache: CacheStats,
    /// Gateway DP-cache hit rate (0 when nothing was looked up).
    pub gateway_dp_hit_rate: f64,
    /// Per-shard aggregates, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// One record per offered session, in request order.
    pub per_session: Vec<ShardedSessionRecord>,
}

/// A planned tree shape shared by every session with one class signature.
struct CachedPlan {
    /// The abstract schedule tree (canonical instance numbering).
    tree: ScheduleTree,
    /// `tree`'s child lists, shared into each session's runtime.
    children: Arc<Vec<Vec<usize>>>,
    /// Tree node ids per class, for binding to concrete nodes.
    locals_by_class: Vec<Vec<NodeId>>,
    planned_reception: Time,
    planned_delivery: Time,
}

/// Plan-cache key: `(source class, per-class member counts)`.
type PlanKey = (usize, Vec<usize>);
/// Never iterated — only keyed lookups and `len()` (the report's
/// `plan_signatures`) — so HashMap ordering cannot leak into report bytes.
type PlanCache = HashMap<PlanKey, Arc<CachedPlan>>;
/// `(request index, runtime)` pairs of the sessions a worker admitted or
/// simulated.
type IndexedRuntimes = Vec<(usize, SessionRuntime)>;
/// One shard's admission outcome: its runtimes, DP context and plan cache.
type ShardOutcome = Result<(IndexedRuntimes, PlanContext, PlanCache), SimError>;

/// Routing metadata of one admitted session.
struct Routing {
    home: usize,
    cross: bool,
    /// Touched shards, home first, then ascending.
    shards: Vec<usize>,
}

/// Plans and simulates session streams over a sharded pool. See the
/// [module docs](self) for the architecture.
#[derive(Debug)]
pub struct ShardedCluster<'a> {
    pool: &'a NodePool,
    map: ShardMap,
    net: NetParams,
    config: ShardedClusterConfig,
}

impl<'a> ShardedCluster<'a> {
    /// Partitions `pool` into the configured number of shards.
    pub fn new(
        pool: &'a NodePool,
        net: NetParams,
        config: ShardedClusterConfig,
    ) -> Result<Self, SimError> {
        let map = ShardMap::partition(pool, config.shards).map_err(SimError::Sharding)?;
        Ok(ShardedCluster {
            pool,
            map,
            net,
            config,
        })
    }

    /// The shard partition in use.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Plans and simulates the given sessions (global node ids), returning
    /// the merged report.
    pub fn run(&self, requests: &[SessionRequest]) -> Result<ShardedTrafficReport, SimError> {
        let planner =
            find(&self.config.traffic.planner).ok_or_else(|| SimError::UnknownPlanner {
                name: self.config.traffic.planner.clone(),
            })?;
        let caching = self.config.plan_cache && !planner.capabilities().uses_seed;
        let shards = self.map.num_shards();
        let new_ctx = || match self.config.traffic.dp_cache_capacity {
            Some(cap) => PlanContext::with_dp_capacity(cap),
            None => PlanContext::new(),
        };

        // Dispatch: validate ids and split into per-shard intra lists and
        // the cross list. Local requests carry shard-local node ids.
        let mut intra: Vec<Vec<(usize, SessionRequest)>> = vec![Vec::new(); shards];
        let mut cross: Vec<usize> = Vec::new();
        let mut routing: Vec<Routing> = Vec::with_capacity(requests.len());
        // Stamp buffer for duplicate detection: O(group) per session
        // instead of an O(pool) refill.
        let mut stamp = vec![0u32; self.pool.len()];
        let mut generation = 0u32;
        for (idx, request) in requests.iter().enumerate() {
            generation += 1;
            self.check_ids(request, &mut stamp, generation)?;
            let home = self.map.shard_of(request.source);
            let mut touched: Vec<usize> = request
                .members
                .iter()
                .map(|&m| self.map.shard_of(m))
                .filter(|&s| s != home)
                .collect();
            touched.sort_unstable();
            touched.dedup();
            let is_cross = !touched.is_empty();
            let mut shards_touched = Vec::with_capacity(touched.len() + 1);
            shards_touched.push(home);
            shards_touched.extend(touched);
            routing.push(Routing {
                home,
                cross: is_cross,
                shards: shards_touched,
            });
            if is_cross {
                cross.push(idx);
            } else {
                intra[home].push((
                    idx,
                    SessionRequest {
                        id: request.id,
                        arrival: request.arrival,
                        source: self.map.locate(request.source).1,
                        members: request
                            .members
                            .iter()
                            .map(|&m| self.map.locate(m).1)
                            .collect(),
                        patience: request.patience,
                    },
                ));
            }
        }

        // Per-shard intra-shard planning, fanned over rayon. Each shard owns
        // its PlanContext and plan cache; results are merged positionally,
        // so thread scheduling never leaks into the output.
        let shard_work: Vec<(usize, &Vec<(usize, SessionRequest)>)> =
            intra.iter().enumerate().collect();
        let shard_outcomes: Vec<ShardOutcome> = shard_work
            .par_iter()
            .map(|&(s, batch)| {
                let ctx = new_ctx();
                let mut cache: PlanCache = PlanCache::new();
                let pool = self.map.shard(s);
                let mut runtimes = Vec::with_capacity(batch.len());
                for (idx, local) in batch.iter() {
                    let cached = planned_for(
                        planner,
                        pool,
                        local,
                        &ctx,
                        caching.then_some(&mut cache),
                        self.net,
                    )?;
                    let mut runtime = runtime_from(pool, local, &cached);
                    // Rebase the node map onto global ids for simulation.
                    for node in &mut runtime.node_map {
                        *node = self.map.global_of(s, *node);
                    }
                    runtimes.push((*idx, runtime));
                }
                Ok((runtimes, ctx, cache))
            })
            .collect();
        let mut shard_ctxs: Vec<PlanContext> = Vec::with_capacity(shards);
        let mut shard_caches: Vec<PlanCache> = Vec::with_capacity(shards);
        let mut runtimes: Vec<Option<SessionRuntime>> = Vec::with_capacity(requests.len());
        runtimes.resize_with(requests.len(), || None);
        for outcome in shard_outcomes {
            let (shard_runtimes, ctx, cache) = outcome?;
            for (idx, runtime) in shard_runtimes {
                runtimes[idx] = Some(runtime);
            }
            shard_ctxs.push(ctx);
            shard_caches.push(cache);
        }

        // Cross-shard sessions: gateway tree + per-shard subtrees, stitched.
        let gateway_ctx = new_ctx();
        let mut gateway_cache: PlanCache = PlanCache::new();
        for &idx in &cross {
            let runtime = self.admit_cross(
                planner,
                &requests[idx],
                &routing[idx],
                &gateway_ctx,
                caching.then_some(&mut gateway_cache),
                &shard_ctxs,
                &mut shard_caches,
                caching,
            )?;
            runtimes[idx] = Some(runtime);
        }

        // Group sessions into simulation components over the session-node
        // contact graph: sessions sharing any pool node must share one
        // event heap, while node-disjoint components simulate independently
        // with outcomes identical to one global pass.
        let mut dsu = Dsu::new(self.pool.len());
        for runtime in &runtimes {
            let runtime = runtime.as_ref().expect("every session was admitted");
            let first = runtime.node_map[0];
            for &node in &runtime.node_map[1..] {
                dsu.union(first, node);
            }
        }
        // Component slots are assigned in first-appearance order over the
        // request-ordered session vector, so the HashMap's iteration order
        // never influences the output.
        let mut component_of_root: HashMap<usize, usize> = HashMap::new();
        let mut component_sessions: Vec<IndexedRuntimes> = Vec::new();
        for (idx, runtime) in runtimes.into_iter().enumerate() {
            let runtime = runtime.expect("every session was admitted");
            let root = dsu.find(runtime.node_map[0]);
            let slot = *component_of_root.entry(root).or_insert_with(|| {
                component_sessions.push(Vec::new());
                component_sessions.len() - 1
            });
            component_sessions[slot].push((idx, runtime));
        }
        let components = component_sessions.len();

        // Simulate each component through the shared occupancy kernel,
        // fanned over rayon's workers. Sessions stay in request order
        // within their component and each component's nodes compact to a
        // dense range, so the kernel sees the same `(specs, sessions)`
        // input — and results merge positionally — regardless of how many
        // threads dispatched the components.
        let specs: Vec<NodeSpec> = (0..self.pool.len())
            .map(|g| self.pool.spec_of_node(g))
            .collect();
        let simulated: Vec<(IndexedRuntimes, Vec<(usize, u64)>)> = component_sessions
            .into_par_iter()
            .map(|sessions| {
                let mut nodes: Vec<usize> = sessions
                    .iter()
                    .flat_map(|(_, runtime)| runtime.node_map.iter().copied())
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                let dense_specs: Vec<NodeSpec> = nodes.iter().map(|&g| specs[g]).collect();
                let (idxs, mut locals): (Vec<usize>, Vec<SessionRuntime>) =
                    sessions.into_iter().unzip();
                for runtime in &mut locals {
                    for node in &mut runtime.node_map {
                        *node = nodes
                            .binary_search(node)
                            .expect("a session's nodes are in its component");
                    }
                }
                let busy = kernel::simulate(&dense_specs, self.net, &mut locals);
                let sparse: Vec<(usize, u64)> = nodes.into_iter().zip(busy).collect();
                let sessions: IndexedRuntimes = idxs.into_iter().zip(locals).collect();
                (sessions, sparse)
            })
            .collect();
        let mut busy_time = vec![0u64; self.pool.len()];
        let mut records: Vec<Option<ShardedSessionRecord>> = Vec::with_capacity(requests.len());
        records.resize_with(requests.len(), || None);
        for (sessions, busy) in simulated {
            for (node, b) in busy {
                busy_time[node] += b;
            }
            for (idx, runtime) in sessions {
                let route = &routing[idx];
                records[idx] = Some(ShardedSessionRecord {
                    home_shard: route.home,
                    cross: route.cross,
                    shards: route.shards.clone(),
                    record: record_for(&requests[idx], &runtime),
                });
            }
        }
        let per_session: Vec<ShardedSessionRecord> = records
            .into_iter()
            .map(|r| r.expect("every session was simulated"))
            .collect();

        Ok(self.report(
            per_session,
            &busy_time,
            &shard_ctxs,
            &shard_caches,
            &gateway_ctx,
            components,
        ))
    }

    /// Validates that a request's node ids are in range and distinct, using
    /// a caller-provided stamp buffer (a node is "seen" when its stamp
    /// equals the current generation).
    fn check_ids(
        &self,
        request: &SessionRequest,
        stamp: &mut [u32],
        generation: u32,
    ) -> Result<(), SimError> {
        let n = self.pool.len();
        if request.source >= n {
            return Err(SimError::MalformedSession { id: request.id });
        }
        stamp[request.source] = generation;
        for &member in &request.members {
            if member >= n || stamp[member] == generation {
                return Err(SimError::MalformedSession { id: request.id });
            }
            stamp[member] = generation;
        }
        Ok(())
    }

    /// Plans one cross-shard session: gateway tree over the designated
    /// gateways, one subtree per touched shard, composed and bound to
    /// global ids.
    #[allow(clippy::too_many_arguments)]
    fn admit_cross(
        &self,
        planner: &'static dyn Planner,
        request: &SessionRequest,
        route: &Routing,
        gateway_ctx: &PlanContext,
        gateway_cache: Option<&mut PlanCache>,
        shard_ctxs: &[PlanContext],
        shard_caches: &mut [PlanCache],
        caching: bool,
    ) -> Result<SessionRuntime, SimError> {
        // Members per touched shard. Keyed access only, but a BTreeMap
        // keeps even accidental iteration deterministic.
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &m in &request.members {
            by_shard.entry(self.map.shard_of(m)).or_default().push(m);
        }
        // Gateway selection: the source at home; elsewhere the fastest
        // member (ties by lowest global id). Members are collected in
        // ascending-id order per shard, so `min_by` with speed_cmp-then-id
        // is deterministic.
        let mut gateways: Vec<usize> = Vec::with_capacity(route.shards.len() - 1);
        for &s in &route.shards[1..] {
            let members = &by_shard[&s];
            let gw = *members
                .iter()
                .min_by(|&&a, &&b| {
                    self.pool
                        .spec_of_node(a)
                        .speed_cmp(&self.pool.spec_of_node(b))
                        .then(a.cmp(&b))
                })
                .expect("a touched shard has at least one member");
            gateways.push(gw);
        }

        // Level 1: the gateway tree over the gateway class vector.
        let gateway_request = SessionRequest {
            id: request.id,
            arrival: request.arrival,
            source: request.source,
            members: gateways.clone(),
            patience: None,
        };
        let gateway_plan = planned_for(
            planner,
            self.pool,
            &gateway_request,
            gateway_ctx,
            gateway_cache,
            self.net,
        )?;
        // Gateway-tree node id -> global gateway id.
        let gateway_binding = bind_node_map(
            self.pool,
            request.source,
            &gateways,
            &gateway_plan.locals_by_class,
        );

        // Level 2: one subtree per gateway-tree node, rooted at its gateway.
        let mut subtree_plans: Vec<Arc<CachedPlan>> = Vec::with_capacity(gateway_binding.len());
        let mut subtree_bindings: Vec<Vec<usize>> = Vec::with_capacity(gateway_binding.len());
        for &gw in &gateway_binding {
            let (s, local_gw) = self.map.locate(gw);
            let shard_pool = self.map.shard(s);
            // At home the source is the gateway (it is never a member), so
            // the filter keeps every home member; on remote shards it
            // removes the member promoted to gateway.
            let local_members: Vec<usize> = by_shard
                .get(&s)
                .map(|members| {
                    members
                        .iter()
                        .copied()
                        .filter(|&m| m != gw)
                        .map(|m| self.map.locate(m).1)
                        .collect()
                })
                .unwrap_or_default();
            let plan = if local_members.is_empty() {
                Arc::new(trivial_plan())
            } else {
                let local_request = SessionRequest {
                    id: request.id,
                    arrival: request.arrival,
                    source: local_gw,
                    members: local_members.clone(),
                    patience: None,
                };
                planned_for(
                    planner,
                    shard_pool,
                    &local_request,
                    &shard_ctxs[s],
                    caching.then_some(&mut shard_caches[s]),
                    self.net,
                )?
            };
            // Subtree-local tree id -> global id.
            let local_binding =
                bind_node_map(shard_pool, local_gw, &local_members, &plan.locals_by_class);
            subtree_bindings.push(
                local_binding
                    .into_iter()
                    .map(|l| self.map.global_of(s, l))
                    .collect(),
            );
            subtree_plans.push(plan);
        }

        // Stitch, re-evaluating the timing from scratch.
        let spec_vectors: Vec<Vec<NodeSpec>> = subtree_bindings
            .iter()
            .map(|binding| binding.iter().map(|&g| self.pool.spec_of_node(g)).collect())
            .collect();
        let subtrees: Vec<(&ScheduleTree, &[NodeSpec])> = subtree_plans
            .iter()
            .zip(&spec_vectors)
            .map(|(plan, specs)| (&plan.tree, specs.as_slice()))
            .collect();
        let composed = compose(&gateway_plan.tree, &subtrees, self.net)?;

        // Bind composed ids to global nodes.
        let mut node_map = vec![usize::MAX; composed.tree.num_nodes()];
        for (i, map) in composed.maps.iter().enumerate() {
            for (l, &composed_id) in map.iter().enumerate() {
                node_map[composed_id.index()] = subtree_bindings[i][l];
            }
        }
        debug_assert_eq!(node_map[0], request.source);
        Ok(SessionRuntime {
            arrival: request.arrival,
            deadline: request.patience.map(|p| request.arrival.saturating_add(p)),
            node_map,
            children: Arc::new(children_lists(&composed.tree)),
            planned_reception: composed.timing.reception_completion(),
            planned_delivery: composed.timing.delivery_completion(),
            started: None,
            abandoned: false,
            pending: request.members.len(),
            completed_at: request.arrival,
            delivered_at: request.arrival,
        })
    }

    /// Assembles the merged report.
    fn report(
        &self,
        per_session: Vec<ShardedSessionRecord>,
        busy_time: &[u64],
        shard_ctxs: &[PlanContext],
        shard_caches: &[PlanCache],
        gateway_ctx: &PlanContext,
        components: usize,
    ) -> ShardedTrafficReport {
        let total = TrafficMetrics::from_records(per_session.iter().map(|s| &s.record), busy_time);
        let cross_records: Vec<&SessionRecord> = per_session
            .iter()
            .filter(|s| s.cross)
            .map(|s| &s.record)
            .collect();
        let cross_sessions = cross_records.len();
        let cross = TrafficMetrics::from_records(cross_records, &[]);
        let per_shard: Vec<ShardReport> = (0..self.map.num_shards())
            .map(|s| {
                let records = per_session
                    .iter()
                    .filter(|r| !r.cross && r.home_shard == s)
                    .map(|r| &r.record);
                let shard_busy: Vec<u64> = self
                    .map
                    .globals_of(s)
                    .iter()
                    .map(|&g| busy_time[g])
                    .collect();
                let dp_cache = CacheStats::from_context(&shard_ctxs[s]);
                let mut metrics = TrafficMetrics::from_records(records, &shard_busy);
                // The shard's nodes also serve cross-shard sessions, whose
                // completions are not in this record subset — utilization
                // must therefore be taken over the run-wide makespan, or a
                // cross-heavy shard whose intra traffic finished early
                // would report a ratio above 1.
                let (mean_util, peak_util) =
                    TrafficMetrics::utilization_over(&shard_busy, total.makespan);
                metrics.mean_node_utilization = mean_util;
                metrics.peak_node_utilization = peak_util;
                ShardReport {
                    shard: s,
                    nodes: self.map.shard(s).len(),
                    metrics,
                    dp_cache,
                    dp_hit_rate: dp_cache.hit_rate(),
                    plan_signatures: shard_caches[s].len(),
                }
            })
            .collect();
        let gateway_dp_cache = CacheStats::from_context(gateway_ctx);
        ShardedTrafficReport {
            schema: 1,
            planner: self.config.traffic.planner.clone(),
            shards: self.map.num_shards(),
            plan_cache: self.config.plan_cache,
            net_latency: self.net.latency().raw(),
            sessions: per_session.len(),
            cross_sessions,
            observed_cross_fraction: if per_session.is_empty() {
                0.0
            } else {
                cross_sessions as f64 / per_session.len() as f64
            },
            components,
            total,
            cross,
            gateway_dp_cache,
            gateway_dp_hit_rate: gateway_dp_cache.hit_rate(),
            per_shard,
            per_session,
        }
    }
}

/// Returns the (possibly cached) plan shape for a request's class
/// signature over `pool`. Node ids must already be validated (the
/// dispatcher checks them once, globally); the signature is computed in
/// `O(group + k)` so a cache hit costs no planner work at all.
fn planned_for(
    planner: &'static dyn Planner,
    pool: &NodePool,
    request: &SessionRequest,
    ctx: &PlanContext,
    cache: Option<&mut PlanCache>,
    net: NetParams,
) -> Result<Arc<CachedPlan>, SimError> {
    let mut counts = vec![0usize; pool.k()];
    for &member in &request.members {
        counts[pool.class_of(member)] += 1;
    }
    let key: PlanKey = (pool.class_of(request.source), counts);
    if let Some(cache) = &cache {
        if let Some(cached) = cache.get(&key) {
            return Ok(Arc::clone(cached));
        }
    }
    let typed =
        TypedMulticast::new(pool.specs().to_vec(), key.0, key.1.clone()).map_err(|error| {
            SimError::Instance {
                session: request.id,
                error,
            }
        })?;
    let set = typed
        .to_multicast_set()
        .map_err(|error| SimError::Instance {
            session: request.id,
            error,
        })?;
    let plan_request = PlanRequest::new(set, net).with_seed(request.id);
    let plan = planner.plan_with(&plan_request, ctx)?;
    let cached = Arc::new(CachedPlan {
        children: Arc::new(children_lists(&plan.tree)),
        locals_by_class: typed.node_ids_by_class(),
        planned_reception: plan.timing.reception_completion(),
        planned_delivery: plan.timing.delivery_completion(),
        tree: plan.tree,
    });
    if let Some(cache) = cache {
        cache.insert(key, Arc::clone(&cached));
    }
    Ok(cached)
}

/// The one-node plan of a gateway with nothing local to serve.
fn trivial_plan() -> CachedPlan {
    CachedPlan {
        tree: ScheduleTree::new(1),
        children: Arc::new(vec![Vec::new()]),
        locals_by_class: Vec::new(),
        planned_reception: Time::ZERO,
        planned_delivery: Time::ZERO,
    }
}

/// Builds an intra-shard session's runtime from a cached plan shape.
fn runtime_from(pool: &NodePool, request: &SessionRequest, cached: &CachedPlan) -> SessionRuntime {
    SessionRuntime {
        arrival: request.arrival,
        deadline: request.patience.map(|p| request.arrival.saturating_add(p)),
        node_map: bind_node_map(
            pool,
            request.source,
            &request.members,
            &cached.locals_by_class,
        ),
        children: Arc::clone(&cached.children),
        planned_reception: cached.planned_reception,
        planned_delivery: cached.planned_delivery,
        started: None,
        abandoned: false,
        pending: request.members.len(),
        completed_at: request.arrival,
        delivered_at: request.arrival,
    }
}

/// Deterministic union-find over pool node ids (the session-node contact
/// graph).
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.0[root] != root {
            root = self.0[root];
        }
        let mut cur = x;
        while self.0[cur] != root {
            let next = self.0[cur];
            self.0[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Smaller root wins, so component identity is order-independent.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        self.0[hi] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessions::TrafficEngine;
    use hnow_workload::{default_message_size, two_class_table, ShardedPattern};

    fn pool() -> NodePool {
        NodePool::new(two_class_table(), default_message_size(), &[12, 8]).unwrap()
    }

    /// Sharded requests with arrivals spaced far beyond any completion
    /// time: zero contention.
    fn spaced_requests(pool: &NodePool, shards: usize, frac: f64, n: usize) -> Vec<SessionRequest> {
        let map = ShardMap::partition(pool, shards).unwrap();
        let pattern = ShardedPattern::poisson(5.0, 4, frac);
        let mut requests = pattern.generate(&map, n, 21).unwrap();
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = Time::new(i as u64 * 1_000_000);
            r.patience = None;
        }
        requests
    }

    #[test]
    fn uncontended_sessions_match_their_stitched_analytic_times() {
        let pool = pool();
        let requests = spaced_requests(&pool, 4, 0.5, 24);
        for planner in ["greedy", "greedy+leaf", "dp-optimal", "chain"] {
            let cluster = ShardedCluster::new(
                &pool,
                NetParams::new(2),
                ShardedClusterConfig::for_planner(4, planner),
            )
            .unwrap();
            let report = cluster.run(&requests).unwrap();
            assert_eq!(report.total.completed, 24);
            assert!(report.cross_sessions > 0, "the mix must include cross");
            for s in &report.per_session {
                assert_eq!(
                    s.record.reception_latency,
                    s.record.planned_reception,
                    "{planner}: session {} diverged from its {} analytic R_T",
                    s.record.id,
                    if s.cross { "stitched" } else { "flat" }
                );
                assert_eq!(
                    s.record.delivery_latency, s.record.planned_delivery,
                    "{planner}: session {} diverged from analytic D_T",
                    s.record.id
                );
                assert_eq!(s.record.queue_delay, 0);
            }
        }
    }

    #[test]
    fn uncontended_intra_sessions_match_the_flat_engine() {
        // With zero contention and zero cross traffic, the sharded service
        // must reproduce the flat engine's per-session results exactly —
        // shard-local planning sees the same class signatures.
        let pool = pool();
        let requests = spaced_requests(&pool, 4, 0.0, 20);
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(2),
            ShardedClusterConfig::with_shards(4),
        )
        .unwrap();
        let sharded = cluster.run(&requests).unwrap();
        let flat = TrafficEngine::new(&pool, NetParams::new(2), TrafficConfig::default())
            .run(&requests)
            .unwrap();
        assert!(
            sharded.components >= 4,
            "no cross traffic: the four shards' node sets cannot merge (got {})",
            sharded.components
        );
        for (s, f) in sharded.per_session.iter().zip(&flat.per_session) {
            assert!(!s.cross);
            assert_eq!(s.record, *f);
        }
    }

    #[test]
    fn reports_are_byte_identical_per_seed() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let pattern = ShardedPattern::poisson(6.0, 5, 0.3);
        let requests = pattern.generate(&map, 120, 42).unwrap();
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(2),
            ShardedClusterConfig::with_shards(4),
        )
        .unwrap();
        let a = serde_json::to_string(&cluster.run(&requests).unwrap()).unwrap();
        let b = serde_json::to_string(&cluster.run(&requests).unwrap()).unwrap();
        assert_eq!(a, b, "same requests must serialize byte-identically");
        let other = pattern.generate(&map, 120, 43).unwrap();
        let c = serde_json::to_string(&cluster.run(&other).unwrap()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn plan_cache_never_changes_results() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let requests = ShardedPattern::poisson(3.0, 5, 0.25)
            .generate(&map, 150, 9)
            .unwrap();
        let run = |plan_cache: bool, planner: &str| {
            let config = ShardedClusterConfig {
                shards: 4,
                traffic: TrafficConfig::for_planner(planner),
                plan_cache,
            };
            ShardedCluster::new(&pool, NetParams::new(2), config)
                .unwrap()
                .run(&requests)
                .unwrap()
        };
        for planner in ["greedy+leaf", "dp-optimal"] {
            let cached = run(true, planner);
            let uncached = run(false, planner);
            assert_eq!(cached.per_session, uncached.per_session, "{planner}");
            assert!(
                cached.per_shard.iter().any(|s| s.plan_signatures > 0),
                "{planner}: the cache must have been populated"
            );
            assert!(uncached.per_shard.iter().all(|s| s.plan_signatures == 0));
        }
        // A seeded planner silently bypasses the cache but stays
        // deterministic.
        let a = run(true, "random");
        let b = run(true, "random");
        assert_eq!(a.per_session, b.per_session);
        assert!(a.per_shard.iter().all(|s| s.plan_signatures == 0));
    }

    /// Reference component count: union-find over the session-node contact
    /// graph, computed straight from the requests (source + members are
    /// exactly the nodes each session's runtime touches).
    fn contact_components(pool: &NodePool, requests: &[SessionRequest]) -> usize {
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            root
        }
        let mut parent: Vec<usize> = (0..pool.len()).collect();
        for request in requests {
            for &member in &request.members {
                let (a, b) = (find(&mut parent, request.source), find(&mut parent, member));
                parent[a.max(b)] = a.min(b);
            }
        }
        let mut roots: Vec<usize> = requests
            .iter()
            .map(|request| find(&mut parent, request.source))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    #[test]
    fn one_shard_cluster_matches_the_flat_engine_exactly() {
        // The flat-vs-sharded parity regression: a 1-shard cluster with no
        // cross traffic is the flat engine behind a dispatcher, so every
        // per-session achieved R_T, D_T and queue delay must be identical
        // — including under contention and churn, where the pre-unification
        // engines' same-instant tie-breaks diverged.
        let pool = pool();
        let map = ShardMap::partition(&pool, 1).unwrap();
        let mut requests = ShardedPattern::poisson(2.0, 5, 0.0)
            .generate(&map, 80, 11)
            .unwrap();
        // Compress arrivals into a stampede and make a third impatient.
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = Time::new(i as u64 / 4);
            r.patience = (i % 3 == 0).then_some(Time::new(40));
        }
        for planner in ["greedy+leaf", "dp-optimal"] {
            let cluster = ShardedCluster::new(
                &pool,
                NetParams::new(2),
                ShardedClusterConfig::for_planner(1, planner),
            )
            .unwrap();
            let sharded = cluster.run(&requests).unwrap();
            let flat = TrafficEngine::new(
                &pool,
                NetParams::new(2),
                TrafficConfig::for_planner(planner),
            )
            .run(&requests)
            .unwrap();
            assert!(
                sharded.per_session.iter().any(|s| s.record.abandoned),
                "{planner}: the stampede must exercise the churn gate"
            );
            assert!(
                sharded.per_session.iter().any(|s| s.record.queue_delay > 0),
                "{planner}: the stampede must exercise contention"
            );
            assert_eq!(sharded.per_session.len(), flat.per_session.len());
            for (s, f) in sharded.per_session.iter().zip(&flat.per_session) {
                assert!(!s.cross);
                assert_eq!(s.record, *f, "{planner}: flat/sharded parity");
            }
        }
    }

    #[test]
    fn cross_traffic_merges_simulation_components() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let intra_only = ShardedPattern::poisson(5.0, 4, 0.0)
            .generate(&map, 60, 5)
            .unwrap();
        let mixed = ShardedPattern::poisson(5.0, 4, 0.5)
            .generate(&map, 60, 5)
            .unwrap();
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(2),
            ShardedClusterConfig::with_shards(4),
        )
        .unwrap();
        let separate = cluster.run(&intra_only).unwrap();
        assert_eq!(separate.components, contact_components(&pool, &intra_only));
        assert!(
            separate.components >= 4,
            "intra-only sessions cannot merge across shard node sets"
        );
        assert_eq!(separate.cross_sessions, 0);
        assert_eq!(separate.observed_cross_fraction, 0.0);
        let merged = cluster.run(&mixed).unwrap();
        assert!(merged.cross_sessions > 0);
        assert_eq!(merged.components, contact_components(&pool, &mixed));
        assert!(
            merged.components < separate.components,
            "cross sessions connect shard node sets"
        );
        // Routing metadata is consistent with the shard map.
        for (request, record) in mixed.iter().zip(&merged.per_session) {
            assert_eq!(
                record.home_shard,
                cluster.shard_map().shard_of(request.source)
            );
            assert_eq!(record.cross, cluster.shard_map().is_cross_shard(request));
            assert_eq!(record.shards[0], record.home_shard);
            assert!(record.shards.len() >= if record.cross { 2 } else { 1 });
        }
    }

    #[test]
    fn empty_shards_report_nan_free_zeros() {
        let pool = pool();
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(2),
            ShardedClusterConfig::with_shards(4),
        )
        .unwrap();
        // Every session lives entirely in shard 0 (nodes 0, 4, 8, …).
        let shard0: Vec<usize> = cluster.shard_map().globals_of(0).to_vec();
        let requests: Vec<SessionRequest> = (0..6)
            .map(|i| SessionRequest {
                id: i,
                arrival: Time::new(i * 100_000),
                source: shard0[i as usize % shard0.len()],
                members: shard0
                    .iter()
                    .copied()
                    .filter(|&g| g != shard0[i as usize % shard0.len()])
                    .take(3)
                    .collect(),
                patience: None,
            })
            .collect();
        let report = cluster.run(&requests).unwrap();
        assert_eq!(report.per_shard[0].metrics.sessions, 6);
        for shard in &report.per_shard[1..] {
            assert_eq!(shard.metrics.sessions, 0);
            assert_eq!(shard.metrics.throughput_per_kilotick, 0.0);
            assert_eq!(shard.metrics.mean_reception_latency, 0.0);
            assert_eq!(shard.metrics.mean_node_utilization, 0.0);
            assert_eq!(shard.dp_hit_rate, 0.0);
        }
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("NaN"), "empty shards must serialize clean");
    }

    #[test]
    fn shard_utilization_stays_in_unit_range_under_cross_heavy_load() {
        // Shard 1 serves *only* cross-shard work: its intra record subset is
        // empty, but its nodes are busy. Utilization must be taken over the
        // run-wide makespan — positive, and never above 1.
        let pool = pool();
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(2),
            ShardedClusterConfig::with_shards(2),
        )
        .unwrap();
        let shard0 = cluster.shard_map().globals_of(0).to_vec();
        let shard1 = cluster.shard_map().globals_of(1).to_vec();
        let requests: Vec<SessionRequest> = (0..8)
            .map(|i| SessionRequest {
                id: i,
                arrival: Time::new(i * 5),
                source: shard0[i as usize % shard0.len()],
                members: vec![
                    shard1[i as usize % shard1.len()],
                    shard1[(i as usize + 1) % shard1.len()],
                ],
                patience: None,
            })
            .collect();
        let report = cluster.run(&requests).unwrap();
        assert_eq!(report.cross_sessions, 8);
        let remote = &report.per_shard[1];
        assert_eq!(remote.metrics.sessions, 0, "no intra sessions homed here");
        assert!(
            remote.metrics.mean_node_utilization > 0.0,
            "cross work on the shard's nodes must show up"
        );
        for shard in &report.per_shard {
            assert!(shard.metrics.mean_node_utilization <= 1.0 + 1e-9);
            assert!(shard.metrics.peak_node_utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn churn_applies_to_sharded_sessions() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 2).unwrap();
        let mut requests = ShardedPattern::poisson(1.0, 6, 0.4)
            .generate(&map, 40, 9)
            .unwrap();
        for r in &mut requests {
            r.arrival = Time::ZERO;
            r.patience = Some(Time::new(1));
        }
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(2),
            ShardedClusterConfig::with_shards(2),
        )
        .unwrap();
        let report = cluster.run(&requests).unwrap();
        assert!(report.total.abandoned > 0, "a stampede with tiny patience");
        assert_eq!(report.total.completed + report.total.abandoned, 40);
        for s in report.per_session.iter().filter(|s| s.record.abandoned) {
            assert_eq!(s.record.started, None);
            assert_eq!(s.record.reception_latency, 0);
        }
    }

    #[test]
    fn config_errors_are_reported() {
        let pool = pool();
        assert!(matches!(
            ShardedCluster::new(
                &pool,
                NetParams::new(1),
                ShardedClusterConfig::with_shards(0)
            ),
            Err(SimError::Sharding(_))
        ));
        assert!(matches!(
            ShardedCluster::new(
                &pool,
                NetParams::new(1),
                ShardedClusterConfig::with_shards(pool.len() + 1)
            ),
            Err(SimError::Sharding(_))
        ));
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(1),
            ShardedClusterConfig::for_planner(2, "no-such-planner"),
        )
        .unwrap();
        let requests = spaced_requests(&pool, 2, 0.0, 2);
        assert!(matches!(
            cluster.run(&requests),
            Err(SimError::UnknownPlanner { .. })
        ));
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(1),
            ShardedClusterConfig::with_shards(2),
        )
        .unwrap();
        let mut bad = spaced_requests(&pool, 2, 0.0, 2);
        bad[1].members = vec![bad[1].source];
        assert!(matches!(
            cluster.run(&bad),
            Err(SimError::MalformedSession { id }) if id == bad[1].id
        ));
        let mut oob = spaced_requests(&pool, 2, 0.0, 1);
        oob[0].members = vec![pool.len()];
        assert!(matches!(
            cluster.run(&oob),
            Err(SimError::MalformedSession { .. })
        ));
    }

    #[test]
    fn contention_delays_but_never_loses_sharded_sessions() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 2).unwrap();
        let mut requests = ShardedPattern::poisson(5.0, 5, 0.3)
            .generate(&map, 40, 3)
            .unwrap();
        for r in &mut requests {
            r.arrival = Time::ZERO;
            r.patience = None;
        }
        let cluster = ShardedCluster::new(
            &pool,
            NetParams::new(2),
            ShardedClusterConfig::with_shards(2),
        )
        .unwrap();
        let report = cluster.run(&requests).unwrap();
        assert_eq!(report.total.completed, 40);
        assert_eq!(report.total.abandoned, 0);
        assert!(
            report
                .per_session
                .iter()
                .any(|s| s.record.reception_latency > s.record.planned_reception),
            "40 simultaneous sessions on 20 nodes cannot all run contention-free"
        );
        assert!(report.total.peak_node_utilization > 0.0);
        assert!(report.total.peak_node_utilization <= 1.0 + 1e-9);
    }
}
