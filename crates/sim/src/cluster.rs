//! Sharded cluster service: a front-end dispatcher, per-shard traffic
//! engines, and gateway-stitched cross-shard multicast.
//!
//! One [`TrafficEngine`](crate::sessions::TrafficEngine) plans and
//! simulates every session against one flat pool; its per-session costs
//! (class signatures, busy bookkeeping, one global event heap primed with
//! every arrival) all scale with total cluster size. [`ShardedCluster`]
//! is the service-shaped alternative for large pools:
//!
//! 1. **Dispatch** — a [`ShardMap`] partitions the pool into class-aware
//!    shards; each [`SessionRequest`] is routed to the *home shard* of its
//!    source. Sessions whose members stay inside the home shard are served
//!    entirely by that shard.
//! 2. **Per-shard planning** — every shard owns a
//!    [`PlanContext`]/DP-cache and a *plan cache*: sessions reduce to their
//!    shard-local class signature, and all sessions sharing a signature
//!    reuse one planned tree shape (bound to their concrete nodes per
//!    session). Deterministic planners only; a seeded planner bypasses the
//!    plan cache.
//! 3. **Gateway stitching** — a session spanning shards is planned in two
//!    levels: a *gateway tree* over one designated gateway per touched
//!    shard (the source for the home shard; the fastest member, ties by
//!    lowest id, for remote shards), planned by the same registry planner
//!    over the gateway class vector, then one per-shard subtree rooted at
//!    each gateway. [`compose()`](hnow_core::schedule::compose::compose) grafts the subtrees
//!    onto the gateway tree and re-evaluates the stitched
//!    [`ScheduleTiming`](hnow_core::ScheduleTiming) from scratch, so the
//!    session's planned `R_T`/`D_T` obey the ordinary occupancy semantics
//!    and planned-vs-achieved accounting holds exactly as for flat
//!    sessions (in a zero-jitter, zero-contention run they are equal).
//! 4. **Component simulation** — admitted sessions are grouped by
//!    union-find over the *session-node contact graph*: two sessions
//!    sharing any pool node land in one component, so one hot shard can
//!    still split into independently simulable components and cross
//!    traffic only merges the sessions it actually connects. Each
//!    component compacts its nodes to a dense range and runs the crate's
//!    one shared occupancy kernel (`kernel`, the same loop behind the flat
//!    engine), so both surfaces obey a single documented same-instant
//!    tie-break rule. Components fan out over rayon's real worker threads
//!    and merge positionally, so the serialized report is byte-identical
//!    at every thread count.
//!
//! The result is a [`ShardedTrafficReport`]: per-session records (with
//! home shard and touched shards), per-shard and cross-shard aggregates
//! (all NaN-free via [`TrafficMetrics`]), and per-shard DP-cache
//! statistics. The whole pipeline is deterministic: the same `(pool,
//! config, requests)` produce a byte-identical serialized report.
//!
//! # The control plane
//!
//! With a [`ControlConfig`] the cluster stops being a batch replayer and
//! becomes an online service loop: requests are consumed in fixed-size
//! **epochs**, and between epochs the control plane observes and acts.
//!
//! * **Admission** ([`hnow_control::admission`]) — within each epoch,
//!   admitted sessions execute shortest-planned-`R_T`-first among
//!   same-instant arrivals, and sessions whose *predicted* queue delay
//!   (from per-node busy horizons carried across epochs) already exceeds
//!   their churn patience are shed before any planning effort is wasted
//!   on simulation. Every session gets an explicit
//!   `admitted`/`reordered`/`shed` decision in the report.
//! * **Rebalancing** ([`hnow_control::rebalance`]) — a hysteresis
//!   controller watches per-shard mean queue delay; when the hot/cold
//!   divergence crosses the enter threshold, it migrates nodes (class-
//!   aware, deterministic tie-breaks) from the hottest to the coldest
//!   shard via [`ShardMap::migrate`], invalidating only the plan-cache
//!   entries the shrunken shard can no longer satisfy.
//! * **Gateway policy** ([`hnow_control::policy`]) — cross-shard gateway
//!   election is pluggable: the fastest-member baseline, a load-aware
//!   variant reading carried busy horizons, or a stitched-`R_T` estimate
//!   minimizer, selected by name.
//!
//! Epochs couple through per-node busy horizons: each epoch's kernel run
//! starts from the carried horizons and returns the next carry, so load
//! admitted in epoch `e` delays epoch `e + 1` exactly as a service queue
//! would. These *epoch-synchronous* semantics are intentionally not the
//! batch path's one-global-pass semantics — a session arriving in a later
//! epoch cannot overtake work already committed, even if its arrival time
//! precedes an earlier epoch's completion. Within one configuration the
//! loop keeps the full determinism contract: byte-identical serialized
//! reports per `(pool, config, requests)` at every thread count.

use crate::error::SimError;
use crate::kernel;
use crate::sessions::{
    bind_node_map, children_lists, record_for, CacheStats, ReliabilityReport, SessionRecord,
    SessionRuntime, StreamingReport, TraceDest, TrafficConfig, TrafficMetrics,
};
use hnow_control::{
    admit, find_policy, AdmissionDecision, AdmissionIntent, GatewayCandidate, GatewayPolicy,
    Rebalancer,
};
use hnow_core::planner::{find, PlanContext, PlanRequest, Planner};
use hnow_core::schedule::compose::compose;
use hnow_core::{RepairPlacement, ScheduleTree};
use hnow_model::{NetParams, NodeId, NodeSpec, Time, TypedMulticast};
use hnow_telemetry::{Recorder, TelemetryConfig, TelemetryReport, TraceEvent, TraceEventKind};
use hnow_workload::{NodePool, SessionRequest, ShardMap};

pub use hnow_control::RebalanceConfig;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Configuration of a [`ShardedCluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedClusterConfig {
    /// Number of shards the pool is partitioned into.
    pub shards: usize,
    /// Per-shard engine configuration (planner, batch size, DP-cache
    /// capacity). The same planner serves gateway trees.
    pub traffic: TrafficConfig,
    /// Whether per-shard plan caches reuse one planned tree shape across
    /// sessions with the same class signature. Ignored (treated as `false`)
    /// for planners that consume the request seed, whose plans are not a
    /// pure function of the signature.
    pub plan_cache: bool,
    /// LRU capacity of each plan cache (`None` = unbounded). Evictions and
    /// hit rates surface per shard in the report.
    pub plan_cache_capacity: Option<usize>,
    /// Online control plane; `None` runs the original batch pipeline.
    pub control: Option<ControlConfig>,
}

impl ShardedClusterConfig {
    /// Turns on the online control plane.
    pub fn with_control(mut self, control: ControlConfig) -> Self {
        self.control = Some(control);
        self
    }
}

/// Configuration of the online control loop (see the
/// [module docs](self#the-control-plane)).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlConfig {
    /// Sessions consumed per epoch (clamped to at least 1). Smaller epochs
    /// react faster but amortize less planning.
    pub epoch: usize,
    /// Whether the admission controller reorders and sheds within epochs.
    /// Off, every session is admitted in submission order.
    pub admission: bool,
    /// Gateway-election policy by name (see
    /// [`hnow_control::policies()`](hnow_control::policies)).
    pub policy: String,
    /// Shard rebalancer; `None` keeps the partition static.
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            epoch: 64,
            admission: true,
            policy: "fastest-member".to_string(),
            rebalance: None,
        }
    }
}

/// Aggregates of one shard's intra-shard traffic.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardReport {
    /// Shard id.
    pub shard: usize,
    /// Nodes owned by the shard.
    pub nodes: usize,
    /// NaN-free aggregates over the sessions homed (and contained) in this
    /// shard. The two node-utilization fields are the exception to the
    /// record-subset rule: they cover *all* work the shard's nodes
    /// performed — cross-shard sessions included — over the run-wide
    /// makespan, so they stay in `[0, 1]` and are meaningful even for a
    /// shard with no intra-shard sessions of its own.
    pub metrics: TrafficMetrics,
    /// The shard engine's DP-cache statistics.
    pub dp_cache: CacheStats,
    /// The shard's DP-cache hit rate (0, never NaN, when nothing was looked
    /// up — e.g. an empty shard or a non-DP planner).
    pub dp_hit_rate: f64,
    /// The shard's plan-cache statistics (all zeros when caching is off).
    /// Evictions count both LRU pressure and rebalancing invalidations.
    pub plan_cache: CacheStats,
    /// Distinct class signatures resident in the shard's plan cache after
    /// the run (0 when plan caching is off).
    pub plan_signatures: usize,
}

/// One session's record plus its routing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedSessionRecord {
    /// Home shard (the source's shard).
    pub home_shard: usize,
    /// Whether the session spanned more than the home shard.
    pub cross: bool,
    /// Touched shards, home first, then ascending.
    pub shards: Vec<usize>,
    /// The ordinary per-session record; for cross-shard sessions
    /// `planned_reception`/`planned_delivery` are the *stitched* analytic
    /// times of the composed two-level schedule.
    pub record: SessionRecord,
}

/// The serializable result of one sharded run. Deterministic per `(pool,
/// config, requests)` — byte-identical JSON across repeated runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedTrafficReport {
    /// Schema version of this artifact.
    pub schema: u32,
    /// Planner serving every shard and the gateway trees.
    pub planner: String,
    /// Number of shards.
    pub shards: usize,
    /// Whether per-shard plan caches were active.
    pub plan_cache: bool,
    /// Network latency `L`.
    pub net_latency: u64,
    /// Offered sessions.
    pub sessions: usize,
    /// Sessions that spanned at least two shards.
    pub cross_sessions: usize,
    /// `cross_sessions / sessions` (0 when no sessions were offered).
    pub observed_cross_fraction: f64,
    /// Number of independent simulation components the admitted sessions
    /// split into under session-node contact grouping (sessions sharing a
    /// pool node merge): 1 when cross traffic connects everything, at
    /// least the number of session-bearing shards when nothing crosses —
    /// and possibly more, since even one shard's sessions split when their
    /// node sets are disjoint.
    pub components: usize,
    /// Aggregates over every session, with utilization over every node.
    pub total: TrafficMetrics,
    /// Aggregates over cross-shard sessions only (utilization fields are 0
    /// here — cross sessions borrow nodes accounted to their shards).
    pub cross: TrafficMetrics,
    /// Loss, repair and degradation aggregates over every session
    /// (all-zero/fixed-point on lossless runs).
    pub reliability: ReliabilityReport,
    /// Streaming aggregates over every session (all-zero/fixed-point on
    /// atomic runs).
    pub streaming: StreamingReport,
    /// The dispatcher's DP-cache statistics (gateway-tree planning).
    pub gateway_dp_cache: CacheStats,
    /// Gateway DP-cache hit rate (0 when nothing was looked up).
    pub gateway_dp_hit_rate: f64,
    /// The dispatcher's plan-cache statistics (gateway trees).
    pub gateway_plan_cache: CacheStats,
    /// Control-plane accounting; `None` for batch runs.
    pub control: Option<ControlPlaneReport>,
    /// Per-shard aggregates, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// One record per offered session, in request order.
    pub per_session: Vec<ShardedSessionRecord>,
    /// Fixed-window time series over the run's trace (schema 5); present
    /// only when the run config attached a
    /// [`TelemetryConfig::with_timeseries`](hnow_telemetry::TelemetryConfig::with_timeseries)
    /// window. Kept last so untraced reports differ from their schema-4
    /// ancestors only in this trailing field.
    pub telemetry: Option<TelemetryReport>,
}

/// One node migration committed by the rebalancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MigrationRecord {
    /// Epoch after which the move was committed (0-based).
    pub epoch: usize,
    /// Global id of the migrated node.
    pub node: usize,
    /// Source (hot) shard.
    pub from: usize,
    /// Destination (cold) shard.
    pub to: usize,
    /// Workstation class of the node.
    pub class: usize,
}

/// What the control plane decided and did over one run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ControlPlaneReport {
    /// Gateway policy that served cross-shard elections.
    pub policy: String,
    /// Whether the admission controller was active.
    pub admission: bool,
    /// Whether the rebalancer was active.
    pub rebalance: bool,
    /// Sessions consumed per epoch.
    pub epoch: usize,
    /// Sessions admitted at their submission rank.
    pub admitted: usize,
    /// Sessions admitted but executed at a different rank.
    pub reordered: usize,
    /// Sessions shed by predicted queue delay exceeding patience.
    pub shed: usize,
    /// Plan-cache entries invalidated by shard migrations.
    pub plan_cache_invalidations: usize,
    /// Committed node migrations, in commit order.
    pub migrations: Vec<MigrationRecord>,
    /// Per-session decision labels (`admitted`/`reordered`/`shed`), in
    /// request order.
    pub decisions: Vec<String>,
}

/// A planned tree shape shared by every session with one class signature.
struct CachedPlan {
    /// The abstract schedule tree (canonical instance numbering).
    tree: ScheduleTree,
    /// `tree`'s child lists, shared into each session's runtime.
    children: Arc<Vec<Vec<usize>>>,
    /// Tree node ids per class, for binding to concrete nodes.
    locals_by_class: Vec<Vec<NodeId>>,
    /// Repairer assignment over the tree's local ids (`Some` only on lossy
    /// runs; the policy is constant per run, so it cannot split cache
    /// keys).
    repairer: Option<Arc<Vec<usize>>>,
    planned_reception: Time,
    planned_delivery: Time,
}

/// Plan-cache key: `(source class, per-class member counts)`.
type PlanKey = (usize, Vec<usize>);

/// LRU cache of planned tree shapes keyed by class signature.
///
/// The map is never iterated for output — only keyed lookups, `len()` (the
/// report's `plan_signatures`) and evictions — and eviction picks the
/// entry with the *unique* minimum use stamp, so HashMap iteration order
/// cannot leak into report bytes.
struct PlanCache {
    map: HashMap<PlanKey, (u64, Arc<CachedPlan>)>,
    /// Monotone use counter; every stamp in `map` is distinct.
    clock: u64,
    capacity: Option<usize>,
    lookups: usize,
    hits: usize,
    misses: usize,
    evictions: usize,
}

impl PlanCache {
    fn new(capacity: Option<usize>) -> Self {
        PlanCache {
            map: HashMap::new(),
            clock: 0,
            capacity,
            lookups: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a signature, counting the hit or miss and refreshing the
    /// entry's use stamp.
    fn get(&mut self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        self.lookups += 1;
        match self.map.get_mut(key) {
            Some((stamp, plan)) => {
                self.hits += 1;
                self.clock += 1;
                *stamp = self.clock;
                Some(Arc::clone(plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly planned shape, evicting least-recently-used
    /// entries while over capacity.
    fn insert(&mut self, key: PlanKey, plan: Arc<CachedPlan>) {
        self.clock += 1;
        self.map.insert(key, (self.clock, plan));
        if let Some(cap) = self.capacity {
            let cap = cap.max(1);
            while self.map.len() > cap {
                let oldest = self
                    .map
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(key, _)| key.clone())
                    .expect("cache over capacity is non-empty");
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
    }

    /// Drops every entry matching `pred`, counting the drops as evictions,
    /// and returns how many were dropped (rebalancing invalidation).
    fn evict_where(&mut self, mut pred: impl FnMut(&PlanKey) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|key, _| !pred(key));
        let dropped = before - self.map.len();
        self.evictions += dropped;
        dropped
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}
/// `(request index, runtime)` pairs of the sessions a worker admitted or
/// simulated.
type IndexedRuntimes = Vec<(usize, SessionRuntime)>;
/// One shard's admission outcome: its runtimes, DP context and plan cache.
type ShardOutcome = Result<(IndexedRuntimes, PlanContext, PlanCache), SimError>;

/// Routing metadata of one admitted session.
struct Routing {
    home: usize,
    cross: bool,
    /// Touched shards, home first, then ascending.
    shards: Vec<usize>,
}

/// Plans and simulates session streams over a sharded pool. See the
/// [module docs](self) for the architecture.
#[derive(Debug)]
pub struct ShardedCluster<'a> {
    pool: &'a NodePool,
    map: ShardMap,
    net: NetParams,
    config: ShardedClusterConfig,
    threads: Option<usize>,
    telemetry: Option<TelemetryConfig>,
}

impl<'a> ShardedCluster<'a> {
    /// Partitions `pool` per the unified
    /// [`RunConfig`](crate::config::RunConfig) surface. A flat config
    /// (`shards == 0`) is clamped to one shard, which reproduces the flat
    /// engine behind a dispatcher.
    pub fn with_config(
        pool: &'a NodePool,
        net: NetParams,
        config: &crate::config::RunConfig,
    ) -> Result<Self, SimError> {
        let threads = config.threads;
        let telemetry = config.telemetry.clone();
        let config = config.cluster();
        let map = ShardMap::partition(pool, config.shards).map_err(SimError::Sharding)?;
        Ok(ShardedCluster {
            pool,
            map,
            net,
            config,
            threads,
            telemetry,
        })
    }

    /// The shard partition in use.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Plans and simulates the given sessions (global node ids), returning
    /// the merged report. With [`ShardedClusterConfig::control`] set, runs
    /// the epoch-synchronous control loop instead of the batch pipeline.
    /// With [`RunConfig::threads`](crate::config::RunConfig::threads)
    /// pinned, the whole run executes on a dedicated rayon pool of that
    /// size — the report is byte-identical at every thread count.
    pub fn run(&self, requests: &[SessionRequest]) -> Result<ShardedTrafficReport, SimError> {
        crate::config::install_pool(self.threads, || match self.config.control.clone() {
            Some(control) => self.run_controlled(requests, &control),
            None => self.run_batch(requests),
        })?
    }

    /// The repairer-placement policy for plan annotation — `Some` only
    /// when loss injection is configured.
    fn repair_policy(&self) -> Option<RepairPlacement> {
        self.config
            .traffic
            .loss
            .as_ref()
            .map(|_| self.config.traffic.repair)
    }

    /// The original batch pipeline: plan everything, simulate one global
    /// pass, report.
    fn run_batch(&self, requests: &[SessionRequest]) -> Result<ShardedTrafficReport, SimError> {
        let planner =
            find(&self.config.traffic.planner).ok_or_else(|| SimError::UnknownPlanner {
                name: self.config.traffic.planner.clone(),
            })?;
        let caching = self.config.plan_cache && !planner.capabilities().uses_seed;
        let shards = self.map.num_shards();
        let new_ctx = || match self.config.traffic.dp_cache_capacity {
            Some(cap) => PlanContext::with_dp_capacity(cap),
            None => PlanContext::new(),
        };
        let profiler = self.telemetry.as_ref().and_then(|t| t.profiler.clone());
        let trace = TraceDest::from(self.telemetry.as_ref());
        let shard_of: Vec<usize> = match &trace {
            Some(_) => (0..self.pool.len()).map(|g| self.map.shard_of(g)).collect(),
            None => Vec::new(),
        };
        let plan_span = profiler.as_ref().map(|p| p.span("plan"));

        // Dispatch: validate ids and split into per-shard intra lists and
        // the cross list. Local requests carry shard-local node ids.
        let mut intra: Vec<Vec<(usize, SessionRequest)>> = vec![Vec::new(); shards];
        let mut cross: Vec<usize> = Vec::new();
        let mut routing: Vec<Routing> = Vec::with_capacity(requests.len());
        // Stamp buffer for duplicate detection: O(group) per session
        // instead of an O(pool) refill.
        let mut stamp = vec![0u32; self.pool.len()];
        let mut generation = 0u32;
        for (idx, request) in requests.iter().enumerate() {
            generation += 1;
            self.check_ids(request, &mut stamp, generation)?;
            let route = route_for(&self.map, request);
            let home = route.home;
            let is_cross = route.cross;
            routing.push(route);
            if is_cross {
                cross.push(idx);
            } else {
                intra[home].push((idx, localize(&self.map, request)));
            }
        }

        // Per-shard intra-shard planning, fanned over rayon. Each shard owns
        // its PlanContext and plan cache; results are merged positionally,
        // so thread scheduling never leaks into the output.
        let shard_work: Vec<(usize, &Vec<(usize, SessionRequest)>)> =
            intra.iter().enumerate().collect();
        let shard_outcomes: Vec<ShardOutcome> = shard_work
            .par_iter()
            .map(|&(s, batch)| {
                let ctx = new_ctx();
                let mut cache = PlanCache::new(self.config.plan_cache_capacity);
                let pool = self.map.shard(s);
                let mut runtimes = Vec::with_capacity(batch.len());
                for (idx, local) in batch.iter() {
                    let cached = planned_for(
                        planner,
                        pool,
                        local,
                        &ctx,
                        caching.then_some(&mut cache),
                        self.net,
                        self.repair_policy(),
                    )?;
                    let mut runtime = runtime_from(pool, local, &cached);
                    runtime.apply_chunks(local.chunks.or(self.config.traffic.chunks));
                    // Rebase the node map onto global ids for simulation.
                    for node in &mut runtime.node_map {
                        *node = self.map.global_of(s, *node);
                    }
                    runtimes.push((*idx, runtime));
                }
                Ok((runtimes, ctx, cache))
            })
            .collect();
        let mut shard_ctxs: Vec<PlanContext> = Vec::with_capacity(shards);
        let mut shard_caches: Vec<PlanCache> = Vec::with_capacity(shards);
        let mut runtimes: Vec<Option<SessionRuntime>> = Vec::with_capacity(requests.len());
        runtimes.resize_with(requests.len(), || None);
        for outcome in shard_outcomes {
            let (shard_runtimes, ctx, cache) = outcome?;
            for (idx, runtime) in shard_runtimes {
                runtimes[idx] = Some(runtime);
            }
            shard_ctxs.push(ctx);
            shard_caches.push(cache);
        }

        // Cross-shard sessions: gateway tree + per-shard subtrees, stitched.
        let gateway_ctx = new_ctx();
        let mut gateway_cache = PlanCache::new(self.config.plan_cache_capacity);
        for &idx in &cross {
            let runtime = self.admit_cross(
                planner,
                &self.map,
                &requests[idx],
                &routing[idx],
                &gateway_ctx,
                caching.then_some(&mut gateway_cache),
                &shard_ctxs,
                &mut shard_caches,
                caching,
                None,
            )?;
            runtimes[idx] = Some(runtime);
        }
        drop(plan_span);
        let bind_span = profiler.as_ref().map(|p| p.span("bind"));

        // Group sessions into simulation components over the session-node
        // contact graph: sessions sharing any pool node must share one
        // event heap, while node-disjoint components simulate independently
        // with outcomes identical to one global pass.
        let mut dsu = Dsu::new(self.pool.len());
        for runtime in &runtimes {
            let runtime = runtime.as_ref().expect("every session was admitted");
            let first = runtime.node_map[0];
            for &node in &runtime.node_map[1..] {
                dsu.union(first, node);
            }
        }
        // Component slots are assigned in first-appearance order over the
        // request-ordered session vector, so the HashMap's iteration order
        // never influences the output.
        let mut component_of_root: HashMap<usize, usize> = HashMap::new();
        let mut component_sessions: Vec<IndexedRuntimes> = Vec::new();
        for (idx, runtime) in runtimes.into_iter().enumerate() {
            let runtime = runtime.expect("every session was admitted");
            let root = dsu.find(runtime.node_map[0]);
            let slot = *component_of_root.entry(root).or_insert_with(|| {
                component_sessions.push(Vec::new());
                component_sessions.len() - 1
            });
            component_sessions[slot].push((idx, runtime));
        }
        let components = component_sessions.len();
        drop(bind_span);
        let simulate_span = profiler.as_ref().map(|p| p.span("simulate"));

        // Simulate each component through the shared occupancy kernel,
        // fanned over rayon's workers. Sessions stay in request order
        // within their component and each component's nodes compact to a
        // dense range, so the kernel sees the same `(specs, sessions)`
        // input — and results merge positionally — regardless of how many
        // threads dispatched the components.
        let specs: Vec<NodeSpec> = (0..self.pool.len())
            .map(|g| self.pool.spec_of_node(g))
            .collect();
        let simulated: Vec<(IndexedRuntimes, Vec<(usize, u64)>)> = component_sessions
            .into_par_iter()
            .map(|sessions| {
                let mut nodes: Vec<usize> = sessions
                    .iter()
                    .flat_map(|(_, runtime)| runtime.node_map.iter().copied())
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                let dense_specs: Vec<NodeSpec> = nodes.iter().map(|&g| specs[g]).collect();
                let dense_class: Vec<usize> =
                    nodes.iter().map(|&g| self.pool.class_of(g)).collect();
                let (idxs, mut locals): (Vec<usize>, Vec<SessionRuntime>) =
                    sessions.into_iter().unzip();
                for runtime in &mut locals {
                    for node in &mut runtime.node_map {
                        *node = nodes
                            .binary_search(node)
                            .expect("a session's nodes are in its component");
                    }
                }
                let faults = self
                    .config
                    .traffic
                    .loss
                    .as_ref()
                    .map(|profile| kernel::FaultCtx {
                        profile,
                        class_of: &dense_class,
                    });
                // Per-component recorder: dense node ids become global,
                // globals gain their shard, and every worker fans into the
                // same order-independent sinks.
                let recorder = trace.as_ref().map(|t| {
                    Recorder::fanout(t.sinks())
                        .with_node_map(&nodes)
                        .with_shards(&shard_of)
                });
                let busy = kernel::simulate(
                    &dense_specs,
                    self.net,
                    &mut locals,
                    faults.as_ref(),
                    recorder.as_ref(),
                );
                let sparse: Vec<(usize, u64)> = nodes.into_iter().zip(busy).collect();
                let sessions: IndexedRuntimes = idxs.into_iter().zip(locals).collect();
                (sessions, sparse)
            })
            .collect();
        let mut busy_time = vec![0u64; self.pool.len()];
        let mut records: Vec<Option<ShardedSessionRecord>> = Vec::with_capacity(requests.len());
        records.resize_with(requests.len(), || None);
        for (sessions, busy) in simulated {
            for (node, b) in busy {
                busy_time[node] += b;
            }
            for (idx, runtime) in sessions {
                let route = &routing[idx];
                records[idx] = Some(ShardedSessionRecord {
                    home_shard: route.home,
                    cross: route.cross,
                    shards: route.shards.clone(),
                    record: record_for(&requests[idx], &runtime),
                });
            }
        }
        let per_session: Vec<ShardedSessionRecord> = records
            .into_iter()
            .map(|r| r.expect("every session was simulated"))
            .collect();
        drop(simulate_span);
        let telemetry = trace.and_then(|t| {
            let sizes: Vec<usize> = (0..shards).map(|s| self.map.shard(s).len()).collect();
            t.report(&sizes)
        });

        Ok(self.report(
            &self.map,
            per_session,
            &busy_time,
            &shard_ctxs,
            &shard_caches,
            &gateway_ctx,
            &gateway_cache,
            components,
            None,
            telemetry,
        ))
    }

    /// The epoch-synchronous control loop (see the
    /// [module docs](self#the-control-plane)): per epoch, plan → admit →
    /// simulate from carried busy horizons, then maybe rebalance.
    fn run_controlled(
        &self,
        requests: &[SessionRequest],
        control: &ControlConfig,
    ) -> Result<ShardedTrafficReport, SimError> {
        let planner =
            find(&self.config.traffic.planner).ok_or_else(|| SimError::UnknownPlanner {
                name: self.config.traffic.planner.clone(),
            })?;
        let policy = find_policy(&control.policy).ok_or_else(|| SimError::UnknownPolicy {
            name: control.policy.clone(),
        })?;
        let caching = self.config.plan_cache && !planner.capabilities().uses_seed;
        let shards = self.map.num_shards();
        let new_ctx = || match self.config.traffic.dp_cache_capacity {
            Some(cap) => PlanContext::with_dp_capacity(cap),
            None => PlanContext::new(),
        };
        let profiler = self.telemetry.as_ref().and_then(|t| t.profiler.clone());
        let trace = TraceDest::from(self.telemetry.as_ref());
        // Admission decisions carry no node, so one run-wide recorder
        // (no remap) serves every epoch.
        let decision_recorder = trace.as_ref().map(|t| Recorder::fanout(t.sinks()));

        // Long-lived state: the (mutable) partition, per-shard DP contexts
        // and plan caches, and the per-node busy horizons coupling epochs.
        let mut map = self.map.clone();
        let shard_ctxs: Vec<PlanContext> = (0..shards).map(|_| new_ctx()).collect();
        let mut shard_caches: Vec<PlanCache> = (0..shards)
            .map(|_| PlanCache::new(self.config.plan_cache_capacity))
            .collect();
        let gateway_ctx = new_ctx();
        let mut gateway_cache = PlanCache::new(self.config.plan_cache_capacity);
        let specs: Vec<NodeSpec> = (0..self.pool.len())
            .map(|g| self.pool.spec_of_node(g))
            .collect();
        let mut busy_until = vec![Time::ZERO; self.pool.len()];
        let mut busy_time = vec![0u64; self.pool.len()];

        let mut records: Vec<Option<ShardedSessionRecord>> = Vec::with_capacity(requests.len());
        records.resize_with(requests.len(), || None);
        let mut decisions: Vec<&'static str> = vec![""; requests.len()];
        let mut rebalancer = control.rebalance.clone().map(Rebalancer::new);
        let mut migrations: Vec<MigrationRecord> = Vec::new();
        let mut invalidations = 0usize;
        let mut components_total = 0usize;
        let (mut n_admitted, mut n_reordered, mut n_shed) = (0usize, 0usize, 0usize);
        let mut stamp = vec![0u32; self.pool.len()];
        let mut generation = 0u32;

        let epoch_len = control.epoch.max(1);
        let epochs = requests.len().div_ceil(epoch_len);
        for (epoch_no, batch) in requests.chunks(epoch_len).enumerate() {
            let base = epoch_no * epoch_len;

            // Plan every session of the epoch against the *current* map,
            // in submission order (plan caches make repeats cheap).
            let plan_span = profiler.as_ref().map(|p| p.span("plan"));
            let mut routes: Vec<Routing> = Vec::with_capacity(batch.len());
            let mut runtimes: Vec<SessionRuntime> = Vec::with_capacity(batch.len());
            for request in batch {
                generation += 1;
                self.check_ids(request, &mut stamp, generation)?;
                let route = route_for(&map, request);
                let runtime = if route.cross {
                    self.admit_cross(
                        planner,
                        &map,
                        request,
                        &route,
                        &gateway_ctx,
                        caching.then_some(&mut gateway_cache),
                        &shard_ctxs,
                        &mut shard_caches,
                        caching,
                        Some((policy, busy_until.as_slice())),
                    )?
                } else {
                    let s = route.home;
                    let local = localize(&map, request);
                    let cached = planned_for(
                        planner,
                        map.shard(s),
                        &local,
                        &shard_ctxs[s],
                        caching.then_some(&mut shard_caches[s]),
                        self.net,
                        self.repair_policy(),
                    )?;
                    let mut runtime = runtime_from(map.shard(s), &local, &cached);
                    runtime.apply_chunks(local.chunks.or(self.config.traffic.chunks));
                    for node in &mut runtime.node_map {
                        *node = map.global_of(s, *node);
                    }
                    runtime
                };
                routes.push(route);
                runtimes.push(runtime);
            }
            drop(plan_span);

            // Admission: reorder same-instant arrivals shortest-planned-R_T
            // first and shed sessions already doomed by their patience.
            let admit_span = profiler.as_ref().map(|p| p.span("admit"));
            let (order, epoch_decisions) = if control.admission {
                let intents: Vec<AdmissionIntent> = runtimes
                    .iter()
                    .map(|runtime| AdmissionIntent {
                        arrival: runtime.arrival.raw(),
                        deadline: runtime.deadline.map(|d| d.raw()),
                        planned_reception: runtime.planned_reception.raw(),
                        source: runtime.node_map[0],
                        charges: charges_for(runtime, &specs),
                    })
                    .collect();
                let mut clock: Vec<u64> = busy_until.iter().map(|t| t.raw()).collect();
                let outcome = admit(&intents, &mut clock);
                (outcome.order, outcome.decisions)
            } else {
                (
                    (0..runtimes.len()).collect(),
                    vec![AdmissionDecision::Admitted; runtimes.len()],
                )
            };
            for (j, decision) in epoch_decisions.iter().enumerate() {
                decisions[base + j] = decision.label();
                let kind = match decision {
                    AdmissionDecision::Admitted => {
                        n_admitted += 1;
                        TraceEventKind::Admitted
                    }
                    AdmissionDecision::Reordered => {
                        n_reordered += 1;
                        TraceEventKind::Reordered
                    }
                    AdmissionDecision::Shed => {
                        n_shed += 1;
                        runtimes[j].abandoned = true;
                        TraceEventKind::Shed
                    }
                };
                if let Some(recorder) = decision_recorder.as_ref() {
                    // Stamped with the session's arrival: the decision is
                    // taken at epoch granularity, but arrival is the
                    // deterministic sim-time instant it concerns.
                    recorder.emit(TraceEvent::new(
                        runtimes[j].arrival.raw(),
                        kind,
                        runtimes[j].id,
                    ));
                }
            }
            drop(admit_span);
            let bind_span = profiler.as_ref().map(|p| p.span("bind"));

            // Contact-group the admitted sessions and simulate each
            // component from the carried busy horizons. Execution order —
            // the kernel's slice-position tie-break — is the admission
            // order, which is how reordering takes effect.
            let mut dsu = Dsu::new(self.pool.len());
            for &j in &order {
                let runtime = &runtimes[j];
                let first = runtime.node_map[0];
                for &node in &runtime.node_map[1..] {
                    dsu.union(first, node);
                }
            }
            let mut component_of_root: HashMap<usize, usize> = HashMap::new();
            let mut component_sessions: Vec<IndexedRuntimes> = Vec::new();
            let mut slots: Vec<Option<SessionRuntime>> = runtimes.into_iter().map(Some).collect();
            for &j in &order {
                let runtime = slots[j].take().expect("admission order has no duplicates");
                let root = dsu.find(runtime.node_map[0]);
                let slot = *component_of_root.entry(root).or_insert_with(|| {
                    component_sessions.push(Vec::new());
                    component_sessions.len() - 1
                });
                component_sessions[slot].push((j, runtime));
            }
            components_total += component_sessions.len();
            drop(bind_span);
            let simulate_span = profiler.as_ref().map(|p| p.span("simulate"));
            // The partition migrates between epochs, so the global→shard
            // map is rebuilt per epoch: traced events carry the shard that
            // owned their node *when they happened*.
            let shard_of: Vec<usize> = match &trace {
                Some(_) => (0..self.pool.len()).map(|g| map.shard_of(g)).collect(),
                None => Vec::new(),
            };

            type Simulated = (IndexedRuntimes, Vec<(usize, u64, Time)>);
            let simulated: Vec<Simulated> = component_sessions
                .into_par_iter()
                .map(|sessions| {
                    let mut nodes: Vec<usize> = sessions
                        .iter()
                        .flat_map(|(_, runtime)| runtime.node_map.iter().copied())
                        .collect();
                    nodes.sort_unstable();
                    nodes.dedup();
                    let dense_specs: Vec<NodeSpec> = nodes.iter().map(|&g| specs[g]).collect();
                    let dense_class: Vec<usize> =
                        nodes.iter().map(|&g| self.pool.class_of(g)).collect();
                    let dense_busy0: Vec<Time> = nodes.iter().map(|&g| busy_until[g]).collect();
                    let (idxs, mut locals): (Vec<usize>, Vec<SessionRuntime>) =
                        sessions.into_iter().unzip();
                    for runtime in &mut locals {
                        for node in &mut runtime.node_map {
                            *node = nodes
                                .binary_search(node)
                                .expect("a session's nodes are in its component");
                        }
                    }
                    let faults =
                        self.config
                            .traffic
                            .loss
                            .as_ref()
                            .map(|profile| kernel::FaultCtx {
                                profile,
                                class_of: &dense_class,
                            });
                    let recorder = trace.as_ref().map(|t| {
                        Recorder::fanout(t.sinks())
                            .with_node_map(&nodes)
                            .with_shards(&shard_of)
                    });
                    let carry = kernel::simulate_from(
                        &dense_specs,
                        self.net,
                        &mut locals,
                        &dense_busy0,
                        faults.as_ref(),
                        recorder.as_ref(),
                    );
                    let sparse: Vec<(usize, u64, Time)> = nodes
                        .into_iter()
                        .zip(carry.busy_time.into_iter().zip(carry.busy_until))
                        .map(|(g, (busy, until))| (g, busy, until))
                        .collect();
                    (idxs.into_iter().zip(locals).collect(), sparse)
                })
                .collect();

            // Positional merge; untouched nodes keep their horizons.
            for (sessions, sparse) in simulated {
                for (g, busy, until) in sparse {
                    busy_time[g] += busy;
                    busy_until[g] = until;
                }
                for (j, runtime) in sessions {
                    slots[j] = Some(runtime);
                }
            }
            drop(simulate_span);

            // Records, plus the per-shard epoch signal for the rebalancer.
            let mut delay_sum = vec![0u64; shards];
            let mut delay_n = vec![0usize; shards];
            for (j, slot) in slots.into_iter().enumerate() {
                let runtime = slot.expect("every session was simulated or shed");
                let route = &routes[j];
                let record = record_for(&batch[j], &runtime);
                if !record.abandoned {
                    delay_sum[route.home] += record.queue_delay;
                    delay_n[route.home] += 1;
                }
                records[base + j] = Some(ShardedSessionRecord {
                    home_shard: route.home,
                    cross: route.cross,
                    shards: route.shards.clone(),
                    record,
                });
            }

            // Rebalance between epochs (never after the last — the loop
            // only migrates where a future epoch can benefit).
            let _rebalance_span = profiler.as_ref().map(|p| p.span("rebalance"));
            if let Some(rebalancer) = rebalancer.as_mut() {
                if epoch_no + 1 < epochs {
                    let delays: Vec<f64> = (0..shards)
                        .map(|s| {
                            if delay_n[s] == 0 {
                                0.0
                            } else {
                                delay_sum[s] as f64 / delay_n[s] as f64
                            }
                        })
                        .collect();
                    let class_counts: Vec<Vec<usize>> = (0..shards)
                        .map(|s| {
                            (0..self.pool.k())
                                .map(|c| map.shard(s).nodes_of_class(c).len())
                                .collect()
                        })
                        .collect();
                    for mv in rebalancer.decide(&delays, &class_counts) {
                        // Concrete node: the least-loaded of the class in
                        // the hot shard, ties by lowest global id.
                        let node = map
                            .globals_of(mv.from)
                            .iter()
                            .copied()
                            .filter(|&g| map.class_of(g) == mv.class)
                            .min_by_key(|&g| (busy_time[g], g))
                            .expect("the rebalancer only moves populated classes");
                        map = map.migrate(node, mv.to).map_err(SimError::Sharding)?;
                        // Cached plans are keyed by class signature over the
                        // shared class table, so the only entries migration
                        // invalidates are those the shrunken shard can no
                        // longer bind to distinct nodes.
                        let capacity: Vec<usize> = (0..self.pool.k())
                            .map(|c| map.shard(mv.from).nodes_of_class(c).len())
                            .collect();
                        invalidations += shard_caches[mv.from].evict_where(|key| {
                            let (source_class, counts) = key;
                            counts.iter().enumerate().any(|(c, &need)| {
                                need + usize::from(*source_class == c) > capacity[c]
                            })
                        });
                        migrations.push(MigrationRecord {
                            epoch: epoch_no,
                            node,
                            from: mv.from,
                            to: mv.to,
                            class: mv.class,
                        });
                    }
                }
            }
        }

        let per_session: Vec<ShardedSessionRecord> = records
            .into_iter()
            .map(|r| r.expect("every session was recorded"))
            .collect();
        let control_report = ControlPlaneReport {
            policy: control.policy.clone(),
            admission: control.admission,
            rebalance: control.rebalance.is_some(),
            epoch: epoch_len,
            admitted: n_admitted,
            reordered: n_reordered,
            shed: n_shed,
            plan_cache_invalidations: invalidations,
            migrations,
            decisions: decisions.into_iter().map(str::to_string).collect(),
        };
        let telemetry = trace.and_then(|t| {
            let sizes: Vec<usize> = (0..shards).map(|s| map.shard(s).len()).collect();
            t.report(&sizes)
        });
        Ok(self.report(
            &map,
            per_session,
            &busy_time,
            &shard_ctxs,
            &shard_caches,
            &gateway_ctx,
            &gateway_cache,
            components_total,
            Some(control_report),
            telemetry,
        ))
    }

    /// Validates that a request's node ids are in range and distinct, using
    /// a caller-provided stamp buffer (a node is "seen" when its stamp
    /// equals the current generation).
    fn check_ids(
        &self,
        request: &SessionRequest,
        stamp: &mut [u32],
        generation: u32,
    ) -> Result<(), SimError> {
        let n = self.pool.len();
        if request.source >= n {
            return Err(SimError::MalformedSession { id: request.id });
        }
        stamp[request.source] = generation;
        for &member in &request.members {
            if member >= n || stamp[member] == generation {
                return Err(SimError::MalformedSession { id: request.id });
            }
            stamp[member] = generation;
        }
        Ok(())
    }

    /// Plans one cross-shard session: gateway tree over the designated
    /// gateways, one subtree per touched shard, composed and bound to
    /// global ids.
    ///
    /// `policy` swaps the baseline gateway election (fastest member, ties
    /// by lowest global id) for a pluggable [`GatewayPolicy`] fed the
    /// members' carried busy horizons; `None` keeps the baseline.
    #[allow(clippy::too_many_arguments)]
    fn admit_cross(
        &self,
        planner: &'static dyn Planner,
        map: &ShardMap,
        request: &SessionRequest,
        route: &Routing,
        gateway_ctx: &PlanContext,
        gateway_cache: Option<&mut PlanCache>,
        shard_ctxs: &[PlanContext],
        shard_caches: &mut [PlanCache],
        caching: bool,
        policy: Option<(&dyn GatewayPolicy, &[Time])>,
    ) -> Result<SessionRuntime, SimError> {
        // Members per touched shard. Keyed access only, but a BTreeMap
        // keeps even accidental iteration deterministic.
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &m in &request.members {
            by_shard.entry(map.shard_of(m)).or_default().push(m);
        }
        // Gateway selection: the source at home; elsewhere per policy —
        // baseline is the fastest member (ties by lowest global id).
        // Members are collected in ascending-id order per shard, so both
        // the baseline `min_by` and a policy's first-minimum-wins argmin
        // are deterministic.
        let mut gateways: Vec<usize> = Vec::with_capacity(route.shards.len() - 1);
        for &s in &route.shards[1..] {
            let members = &by_shard[&s];
            let gw = match policy {
                Some((policy, busy)) => {
                    let candidates: Vec<GatewayCandidate> = members
                        .iter()
                        .map(|&m| GatewayCandidate {
                            node: m,
                            spec: self.pool.spec_of_node(m),
                            load: busy[m].raw(),
                            shard_members: members.len(),
                        })
                        .collect();
                    members[policy.select(&candidates)]
                }
                None => *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        self.pool
                            .spec_of_node(a)
                            .speed_cmp(&self.pool.spec_of_node(b))
                            .then(a.cmp(&b))
                    })
                    .expect("a touched shard has at least one member"),
            };
            gateways.push(gw);
        }

        // Level 1: the gateway tree over the gateway class vector. The
        // chunk profile stays off planning-only requests — chunking never
        // changes the tree, only how the payload moves through it.
        let gateway_request = SessionRequest {
            id: request.id,
            arrival: request.arrival,
            source: request.source,
            members: gateways.clone(),
            patience: None,
            chunks: None,
        };
        let gateway_plan = planned_for(
            planner,
            self.pool,
            &gateway_request,
            gateway_ctx,
            gateway_cache,
            self.net,
            self.repair_policy(),
        )?;
        // Gateway-tree node id -> global gateway id.
        let gateway_binding = bind_node_map(
            self.pool,
            request.source,
            &gateways,
            &gateway_plan.locals_by_class,
        );

        // Level 2: one subtree per gateway-tree node, rooted at its gateway.
        let mut subtree_plans: Vec<Arc<CachedPlan>> = Vec::with_capacity(gateway_binding.len());
        let mut subtree_bindings: Vec<Vec<usize>> = Vec::with_capacity(gateway_binding.len());
        for &gw in &gateway_binding {
            let (s, local_gw) = map.locate(gw);
            let shard_pool = map.shard(s);
            // At home the source is the gateway (it is never a member), so
            // the filter keeps every home member; on remote shards it
            // removes the member promoted to gateway.
            let local_members: Vec<usize> = by_shard
                .get(&s)
                .map(|members| {
                    members
                        .iter()
                        .copied()
                        .filter(|&m| m != gw)
                        .map(|m| map.locate(m).1)
                        .collect()
                })
                .unwrap_or_default();
            let plan = if local_members.is_empty() {
                Arc::new(trivial_plan())
            } else {
                let local_request = SessionRequest {
                    id: request.id,
                    arrival: request.arrival,
                    source: local_gw,
                    members: local_members.clone(),
                    patience: None,
                    chunks: None,
                };
                planned_for(
                    planner,
                    shard_pool,
                    &local_request,
                    &shard_ctxs[s],
                    caching.then_some(&mut shard_caches[s]),
                    self.net,
                    self.repair_policy(),
                )?
            };
            // Subtree-local tree id -> global id.
            let local_binding =
                bind_node_map(shard_pool, local_gw, &local_members, &plan.locals_by_class);
            subtree_bindings.push(
                local_binding
                    .into_iter()
                    .map(|l| map.global_of(s, l))
                    .collect(),
            );
            subtree_plans.push(plan);
        }

        // Stitch, re-evaluating the timing from scratch.
        let spec_vectors: Vec<Vec<NodeSpec>> = subtree_bindings
            .iter()
            .map(|binding| binding.iter().map(|&g| self.pool.spec_of_node(g)).collect())
            .collect();
        let subtrees: Vec<(&ScheduleTree, &[NodeSpec])> = subtree_plans
            .iter()
            .zip(&spec_vectors)
            .map(|(plan, specs)| (&plan.tree, specs.as_slice()))
            .collect();
        let composed = compose(&gateway_plan.tree, &subtrees, self.net)?;

        // Bind composed ids to global nodes.
        let mut node_map = vec![usize::MAX; composed.tree.num_nodes()];
        for (i, map) in composed.maps.iter().enumerate() {
            for (l, &composed_id) in map.iter().enumerate() {
                node_map[composed_id.index()] = subtree_bindings[i][l];
            }
        }
        debug_assert_eq!(node_map[0], request.source);
        // Cross-shard repairer placement works over the *composed* tree —
        // the `gateway` policy reads the stitch maps to send every member
        // to its own shard's gateway.
        let repairer = self
            .repair_policy()
            .map(|policy| Arc::new(policy.assign_composed(&composed)));
        let mut runtime = SessionRuntime {
            id: request.id,
            arrival: request.arrival,
            deadline: request.patience.map(|p| request.arrival.saturating_add(p)),
            node_map,
            children: Arc::new(children_lists(&composed.tree)),
            repairer,
            planned_reception: composed.timing.reception_completion(),
            planned_delivery: composed.timing.delivery_completion(),
            started: None,
            abandoned: false,
            pending: request.members.len(),
            completed_at: request.arrival,
            delivered_at: request.arrival,
            nacks: 0,
            repair_sends: 0,
            failed_members: 0,
            repair_delays: Vec::new(),
            chunks: 1,
            chunk_interval: Time::ZERO,
            chunk_deadline: None,
            pipelined: true,
            chunk_pending: Vec::new(),
            chunk_completed_at: Vec::new(),
        };
        runtime.apply_chunks(request.chunks.or(self.config.traffic.chunks));
        Ok(runtime)
    }

    /// Assembles the merged report. `map` is the partition at the end of
    /// the run — for batch runs `self.map`, for controlled runs the map
    /// after every committed migration.
    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        map: &ShardMap,
        per_session: Vec<ShardedSessionRecord>,
        busy_time: &[u64],
        shard_ctxs: &[PlanContext],
        shard_caches: &[PlanCache],
        gateway_ctx: &PlanContext,
        gateway_cache: &PlanCache,
        components: usize,
        control: Option<ControlPlaneReport>,
        telemetry: Option<TelemetryReport>,
    ) -> ShardedTrafficReport {
        let total = TrafficMetrics::from_records(per_session.iter().map(|s| &s.record), busy_time);
        let cross_records: Vec<&SessionRecord> = per_session
            .iter()
            .filter(|s| s.cross)
            .map(|s| &s.record)
            .collect();
        let cross_sessions = cross_records.len();
        let cross = TrafficMetrics::from_records(cross_records, &[]);
        let per_shard: Vec<ShardReport> = (0..map.num_shards())
            .map(|s| {
                let records = per_session
                    .iter()
                    .filter(|r| !r.cross && r.home_shard == s)
                    .map(|r| &r.record);
                let shard_busy: Vec<u64> =
                    map.globals_of(s).iter().map(|&g| busy_time[g]).collect();
                let dp_cache = CacheStats::from_context(&shard_ctxs[s]);
                let mut metrics = TrafficMetrics::from_records(records, &shard_busy);
                // The shard's nodes also serve cross-shard sessions, whose
                // completions are not in this record subset — utilization
                // must therefore be taken over the run-wide makespan, or a
                // cross-heavy shard whose intra traffic finished early
                // would report a ratio above 1.
                let (mean_util, peak_util) =
                    TrafficMetrics::utilization_over(&shard_busy, total.makespan);
                metrics.mean_node_utilization = mean_util;
                metrics.peak_node_utilization = peak_util;
                ShardReport {
                    shard: s,
                    nodes: map.shard(s).len(),
                    metrics,
                    dp_cache,
                    dp_hit_rate: dp_cache.hit_rate(),
                    plan_cache: shard_caches[s].stats(),
                    plan_signatures: shard_caches[s].len(),
                }
            })
            .collect();
        let gateway_dp_cache = CacheStats::from_context(gateway_ctx);
        let reliability = ReliabilityReport::from_records(per_session.iter().map(|s| &s.record));
        let streaming =
            StreamingReport::from_records(per_session.iter().map(|s| &s.record), total.makespan);
        ShardedTrafficReport {
            // Schema 5: optional trailing `telemetry` time-series section
            // (4 added streaming + per-session chunk fields, 3 the
            // reliability section).
            schema: 5,
            planner: self.config.traffic.planner.clone(),
            shards: map.num_shards(),
            plan_cache: self.config.plan_cache,
            net_latency: self.net.latency().raw(),
            sessions: per_session.len(),
            cross_sessions,
            observed_cross_fraction: if per_session.is_empty() {
                0.0
            } else {
                cross_sessions as f64 / per_session.len() as f64
            },
            components,
            total,
            cross,
            reliability,
            streaming,
            gateway_dp_cache,
            gateway_dp_hit_rate: gateway_dp_cache.hit_rate(),
            gateway_plan_cache: gateway_cache.stats(),
            control,
            per_shard,
            per_session,
            telemetry,
        }
    }
}

/// Routes a (validated) request over the partition: home shard, cross
/// flag, touched shards home-first-then-ascending.
fn route_for(map: &ShardMap, request: &SessionRequest) -> Routing {
    let home = map.shard_of(request.source);
    let mut touched: Vec<usize> = request
        .members
        .iter()
        .map(|&m| map.shard_of(m))
        .filter(|&s| s != home)
        .collect();
    touched.sort_unstable();
    touched.dedup();
    let cross = !touched.is_empty();
    let mut shards = Vec::with_capacity(touched.len() + 1);
    shards.push(home);
    shards.extend(touched);
    Routing {
        home,
        cross,
        shards,
    }
}

/// Rewrites an intra-shard request onto its home shard's local node ids.
/// The chunk profile rides along — it is node-id-free.
fn localize(map: &ShardMap, request: &SessionRequest) -> SessionRequest {
    SessionRequest {
        id: request.id,
        arrival: request.arrival,
        source: map.locate(request.source).1,
        members: request.members.iter().map(|&m| map.locate(m).1).collect(),
        patience: request.patience,
        chunks: request.chunks,
    }
}

/// The admission charge of a session: its root's own send occupancy,
/// charged to the root node only.
///
/// The charge is deliberately conservative. The admission clock starts
/// from the carried per-node busy horizons, so `max(arrival,
/// clock[source])` is a *lower bound* on when the session's first send
/// can claim its source — earlier admitted sessions sharing the source
/// claim it first (they sort ahead) and hold it for at least their own
/// back-to-back sends. Shedding only when patience provably cannot
/// outlast that bound means a shed session is one the kernel's churn
/// gate would have abandoned anyway: shedding never costs goodput, it
/// only converts a would-be abandonment into an explicit decision before
/// any queue slot is taken. Charging whole trees instead would serialize
/// work the FIFO kernel actually interleaves and over-shed badly.
fn charges_for(runtime: &SessionRuntime, specs: &[NodeSpec]) -> Vec<(usize, u64)> {
    let root = runtime.node_map[0];
    let sends = runtime.children[0].len() as u64 * specs[root].send().raw();
    vec![(root, sends)]
}

/// Returns the (possibly cached) plan shape for a request's class
/// signature over `pool`. Node ids must already be validated (the
/// dispatcher checks them once, globally); the signature is computed in
/// `O(group + k)` so a cache hit costs no planner work at all.
fn planned_for(
    planner: &'static dyn Planner,
    pool: &NodePool,
    request: &SessionRequest,
    ctx: &PlanContext,
    mut cache: Option<&mut PlanCache>,
    net: NetParams,
    repair: Option<RepairPlacement>,
) -> Result<Arc<CachedPlan>, SimError> {
    let mut counts = vec![0usize; pool.k()];
    for &member in &request.members {
        counts[pool.class_of(member)] += 1;
    }
    let key: PlanKey = (pool.class_of(request.source), counts);
    if let Some(cache) = cache.as_deref_mut() {
        if let Some(cached) = cache.get(&key) {
            return Ok(cached);
        }
    }
    let typed =
        TypedMulticast::new(pool.specs().to_vec(), key.0, key.1.clone()).map_err(|error| {
            SimError::Instance {
                session: request.id,
                error,
            }
        })?;
    let set = typed
        .to_multicast_set()
        .map_err(|error| SimError::Instance {
            session: request.id,
            error,
        })?;
    // Tree-node specs of the canonical instance, for repairer placement
    // (the set is about to move into the plan request).
    let tree_specs: Vec<NodeSpec> = (0..set.num_nodes()).map(|v| set.spec(NodeId(v))).collect();
    let plan_request = PlanRequest::new(set, net).with_seed(request.id);
    let plan = planner.plan_with(&plan_request, ctx)?;
    let repairer = repair.map(|policy| Arc::new(policy.assign(&plan.tree, &tree_specs)));
    let cached = Arc::new(CachedPlan {
        children: Arc::new(children_lists(&plan.tree)),
        locals_by_class: typed.node_ids_by_class(),
        repairer,
        planned_reception: plan.timing.reception_completion(),
        planned_delivery: plan.timing.delivery_completion(),
        tree: plan.tree,
    });
    if let Some(cache) = cache {
        cache.insert(key, Arc::clone(&cached));
    }
    Ok(cached)
}

/// The one-node plan of a gateway with nothing local to serve.
fn trivial_plan() -> CachedPlan {
    CachedPlan {
        tree: ScheduleTree::new(1),
        children: Arc::new(vec![Vec::new()]),
        locals_by_class: Vec::new(),
        repairer: None,
        planned_reception: Time::ZERO,
        planned_delivery: Time::ZERO,
    }
}

/// Builds an intra-shard session's runtime from a cached plan shape.
fn runtime_from(pool: &NodePool, request: &SessionRequest, cached: &CachedPlan) -> SessionRuntime {
    SessionRuntime {
        id: request.id,
        arrival: request.arrival,
        deadline: request.patience.map(|p| request.arrival.saturating_add(p)),
        node_map: bind_node_map(
            pool,
            request.source,
            &request.members,
            &cached.locals_by_class,
        ),
        children: Arc::clone(&cached.children),
        repairer: cached.repairer.clone(),
        planned_reception: cached.planned_reception,
        planned_delivery: cached.planned_delivery,
        started: None,
        abandoned: false,
        pending: request.members.len(),
        completed_at: request.arrival,
        delivered_at: request.arrival,
        nacks: 0,
        repair_sends: 0,
        failed_members: 0,
        repair_delays: Vec::new(),
        chunks: 1,
        chunk_interval: Time::ZERO,
        chunk_deadline: None,
        pipelined: true,
        chunk_pending: Vec::new(),
        chunk_completed_at: Vec::new(),
    }
}

/// Deterministic union-find over pool node ids (the session-node contact
/// graph).
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.0[root] != root {
            root = self.0[root];
        }
        let mut cur = x;
        while self.0[cur] != root {
            let next = self.0[cur];
            self.0[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Smaller root wins, so component identity is order-independent.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        self.0[hi] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use crate::sessions::TrafficEngine;
    use hnow_workload::{
        default_message_size, two_class_table, ChurnProfile, HotSpotPattern, ShardedPattern,
    };

    fn pool() -> NodePool {
        NodePool::new(two_class_table(), default_message_size(), &[12, 8]).unwrap()
    }

    /// Bursty shifting-hot-spot traffic with churn: the control plane's
    /// target regime.
    fn hot_requests(pool: &NodePool, shards: usize, n: usize, seed: u64) -> Vec<SessionRequest> {
        let map = ShardMap::partition(pool, shards).unwrap();
        let mut pattern = HotSpotPattern::bursty(4, 30, 2, 4, 24, 0.8);
        pattern.base.churn = Some(ChurnProfile {
            impatient_fraction: 0.5,
            mean_patience: 120.0,
        });
        pattern.generate(&map, n, seed).unwrap()
    }

    /// Sharded requests with arrivals spaced far beyond any completion
    /// time: zero contention.
    fn spaced_requests(pool: &NodePool, shards: usize, frac: f64, n: usize) -> Vec<SessionRequest> {
        let map = ShardMap::partition(pool, shards).unwrap();
        let pattern = ShardedPattern::poisson(5.0, 4, frac);
        let mut requests = pattern.generate(&map, n, 21).unwrap();
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = Time::new(i as u64 * 1_000_000);
            r.patience = None;
        }
        requests
    }

    #[test]
    fn uncontended_sessions_match_their_stitched_analytic_times() {
        let pool = pool();
        let requests = spaced_requests(&pool, 4, 0.5, 24);
        for planner in ["greedy", "greedy+leaf", "dp-optimal", "chain"] {
            let cluster = ShardedCluster::with_config(
                &pool,
                NetParams::new(2),
                &RunConfig::for_planner(planner).sharded(4),
            )
            .unwrap();
            let report = cluster.run(&requests).unwrap();
            assert_eq!(report.total.completed, 24);
            assert!(report.cross_sessions > 0, "the mix must include cross");
            for s in &report.per_session {
                assert_eq!(
                    s.record.reception_latency,
                    s.record.planned_reception,
                    "{planner}: session {} diverged from its {} analytic R_T",
                    s.record.id,
                    if s.cross { "stitched" } else { "flat" }
                );
                assert_eq!(
                    s.record.delivery_latency, s.record.planned_delivery,
                    "{planner}: session {} diverged from analytic D_T",
                    s.record.id
                );
                assert_eq!(s.record.queue_delay, 0);
            }
        }
    }

    #[test]
    fn uncontended_intra_sessions_match_the_flat_engine() {
        // With zero contention and zero cross traffic, the sharded service
        // must reproduce the flat engine's per-session results exactly —
        // shard-local planning sees the same class signatures.
        let pool = pool();
        let requests = spaced_requests(&pool, 4, 0.0, 20);
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(4))
                .unwrap();
        let sharded = cluster.run(&requests).unwrap();
        let flat = TrafficEngine::with_config(&pool, NetParams::new(2), &RunConfig::default())
            .run(&requests)
            .unwrap();
        assert!(
            sharded.components >= 4,
            "no cross traffic: the four shards' node sets cannot merge (got {})",
            sharded.components
        );
        for (s, f) in sharded.per_session.iter().zip(&flat.per_session) {
            assert!(!s.cross);
            assert_eq!(s.record, *f);
        }
    }

    #[test]
    fn reports_are_byte_identical_per_seed() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let pattern = ShardedPattern::poisson(6.0, 5, 0.3);
        let requests = pattern.generate(&map, 120, 42).unwrap();
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(4))
                .unwrap();
        let a = serde_json::to_string(&cluster.run(&requests).unwrap()).unwrap();
        let b = serde_json::to_string(&cluster.run(&requests).unwrap()).unwrap();
        assert_eq!(a, b, "same requests must serialize byte-identically");
        let other = pattern.generate(&map, 120, 43).unwrap();
        let c = serde_json::to_string(&cluster.run(&other).unwrap()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn a_one_chunk_profile_matches_atomic_on_the_sharded_surface() {
        // Sharded leg of the chunks=1 acceptance anchor: stamping a
        // one-chunk profile run-wide must reproduce the atomic sharded
        // report byte for byte, with and without 5% injected loss (gateway
        // stitching, plan caches and repair traffic included).
        use hnow_model::ChunkProfile;
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let requests = ShardedPattern::poisson(6.0, 5, 0.3)
            .generate(&map, 100, 42)
            .unwrap();
        for lossy in [false, true] {
            let base = if lossy {
                lossy_run(0.05, 42, hnow_core::RepairPlacement::SubtreeRoot, 4)
            } else {
                RunConfig::default().sharded(4)
            };
            let atomic = ShardedCluster::with_config(&pool, NetParams::new(2), &base)
                .unwrap()
                .run(&requests)
                .unwrap();
            let one_chunk = base.clone().with_chunks(ChunkProfile::new(1, 25));
            let chunked = ShardedCluster::with_config(&pool, NetParams::new(2), &one_chunk)
                .unwrap()
                .run(&requests)
                .unwrap();
            assert_eq!(
                serde_json::to_string(&atomic).unwrap(),
                serde_json::to_string(&chunked).unwrap(),
                "lossy {lossy}: sharded one-chunk run drifted from atomic"
            );
            assert_eq!(chunked.streaming.streaming_sessions, 0);
        }
    }

    fn lossy_run(rate: f64, seed: u64, repair: RepairPlacement, shards: usize) -> RunConfig {
        RunConfig::default()
            .sharded(shards)
            .with_loss(crate::faults::LossProfile::iid(rate, seed))
            .with_repair(repair)
    }

    #[test]
    fn sharded_rate_zero_loss_reproduces_the_lossless_report() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let requests = ShardedPattern::poisson(6.0, 5, 0.3)
            .generate(&map, 100, 42)
            .unwrap();
        let lossless =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(4))
                .unwrap()
                .run(&requests)
                .unwrap();
        let zero = ShardedCluster::with_config(
            &pool,
            NetParams::new(2),
            &lossy_run(0.0, 42, RepairPlacement::Gateway, 4),
        )
        .unwrap()
        .run(&requests)
        .unwrap();
        assert_eq!(
            serde_json::to_string(&lossless).unwrap(),
            serde_json::to_string(&zero).unwrap(),
            "a rate-0 profile must not perturb a single event"
        );
        assert_eq!(lossless.schema, 5);
        assert_eq!(lossless.reliability.delivered_fraction, 1.0);
    }

    #[test]
    fn lossy_sharded_runs_repair_cross_shard_traffic_deterministically() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let requests = ShardedPattern::poisson(4.0, 6, 0.4)
            .generate(&map, 120, 11)
            .unwrap();
        for repair in [RepairPlacement::SubtreeRoot, RepairPlacement::Gateway] {
            let cluster = ShardedCluster::with_config(
                &pool,
                NetParams::new(2),
                &lossy_run(0.08, 19, repair, 4),
            )
            .unwrap();
            let report = cluster.run(&requests).unwrap();
            assert!(report.cross_sessions > 0, "{}", repair.name());
            let rel = &report.reliability;
            assert!(rel.nacks > 0, "{}: 8% loss must NACK", repair.name());
            assert!(rel.repair_sends > 0, "{}", repair.name());
            assert!(
                rel.delivered_fraction > 0.9,
                "{}: retries recover nearly everything, got {}",
                repair.name(),
                rel.delivered_fraction
            );
            let again = cluster.run(&requests).unwrap();
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                serde_json::to_string(&again).unwrap(),
                "{}: lossy sharded runs must stay byte-identical",
                repair.name()
            );
        }
    }

    #[test]
    fn admission_lower_bound_survives_repair_traffic() {
        // The admission controller sheds a session only when the virtual
        // clock proves its patience cannot outlast its queue delay; that
        // proof is a *lower bound* built from carried busy horizons. Repair
        // traffic inflates those horizons, which must keep the bound
        // conservative — admission may never shed a session the churn gate
        // would have served. Pinned regression: under identical loss, a run
        // with admission on completes at least as many sessions as the
        // admission-off run, while actually shedding.
        let pool = pool();
        let requests = hot_requests(&pool, 4, 320, 23);
        let run = |admission: bool| {
            let cluster = ShardedCluster::with_config(
                &pool,
                NetParams::new(2),
                &lossy_run(0.1, 31, RepairPlacement::SubtreeRoot, 4).with_control(ControlConfig {
                    admission,
                    ..ControlConfig::default()
                }),
            )
            .unwrap();
            cluster.run(&requests).unwrap()
        };
        let on = run(true);
        let off = run(false);
        let control = on.control.as_ref().expect("controlled run");
        assert!(
            control.shed > 0,
            "the lossy stampede must trigger some shedding"
        );
        assert!(
            on.total.completed >= off.total.completed,
            "shedding lost goodput under loss: {} with admission vs {} without — \
             the virtual-clock bound is no longer a lower bound",
            on.total.completed,
            off.total.completed
        );
        // And the controlled lossy run keeps the byte-determinism contract.
        let again = run(true);
        assert_eq!(
            serde_json::to_string(&on).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn plan_cache_never_changes_results() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let requests = ShardedPattern::poisson(3.0, 5, 0.25)
            .generate(&map, 150, 9)
            .unwrap();
        let run = |plan_cache: bool, planner: &str| {
            let config = RunConfig::for_planner(planner)
                .sharded(4)
                .with_plan_cache(plan_cache, Some(256));
            ShardedCluster::with_config(&pool, NetParams::new(2), &config)
                .unwrap()
                .run(&requests)
                .unwrap()
        };
        for planner in ["greedy+leaf", "dp-optimal"] {
            let cached = run(true, planner);
            let uncached = run(false, planner);
            assert_eq!(cached.per_session, uncached.per_session, "{planner}");
            assert!(
                cached.per_shard.iter().any(|s| s.plan_signatures > 0),
                "{planner}: the cache must have been populated"
            );
            assert!(uncached.per_shard.iter().all(|s| s.plan_signatures == 0));
        }
        // A seeded planner silently bypasses the cache but stays
        // deterministic.
        let a = run(true, "random");
        let b = run(true, "random");
        assert_eq!(a.per_session, b.per_session);
        assert!(a.per_shard.iter().all(|s| s.plan_signatures == 0));
    }

    /// Reference component count: union-find over the session-node contact
    /// graph, computed straight from the requests (source + members are
    /// exactly the nodes each session's runtime touches).
    fn contact_components(pool: &NodePool, requests: &[SessionRequest]) -> usize {
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            root
        }
        let mut parent: Vec<usize> = (0..pool.len()).collect();
        for request in requests {
            for &member in &request.members {
                let (a, b) = (find(&mut parent, request.source), find(&mut parent, member));
                parent[a.max(b)] = a.min(b);
            }
        }
        let mut roots: Vec<usize> = requests
            .iter()
            .map(|request| find(&mut parent, request.source))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    #[test]
    fn one_shard_cluster_matches_the_flat_engine_exactly() {
        // The flat-vs-sharded parity regression: a 1-shard cluster with no
        // cross traffic is the flat engine behind a dispatcher, so every
        // per-session achieved R_T, D_T and queue delay must be identical
        // — including under contention and churn, where the pre-unification
        // engines' same-instant tie-breaks diverged.
        let pool = pool();
        let map = ShardMap::partition(&pool, 1).unwrap();
        let mut requests = ShardedPattern::poisson(2.0, 5, 0.0)
            .generate(&map, 80, 11)
            .unwrap();
        // Compress arrivals into a stampede and make a third impatient.
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = Time::new(i as u64 / 4);
            r.patience = (i % 3 == 0).then_some(Time::new(40));
        }
        for planner in ["greedy+leaf", "dp-optimal"] {
            let cluster = ShardedCluster::with_config(
                &pool,
                NetParams::new(2),
                &RunConfig::for_planner(planner).sharded(1),
            )
            .unwrap();
            let sharded = cluster.run(&requests).unwrap();
            let flat = TrafficEngine::with_config(
                &pool,
                NetParams::new(2),
                &RunConfig::for_planner(planner),
            )
            .run(&requests)
            .unwrap();
            assert!(
                sharded.per_session.iter().any(|s| s.record.abandoned),
                "{planner}: the stampede must exercise the churn gate"
            );
            assert!(
                sharded.per_session.iter().any(|s| s.record.queue_delay > 0),
                "{planner}: the stampede must exercise contention"
            );
            assert_eq!(sharded.per_session.len(), flat.per_session.len());
            for (s, f) in sharded.per_session.iter().zip(&flat.per_session) {
                assert!(!s.cross);
                assert_eq!(s.record, *f, "{planner}: flat/sharded parity");
            }
        }
    }

    #[test]
    fn cross_traffic_merges_simulation_components() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        let intra_only = ShardedPattern::poisson(5.0, 4, 0.0)
            .generate(&map, 60, 5)
            .unwrap();
        let mixed = ShardedPattern::poisson(5.0, 4, 0.5)
            .generate(&map, 60, 5)
            .unwrap();
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(4))
                .unwrap();
        let separate = cluster.run(&intra_only).unwrap();
        assert_eq!(separate.components, contact_components(&pool, &intra_only));
        assert!(
            separate.components >= 4,
            "intra-only sessions cannot merge across shard node sets"
        );
        assert_eq!(separate.cross_sessions, 0);
        assert_eq!(separate.observed_cross_fraction, 0.0);
        let merged = cluster.run(&mixed).unwrap();
        assert!(merged.cross_sessions > 0);
        assert_eq!(merged.components, contact_components(&pool, &mixed));
        assert!(
            merged.components < separate.components,
            "cross sessions connect shard node sets"
        );
        // Routing metadata is consistent with the shard map.
        for (request, record) in mixed.iter().zip(&merged.per_session) {
            assert_eq!(
                record.home_shard,
                cluster.shard_map().shard_of(request.source)
            );
            assert_eq!(record.cross, cluster.shard_map().is_cross_shard(request));
            assert_eq!(record.shards[0], record.home_shard);
            assert!(record.shards.len() >= if record.cross { 2 } else { 1 });
        }
    }

    #[test]
    fn empty_shards_report_nan_free_zeros() {
        let pool = pool();
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(4))
                .unwrap();
        // Every session lives entirely in shard 0 (nodes 0, 4, 8, …).
        let shard0: Vec<usize> = cluster.shard_map().globals_of(0).to_vec();
        let requests: Vec<SessionRequest> = (0..6)
            .map(|i| SessionRequest {
                id: i,
                arrival: Time::new(i * 100_000),
                source: shard0[i as usize % shard0.len()],
                members: shard0
                    .iter()
                    .copied()
                    .filter(|&g| g != shard0[i as usize % shard0.len()])
                    .take(3)
                    .collect(),
                patience: None,
                chunks: None,
            })
            .collect();
        let report = cluster.run(&requests).unwrap();
        assert_eq!(report.per_shard[0].metrics.sessions, 6);
        for shard in &report.per_shard[1..] {
            assert_eq!(shard.metrics.sessions, 0);
            assert_eq!(shard.metrics.throughput_per_kilotick, 0.0);
            assert_eq!(shard.metrics.mean_reception_latency, 0.0);
            assert_eq!(shard.metrics.mean_node_utilization, 0.0);
            assert_eq!(shard.dp_hit_rate, 0.0);
        }
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("NaN"), "empty shards must serialize clean");
    }

    #[test]
    fn shard_utilization_stays_in_unit_range_under_cross_heavy_load() {
        // Shard 1 serves *only* cross-shard work: its intra record subset is
        // empty, but its nodes are busy. Utilization must be taken over the
        // run-wide makespan — positive, and never above 1.
        let pool = pool();
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(2))
                .unwrap();
        let shard0 = cluster.shard_map().globals_of(0).to_vec();
        let shard1 = cluster.shard_map().globals_of(1).to_vec();
        let requests: Vec<SessionRequest> = (0..8)
            .map(|i| SessionRequest {
                id: i,
                arrival: Time::new(i * 5),
                source: shard0[i as usize % shard0.len()],
                members: vec![
                    shard1[i as usize % shard1.len()],
                    shard1[(i as usize + 1) % shard1.len()],
                ],
                patience: None,
                chunks: None,
            })
            .collect();
        let report = cluster.run(&requests).unwrap();
        assert_eq!(report.cross_sessions, 8);
        let remote = &report.per_shard[1];
        assert_eq!(remote.metrics.sessions, 0, "no intra sessions homed here");
        assert!(
            remote.metrics.mean_node_utilization > 0.0,
            "cross work on the shard's nodes must show up"
        );
        for shard in &report.per_shard {
            assert!(shard.metrics.mean_node_utilization <= 1.0 + 1e-9);
            assert!(shard.metrics.peak_node_utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn churn_applies_to_sharded_sessions() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 2).unwrap();
        let mut requests = ShardedPattern::poisson(1.0, 6, 0.4)
            .generate(&map, 40, 9)
            .unwrap();
        for r in &mut requests {
            r.arrival = Time::ZERO;
            r.patience = Some(Time::new(1));
        }
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(2))
                .unwrap();
        let report = cluster.run(&requests).unwrap();
        assert!(report.total.abandoned > 0, "a stampede with tiny patience");
        assert_eq!(report.total.completed + report.total.abandoned, 40);
        for s in report.per_session.iter().filter(|s| s.record.abandoned) {
            assert_eq!(s.record.started, None);
            assert_eq!(s.record.reception_latency, 0);
        }
    }

    #[test]
    fn config_errors_are_reported() {
        let pool = pool();
        // The unified surface treats `shards == 0` as "flat": one shard.
        assert_eq!(
            ShardedCluster::with_config(&pool, NetParams::new(1), &RunConfig::default().sharded(0))
                .unwrap()
                .shard_map()
                .num_shards(),
            1
        );
        assert!(matches!(
            ShardedCluster::with_config(
                &pool,
                NetParams::new(1),
                &RunConfig::default().sharded(pool.len() + 1),
            ),
            Err(SimError::Sharding(_))
        ));
        let cluster = ShardedCluster::with_config(
            &pool,
            NetParams::new(1),
            &RunConfig::for_planner("no-such-planner").sharded(2),
        )
        .unwrap();
        let requests = spaced_requests(&pool, 2, 0.0, 2);
        assert!(matches!(
            cluster.run(&requests),
            Err(SimError::UnknownPlanner { .. })
        ));
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(1), &RunConfig::default().sharded(2))
                .unwrap();
        let mut bad = spaced_requests(&pool, 2, 0.0, 2);
        bad[1].members = vec![bad[1].source];
        assert!(matches!(
            cluster.run(&bad),
            Err(SimError::MalformedSession { id }) if id == bad[1].id
        ));
        let mut oob = spaced_requests(&pool, 2, 0.0, 1);
        oob[0].members = vec![pool.len()];
        assert!(matches!(
            cluster.run(&oob),
            Err(SimError::MalformedSession { .. })
        ));
    }

    #[test]
    fn contention_delays_but_never_loses_sharded_sessions() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 2).unwrap();
        let mut requests = ShardedPattern::poisson(5.0, 5, 0.3)
            .generate(&map, 40, 3)
            .unwrap();
        for r in &mut requests {
            r.arrival = Time::ZERO;
            r.patience = None;
        }
        let cluster =
            ShardedCluster::with_config(&pool, NetParams::new(2), &RunConfig::default().sharded(2))
                .unwrap();
        let report = cluster.run(&requests).unwrap();
        assert_eq!(report.total.completed, 40);
        assert_eq!(report.total.abandoned, 0);
        assert!(
            report
                .per_session
                .iter()
                .any(|s| s.record.reception_latency > s.record.planned_reception),
            "40 simultaneous sessions on 20 nodes cannot all run contention-free"
        );
        assert!(report.total.peak_node_utilization > 0.0);
        assert!(report.total.peak_node_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn controlled_runs_are_byte_identical_and_decide_every_session() {
        let pool = pool();
        let requests = hot_requests(&pool, 4, 120, 7);
        let config = RunConfig::default().sharded(4).with_control(ControlConfig {
            epoch: 32,
            admission: true,
            policy: "load-aware".to_string(),
            rebalance: Some(RebalanceConfig::default()),
        });
        let cluster = ShardedCluster::with_config(&pool, NetParams::new(2), &config).unwrap();
        let a = serde_json::to_string(&cluster.run(&requests).unwrap()).unwrap();
        let b = serde_json::to_string(&cluster.run(&requests).unwrap()).unwrap();
        assert_eq!(a, b, "controlled runs must serialize byte-identically");
        assert!(!a.contains("NaN"));
        let report = cluster.run(&requests).unwrap();
        let control = report.control.expect("controlled runs report control data");
        assert_eq!(control.decisions.len(), 120);
        assert!(control
            .decisions
            .iter()
            .all(|d| matches!(d.as_str(), "admitted" | "reordered" | "shed")));
        assert_eq!(control.admitted + control.reordered + control.shed, 120);
        assert!(
            control.reordered > 0,
            "same-instant bursts of mixed group sizes must reorder"
        );
        assert_eq!(report.total.completed + report.total.abandoned, 120);
    }

    #[test]
    fn shed_sessions_are_abandoned_without_starting() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 2).unwrap();
        let mut requests = ShardedPattern::poisson(1.0, 5, 0.2)
            .generate(&map, 60, 5)
            .unwrap();
        // A zero-instant stampede with tiny patience: the admission
        // controller must predict the pile-up and shed.
        for r in &mut requests {
            r.arrival = Time::ZERO;
            r.patience = Some(Time::new(30));
        }
        let config = RunConfig::default().sharded(2).with_control(ControlConfig {
            epoch: 16,
            ..ControlConfig::default()
        });
        let cluster = ShardedCluster::with_config(&pool, NetParams::new(2), &config).unwrap();
        let report = cluster.run(&requests).unwrap();
        let control = report.control.unwrap();
        assert!(control.shed > 0, "the stampede must shed");
        assert_eq!(
            report.total.abandoned,
            control.shed
                + report
                    .per_session
                    .iter()
                    .zip(&control.decisions)
                    .filter(|(s, d)| s.record.abandoned && d.as_str() != "shed")
                    .count()
        );
        for (s, decision) in report.per_session.iter().zip(&control.decisions) {
            if decision == "shed" {
                assert!(s.record.abandoned, "shed implies abandoned");
                assert_eq!(s.record.started, None);
                assert_eq!(s.record.reception_latency, 0);
            }
        }
    }

    #[test]
    fn rebalancer_migrates_under_sustained_skew() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 4).unwrap();
        // One shard stays hot for 60 sessions straight while the others
        // idle: the divergence signal the rebalancer exists for.
        let pattern = HotSpotPattern::bursty(6, 20, 2, 4, 60, 1.0);
        let requests = pattern.generate(&map, 180, 13).unwrap();
        let config = RunConfig::default().sharded(4).with_control(ControlConfig {
            epoch: 30,
            admission: false,
            policy: "fastest-member".to_string(),
            rebalance: Some(RebalanceConfig {
                enter_gap: 1.0,
                exit_gap: 0.5,
                max_moves: 1,
                min_shard_nodes: 2,
            }),
        });
        let cluster = ShardedCluster::with_config(&pool, NetParams::new(2), &config).unwrap();
        let report = cluster.run(&requests).unwrap();
        let control = report.control.unwrap();
        assert!(
            !control.migrations.is_empty(),
            "sustained skew must trigger at least one migration"
        );
        for m in &control.migrations {
            assert_ne!(m.from, m.to);
            assert!(m.node < pool.len());
        }
        // The report reflects the final partition, which still covers the
        // whole pool.
        assert_eq!(
            report.per_shard.iter().map(|s| s.nodes).sum::<usize>(),
            pool.len()
        );
        assert_eq!(report.total.completed + report.total.abandoned, 180);
    }

    #[test]
    fn migrated_and_reverted_map_reports_byte_identically() {
        let pool = pool();
        let config = RunConfig::default()
            .sharded(4)
            .with_control(ControlConfig::default());
        let cluster = ShardedCluster::with_config(&pool, NetParams::new(2), &config).unwrap();
        // A twin whose map took a migration round-trip: same partition,
        // so every decision and record must serialize identically.
        let node = cluster.shard_map().globals_of(0)[0];
        let roundtrip = cluster
            .shard_map()
            .migrate(node, 1)
            .unwrap()
            .migrate(node, 0)
            .unwrap();
        let twin = ShardedCluster {
            pool: &pool,
            map: roundtrip,
            net: NetParams::new(2),
            config: config.cluster(),
            threads: None,
            telemetry: None,
        };
        let requests = hot_requests(&pool, 4, 96, 17);
        let a = serde_json::to_string(&cluster.run(&requests).unwrap()).unwrap();
        let b = serde_json::to_string(&twin.run(&requests).unwrap()).unwrap();
        assert_eq!(a, b, "a migration round-trip must be observationally void");
    }

    #[test]
    fn plan_cache_lru_evicts_and_counts() {
        let pool = pool();
        let map = ShardMap::partition(&pool, 1).unwrap();
        let requests = ShardedPattern::poisson(4.0, 6, 0.0)
            .generate(&map, 80, 3)
            .unwrap();
        let run = |capacity: Option<usize>| {
            let config = RunConfig::default()
                .sharded(1)
                .with_plan_cache(true, capacity);
            ShardedCluster::with_config(&pool, NetParams::new(2), &config)
                .unwrap()
                .run(&requests)
                .unwrap()
        };
        let tight = run(Some(2));
        let stats = tight.per_shard[0].plan_cache;
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        assert!(stats.lookups > 0);
        assert!(
            stats.evictions > 0,
            "80 sessions of varied signatures must overflow capacity 2"
        );
        assert!(tight.per_shard[0].plan_signatures <= 2);
        let unbounded = run(None);
        assert_eq!(unbounded.per_shard[0].plan_cache.evictions, 0);
        assert_eq!(
            tight.per_session, unbounded.per_session,
            "eviction must never change results"
        );
    }

    #[test]
    fn unknown_policy_is_reported() {
        let pool = pool();
        let config = RunConfig::default().sharded(2).with_control(ControlConfig {
            policy: "no-such-policy".to_string(),
            ..ControlConfig::default()
        });
        let cluster = ShardedCluster::with_config(&pool, NetParams::new(2), &config).unwrap();
        let requests = spaced_requests(&pool, 2, 0.0, 2);
        let err = cluster.run(&requests).unwrap_err();
        assert!(matches!(err, SimError::UnknownPolicy { ref name } if name == "no-such-policy"));
        assert!(err.to_string().contains("no-such-policy"));
    }

    #[test]
    fn sharded_tracing_is_observation_only_and_thread_count_free() {
        // The sharded leg of the telemetry determinism gate: attaching a
        // trace sink never changes a report byte — lossless and under 5%
        // injected loss, at 1 and at 8 rayon threads — the event count is
        // thread-count-free even though parallel components interleave
        // their emissions, every port-tied event is shard-attributed, and
        // the interleaved stream still passes the kernel invariant checker.
        use hnow_telemetry::{check_invariants, MemorySink};
        let pool = pool();
        let net = NetParams::new(2);
        let map = ShardMap::partition(&pool, 4).unwrap();
        let requests = ShardedPattern::poisson(6.0, 5, 0.3)
            .generate(&map, 100, 42)
            .unwrap();
        for lossy in [false, true] {
            let base = if lossy {
                lossy_run(0.05, 42, RepairPlacement::SubtreeRoot, 4)
            } else {
                RunConfig::default().sharded(4)
            };
            let mut counts = Vec::new();
            for threads in [1usize, 8] {
                let plain = base.clone().with_threads(threads);
                let untraced = ShardedCluster::with_config(&pool, net, &plain)
                    .unwrap()
                    .run(&requests)
                    .unwrap();
                let sink = Arc::new(MemorySink::new());
                let traced_config = plain.telemetry(TelemetryConfig::new().with_sink(sink.clone()));
                let traced = ShardedCluster::with_config(&pool, net, &traced_config)
                    .unwrap()
                    .run(&requests)
                    .unwrap();
                assert_eq!(
                    serde_json::to_string(&untraced).unwrap(),
                    serde_json::to_string(&traced).unwrap(),
                    "lossy {lossy}, threads {threads}: tracing changed the report"
                );
                let events = sink.take();
                assert!(!events.is_empty());
                check_invariants(&events).unwrap();
                assert!(
                    events
                        .iter()
                        .filter(|ev| ev.node.is_some())
                        .all(|ev| ev.shard.is_some()),
                    "every port-tied event must carry its owning shard"
                );
                counts.push(events.len());
            }
            assert_eq!(
                counts[0], counts[1],
                "lossy {lossy}: event count must not depend on the thread count"
            );
        }
    }

    #[test]
    fn the_sharded_timeseries_section_attributes_shards() {
        // A time-series window adds the trailing `telemetry` section — one
        // utilization row per shard — and nothing else: stripping it
        // reproduces the untraced serialization byte for byte.
        let pool = pool();
        let net = NetParams::new(2);
        let map = ShardMap::partition(&pool, 4).unwrap();
        let requests = ShardedPattern::poisson(6.0, 5, 0.3)
            .generate(&map, 100, 42)
            .unwrap();
        let base = lossy_run(0.05, 42, RepairPlacement::SubtreeRoot, 4);
        let untraced = ShardedCluster::with_config(&pool, net, &base)
            .unwrap()
            .run(&requests)
            .unwrap();
        assert!(untraced.telemetry.is_none());
        let traced_config = base.telemetry(TelemetryConfig::new().with_timeseries(64));
        let traced = ShardedCluster::with_config(&pool, net, &traced_config)
            .unwrap()
            .run(&requests)
            .unwrap();
        let telemetry = traced.telemetry.as_ref().unwrap();
        assert_eq!(telemetry.window, 64);
        assert!(telemetry.events > 0);
        assert_eq!(telemetry.per_shard_utilization.len(), 4);
        assert_eq!(telemetry.per_node_busy.len(), pool.len());
        let mut stripped = traced;
        stripped.telemetry = None;
        assert_eq!(
            serde_json::to_string(&untraced).unwrap(),
            serde_json::to_string(&stripped).unwrap(),
            "outside the telemetry section the report must be unchanged"
        );
    }

    #[test]
    fn controlled_runs_trace_admission_decisions() {
        // The control plane emits one decision event per session, stamped
        // with its arrival time; the per-kind counts must reconcile with
        // the control report, tracing must not move a byte of the report,
        // and the stream (decisions plus per-epoch kernel events under
        // live migrations) must satisfy the kernel invariants.
        use hnow_telemetry::{check_invariants, MemorySink};
        let pool = pool();
        let net = NetParams::new(2);
        let requests = hot_requests(&pool, 4, 120, 7);
        let config = RunConfig::default().sharded(4).with_control(ControlConfig {
            epoch: 32,
            admission: true,
            policy: "load-aware".to_string(),
            rebalance: Some(RebalanceConfig::default()),
        });
        let untraced = ShardedCluster::with_config(&pool, net, &config)
            .unwrap()
            .run(&requests)
            .unwrap();
        let sink = Arc::new(MemorySink::new());
        let traced_config = config.telemetry(TelemetryConfig::new().with_sink(sink.clone()));
        let traced = ShardedCluster::with_config(&pool, net, &traced_config)
            .unwrap()
            .run(&requests)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&untraced).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "tracing changed the controlled report"
        );
        let events = sink.take();
        check_invariants(&events).unwrap();
        let control = traced.control.as_ref().unwrap();
        let count = |kind: TraceEventKind| events.iter().filter(|ev| ev.kind == kind).count();
        assert_eq!(count(TraceEventKind::Admitted), control.admitted);
        assert_eq!(count(TraceEventKind::Reordered), control.reordered);
        assert_eq!(count(TraceEventKind::Shed), control.shed);
        assert!(
            count(TraceEventKind::Shed) > 0,
            "churny hot spots must shed"
        );
    }
}
