//! # hnow-sim
//!
//! Discrete-event execution substrate for multicast schedules in the
//! heterogeneous receive-send model.
//!
//! The original paper's model was validated against a physical
//! heterogeneous-NOW testbed by Banikazemi et al.; this crate is the
//! synthetic stand-in (see DESIGN.md §2): it plays a planned
//! [`ScheduleTree`](hnow_core::ScheduleTree) forward event by event,
//! enforcing the model's node-occupancy constraint, recording every busy
//! interval, and optionally substituting *perturbed* run-time overheads for
//! the nominal ones the schedule was planned with.
//!
//! * [`engine`] — the event-driven executor ([`execute`],
//!   [`execute_with_specs`]).
//! * [`sessions`] — the sessions-at-scale traffic engine: thousands of
//!   overlapping multicast sessions planned in batches and executed against
//!   shared per-node busy state ([`TrafficEngine`], [`TrafficReport`]).
//! * [`cluster`] — the sharded cluster service: a front-end dispatcher over
//!   per-shard engines with plan caches, gateway-stitched cross-shard
//!   sessions, and component-wise simulation ([`ShardedCluster`],
//!   [`ShardedTrafficReport`]). Both the traffic engine and the cluster run
//!   the crate's single private occupancy kernel (`kernel`), so the two
//!   surfaces share one documented same-instant tie-break rule.
//! * [`config`] — the unified builder-style [`RunConfig`] consumed by both
//!   engines via `with_config` (planner, loss/repair, chunk profile,
//!   sharding, control plane, thread pinning, telemetry).
//!
//! Both engines carry an optional, strictly observation-only telemetry
//! layer (the `hnow-telemetry` crate, attached via
//! [`RunConfig::telemetry`]): the occupancy kernel streams structured
//! [`TraceEvent`](hnow_telemetry::TraceEvent)s into any
//! [`TraceSink`](hnow_telemetry::TraceSink) — exportable as Chrome
//! `trace_event` JSON — a time-series collector folds the same stream into
//! the report's schema-5 `telemetry` section, and a wall-clock
//! [`PhaseProfiler`](hnow_telemetry::PhaseProfiler) attributes
//! plan/admit/bind/simulate/rebalance spans to worker threads without ever
//! entering a report. Attaching or detaching any of the three never
//! changes a report outside that optional trailing section.
//! * [`trace`] — execution traces, per-node timelines and ASCII Gantt
//!   rendering.
//! * [`faults`] — seeded, deterministic message loss ([`LossProfile`]):
//!   iid rates, per-class overrides and Gilbert-style bursts, injected into
//!   the shared kernel's deliveries and repaired by NACK-driven
//!   retransmission (see the kernel's band-2 documentation in `kernel`).
//! * [`perturb`] — reproducible multiplicative overhead jitter, replayed
//!   through the same occupancy kernel.
//! * [`validate`] — cross-check of simulated against closed-form times and
//!   the one-port occupancy checker ([`check_one_port`]).
//!
//! ```
//! use hnow_core::greedy_schedule;
//! use hnow_model::{MulticastSet, NetParams, NodeSpec};
//! use hnow_sim::execute;
//!
//! let set = MulticastSet::new(
//!     NodeSpec::new(2, 3),
//!     vec![NodeSpec::new(1, 1), NodeSpec::new(1, 1), NodeSpec::new(2, 3)],
//! )
//! .unwrap();
//! let net = NetParams::new(1);
//! let tree = greedy_schedule(&set, net);
//! let trace = execute(&tree, &set, net).unwrap();
//! println!("{}", trace.render_gantt(60));
//! assert!(trace.completion.raw() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod config;
pub mod engine;
pub mod error;
pub mod event;
pub mod faults;
mod kernel;
pub mod perturb;
pub mod sessions;
pub mod trace;
pub mod validate;

pub use cluster::{
    ControlConfig, ControlPlaneReport, MigrationRecord, RebalanceConfig, ShardReport,
    ShardedCluster, ShardedClusterConfig, ShardedSessionRecord, ShardedTrafficReport,
};
pub use config::RunConfig;
pub use engine::{execute, execute_with_specs};
pub use error::SimError;
pub use event::{Event, EventQueue};
pub use faults::{BurstProfile, LossProfile};
pub use perturb::{kernel_replay, PerturbConfig};
pub use sessions::{
    CacheStats, ReliabilityReport, SessionRecord, StreamingReport, TrafficConfig, TrafficEngine,
    TrafficMetrics, TrafficReport,
};
pub use trace::{Activity, BusyInterval, SimTrace};
pub use validate::{check_against_analytic, check_one_port};
