//! Cross-checking the simulator against the analytic timing, and the
//! one-port occupancy checker for activity logs.

use crate::engine::execute;
use crate::error::SimError;
use hnow_core::schedule::evaluate;
use hnow_core::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, Time};

/// Executes the schedule on the simulator and verifies that every delivery
/// and reception time matches the closed-form evaluation of
/// [`hnow_core::schedule::times`]. Returns the node ids that disagree (empty
/// when the two agree everywhere, which is the expected outcome).
pub fn check_against_analytic(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<Vec<NodeId>, SimError> {
    let trace = execute(tree, set, net)?;
    let timing = evaluate(tree, set, net)?;
    let mut mismatches = Vec::new();
    for v in set.destination_ids() {
        if trace.delivery(v) != timing.delivery(v) || trace.reception(v) != timing.reception(v) {
            mismatches.push(v);
        }
    }
    if trace.completion != timing.reception_completion() && mismatches.is_empty() {
        mismatches.push(NodeId::SOURCE);
    }
    Ok(mismatches)
}

/// Checks an activity log against the model's one-port constraint: no node
/// may have two overlapping busy intervals. `activities` is `(node, start,
/// end)` in any order over the node id space `0..n`; returns the nodes with
/// at least one overlap, ascending (empty means the log is one-port clean).
/// Zero-length activities cannot overlap anything. Repair retransmissions
/// claim node time like any planned activity, so lossy kernel logs must
/// pass this check unchanged.
pub fn check_one_port(n: usize, activities: &[(usize, Time, Time)]) -> Vec<usize> {
    let mut per_node: Vec<Vec<(Time, Time)>> = vec![Vec::new(); n];
    for &(node, start, end) in activities {
        per_node[node].push((start, end));
    }
    let mut offenders = Vec::new();
    for (node, intervals) in per_node.iter_mut().enumerate() {
        intervals.sort_unstable();
        let mut horizon = Time::ZERO;
        let mut overlap = false;
        for &(start, end) in intervals.iter().filter(|&&(s, e)| e > s) {
            if start < horizon {
                overlap = true;
                break;
            }
            horizon = end;
        }
        if overlap {
            offenders.push(node);
        }
    }
    offenders
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_core::planner::{find, PlanContext, PlanRequest};
    use hnow_model::NodeSpec;

    #[test]
    fn simulator_agrees_with_analytic_times_for_every_strategy() {
        let set = MulticastSet::new(
            NodeSpec::new(2, 3),
            vec![
                NodeSpec::new(1, 1),
                NodeSpec::new(1, 1),
                NodeSpec::new(2, 3),
                NodeSpec::new(4, 6),
                NodeSpec::new(4, 6),
                NodeSpec::new(9, 14),
            ],
        )
        .unwrap();
        let strategies = [
            "greedy",
            "greedy+leaf",
            "fnf",
            "binomial",
            "chain",
            "star",
            "random",
        ];
        for latency in [0u64, 1, 7] {
            let net = NetParams::new(latency);
            for name in strategies {
                let request = PlanRequest::new(set.clone(), net).with_seed(11);
                let tree = find(name)
                    .unwrap()
                    .construct(&request, &PlanContext::new())
                    .unwrap()
                    .tree;
                let mismatches = check_against_analytic(&tree, &set, net).unwrap();
                assert!(mismatches.is_empty(), "{name}: {mismatches:?}");
            }
        }
    }
}
