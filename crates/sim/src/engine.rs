//! The discrete-event execution engine.
//!
//! [`execute`] plays a complete schedule tree forward under the receive-send
//! model: every node incurs its sending overhead once per child (in the
//! recorded delivery order, back to back), the message travels for the
//! network latency, and the destination incurs its receiving overhead before
//! it may begin its own transmissions. The engine tracks every busy interval
//! and verifies that no node is ever double-booked — precisely the
//! occupancy constraint that defines the model — so it serves as an
//! independent check of the closed-form times computed by
//! [`hnow_core::schedule::times`] and as the substrate for perturbed
//! (what-if) executions in which the actual overheads differ from the ones
//! the schedule was planned with.

use crate::error::SimError;
use crate::event::{Event, EventQueue};
use crate::trace::{Activity, BusyInterval, SimTrace};
use hnow_core::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, NodeSpec, Time};

/// Executes a schedule with the overheads of the given multicast set.
pub fn execute(
    tree: &ScheduleTree,
    set: &MulticastSet,
    net: NetParams,
) -> Result<SimTrace, SimError> {
    let specs: Vec<NodeSpec> = (0..set.num_nodes()).map(|i| set.spec(NodeId(i))).collect();
    execute_with_specs(tree, &specs, net)
}

/// Executes a schedule with explicit per-node overheads (indexed by node
/// id). This is the entry point used for perturbed executions, where the
/// *actual* overheads differ from the nominal ones the schedule was planned
/// with; the spec vector therefore does not need to satisfy the model's
/// correlation assumption.
pub fn execute_with_specs(
    tree: &ScheduleTree,
    specs: &[NodeSpec],
    net: NetParams,
) -> Result<SimTrace, SimError> {
    if specs.len() != tree.num_nodes() {
        return Err(SimError::SpecLengthMismatch {
            got: specs.len(),
            expected: tree.num_nodes(),
        });
    }
    if !tree.is_complete() {
        return Err(SimError::Schedule(
            hnow_core::CoreError::IncompleteSchedule {
                missing: tree.num_unattached(),
            },
        ));
    }
    let n = tree.num_nodes();
    let mut timelines: Vec<Vec<BusyInterval>> = vec![Vec::new(); n];
    let mut busy_until: Vec<Time> = vec![Time::ZERO; n];
    let mut delivery = vec![Time::ZERO; n];
    let mut reception = vec![Time::ZERO; n];

    let mut queue = EventQueue::new();

    // A node that holds the message schedules all its sends back to back.
    let schedule_sends =
        |node: NodeId, ready_at: Time, queue: &mut EventQueue, tree: &ScheduleTree| {
            let mut t = ready_at;
            for (i, &child) in tree.children(node).iter().enumerate() {
                queue.push(
                    t,
                    Event::SendStart {
                        sender: node,
                        receiver: child,
                        rank: (i + 1) as u64,
                    },
                );
                t += specs[node.index()].send();
            }
        };

    // The source holds the message at time zero.
    schedule_sends(NodeId::SOURCE, Time::ZERO, &mut queue, tree);

    let busy = |node: NodeId,
                start: Time,
                dur: Time,
                activity: Activity,
                busy_until: &mut [Time],
                timelines: &mut [Vec<BusyInterval>]|
     -> Result<Time, SimError> {
        if start < busy_until[node.index()] {
            return Err(SimError::OccupancyViolation {
                node,
                at: start,
                busy_until: busy_until[node.index()],
            });
        }
        let end = start + dur;
        busy_until[node.index()] = end;
        timelines[node.index()].push(BusyInterval {
            start,
            end,
            activity,
        });
        Ok(end)
    };

    while let Some((time, event)) = queue.pop() {
        match event {
            Event::SendStart {
                sender,
                receiver,
                rank: _,
            } => {
                let end = busy(
                    sender,
                    time,
                    specs[sender.index()].send(),
                    Activity::Send { to: receiver },
                    &mut busy_until,
                    &mut timelines,
                )?;
                queue.push(end + net.latency(), Event::Arrival { sender, receiver });
            }
            Event::Arrival { sender, receiver } => {
                delivery[receiver.index()] = time;
                let end = busy(
                    receiver,
                    time,
                    specs[receiver.index()].recv(),
                    Activity::Receive { from: sender },
                    &mut busy_until,
                    &mut timelines,
                )?;
                queue.push(end, Event::ReceiveComplete { node: receiver });
            }
            Event::ReceiveComplete { node } => {
                reception[node.index()] = time;
                schedule_sends(node, time, &mut queue, tree);
            }
        }
    }

    let completion = reception[1..].iter().copied().max().unwrap_or(Time::ZERO);
    Ok(SimTrace {
        timelines,
        delivery,
        reception,
        completion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_core::algorithms::greedy::greedy_schedule;
    use hnow_core::schedule::evaluate;
    use hnow_model::NodeSpec;

    fn figure1() -> (MulticastSet, NetParams) {
        let slow = NodeSpec::new(2, 3);
        let fast = NodeSpec::new(1, 1);
        (
            MulticastSet::new(slow, vec![fast, fast, fast, slow]).unwrap(),
            NetParams::new(1),
        )
    }

    #[test]
    fn simulation_matches_analytic_times_for_greedy() {
        let (set, net) = figure1();
        let tree = greedy_schedule(&set, net);
        let trace = execute(&tree, &set, net).unwrap();
        let timing = evaluate(&tree, &set, net).unwrap();
        assert_eq!(trace.completion, timing.reception_completion());
        for v in set.destination_ids() {
            assert_eq!(trace.delivery(v), timing.delivery(v));
            assert_eq!(trace.reception(v), timing.reception(v));
        }
    }

    #[test]
    fn busy_intervals_never_overlap() {
        let (set, net) = figure1();
        let tree = greedy_schedule(&set, net);
        let trace = execute(&tree, &set, net).unwrap();
        for timeline in &trace.timelines {
            for pair in timeline.windows(2) {
                assert!(pair[0].end <= pair[1].start);
            }
        }
    }

    #[test]
    fn perturbed_execution_uses_actual_overheads() {
        let (set, net) = figure1();
        let tree = greedy_schedule(&set, net);
        // Double every receive overhead at "run time".
        let specs: Vec<NodeSpec> = (0..set.num_nodes())
            .map(|i| {
                let s = set.spec(NodeId(i));
                NodeSpec::new(s.send().raw(), s.recv().raw() * 2)
            })
            .collect();
        let nominal = execute(&tree, &set, net).unwrap();
        let actual = execute_with_specs(&tree, &specs, net).unwrap();
        assert!(actual.completion > nominal.completion);
    }

    #[test]
    fn spec_length_mismatch_is_reported() {
        let (set, net) = figure1();
        let tree = greedy_schedule(&set, net);
        let err = execute_with_specs(&tree, &[NodeSpec::new(1, 1)], net).unwrap_err();
        assert!(matches!(err, SimError::SpecLengthMismatch { .. }));
    }

    #[test]
    fn incomplete_schedule_is_rejected() {
        let (set, net) = figure1();
        let tree = hnow_core::ScheduleTree::new(set.num_nodes());
        assert!(matches!(
            execute(&tree, &set, net),
            Err(SimError::Schedule(_))
        ));
    }

    #[test]
    fn empty_multicast_completes_at_zero() {
        let set = MulticastSet::new(NodeSpec::new(2, 2), vec![]).unwrap();
        let tree = hnow_core::ScheduleTree::new(1);
        let trace = execute(&tree, &set, NetParams::new(1)).unwrap();
        assert_eq!(trace.completion, Time::ZERO);
        assert!(trace.timelines[0].is_empty());
    }
}
