//! Execution traces and their rendering.

use hnow_model::{NodeId, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a node was doing during a busy interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activity {
    /// Incurring its sending overhead for a transmission to `to`.
    Send {
        /// Destination of the transmission.
        to: NodeId,
    },
    /// Incurring its receiving overhead for the message sent by `from`.
    Receive {
        /// The node that sent the message.
        from: NodeId,
    },
}

/// A half-open busy interval `[start, end)` of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyInterval {
    /// Interval start.
    pub start: Time,
    /// Interval end (exclusive).
    pub end: Time,
    /// What the node was doing.
    pub activity: Activity,
}

/// The full execution trace of a multicast schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTrace {
    /// Busy intervals per node (indexed by node id), each list sorted by
    /// start time.
    pub timelines: Vec<Vec<BusyInterval>>,
    /// Delivery time per node (instant the message arrived); 0 for the
    /// source.
    pub delivery: Vec<Time>,
    /// Reception time per node (instant the receive overhead finished); 0
    /// for the source.
    pub reception: Vec<Time>,
    /// The simulated reception completion time.
    pub completion: Time,
}

impl SimTrace {
    /// Number of participating nodes.
    pub fn num_nodes(&self) -> usize {
        self.timelines.len()
    }

    /// Reception time of a node.
    pub fn reception(&self, v: NodeId) -> Time {
        self.reception[v.index()]
    }

    /// Delivery time of a node.
    pub fn delivery(&self, v: NodeId) -> Time {
        self.delivery[v.index()]
    }

    /// Total busy time (send + receive overheads) of a node.
    pub fn busy_time(&self, v: NodeId) -> Time {
        self.timelines[v.index()]
            .iter()
            .map(|i| i.end - i.start)
            .sum()
    }

    /// Idle time of a node between its first activity and the multicast's
    /// completion — a measure of how unevenly the schedule loads the nodes.
    pub fn idle_time(&self, v: NodeId) -> Time {
        let first = self.timelines[v.index()]
            .first()
            .map(|i| i.start)
            .unwrap_or(self.completion);
        (self.completion - first).saturating_sub(self.busy_time(v))
    }

    /// Renders an ASCII Gantt chart of the execution, `width` characters
    /// wide. Send overheads render as `S`, receive overheads as `R`, idle
    /// time as `.`.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let span = self.completion.raw().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "time 0 .. {} ({} units per column)\n",
            self.completion,
            (span as f64 / width as f64).max(1.0).ceil() as u64
        ));
        for (i, timeline) in self.timelines.iter().enumerate() {
            let mut row = vec!['.'; width];
            for interval in timeline {
                let a = (interval.start.raw() * width as u64 / span) as usize;
                let b = ((interval.end.raw() * width as u64).div_ceil(span) as usize).min(width);
                let ch = match interval.activity {
                    Activity::Send { .. } => 'S',
                    Activity::Receive { .. } => 'R',
                };
                for slot in row.iter_mut().take(b).skip(a) {
                    *slot = ch;
                }
            }
            out.push_str(&format!(
                "{:>5} |{}|\n",
                format!("p{i}"),
                row.iter().collect::<String>()
            ));
        }
        out
    }
}

impl fmt::Display for SimTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "completion: {}", self.completion)?;
        for (i, timeline) in self.timelines.iter().enumerate() {
            write!(f, "p{i}:")?;
            for interval in timeline {
                match interval.activity {
                    Activity::Send { to } => write!(
                        f,
                        " send->{}[{},{})",
                        to.index(),
                        interval.start,
                        interval.end
                    )?,
                    Activity::Receive { from } => write!(
                        f,
                        " recv<-{}[{},{})",
                        from.index(),
                        interval.start,
                        interval.end
                    )?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> SimTrace {
        SimTrace {
            timelines: vec![
                vec![BusyInterval {
                    start: Time::new(0),
                    end: Time::new(2),
                    activity: Activity::Send { to: NodeId(1) },
                }],
                vec![BusyInterval {
                    start: Time::new(3),
                    end: Time::new(4),
                    activity: Activity::Receive { from: NodeId(0) },
                }],
            ],
            delivery: vec![Time::ZERO, Time::new(3)],
            reception: vec![Time::ZERO, Time::new(4)],
            completion: Time::new(4),
        }
    }

    #[test]
    fn accessors() {
        let t = tiny_trace();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.reception(NodeId(1)), Time::new(4));
        assert_eq!(t.delivery(NodeId(1)), Time::new(3));
        assert_eq!(t.busy_time(NodeId(0)), Time::new(2));
        assert_eq!(t.busy_time(NodeId(1)), Time::new(1));
        // Source active from 0 to 2, completion 4: idle 2.
        assert_eq!(t.idle_time(NodeId(0)), Time::new(2));
        assert_eq!(t.idle_time(NodeId(1)), Time::ZERO);
    }

    #[test]
    fn rendering() {
        let t = tiny_trace();
        let text = t.to_string();
        assert!(text.contains("send->1[0,2)"));
        assert!(text.contains("recv<-0[3,4)"));
        let gantt = t.render_gantt(40);
        assert!(gantt.contains("p0"));
        assert!(gantt.contains('S'));
        assert!(gantt.contains('R'));
        // Width floor.
        let small = t.render_gantt(1);
        assert!(small.lines().count() >= 3);
    }
}
