//! Sessions-at-scale: a deterministic traffic engine driving overlapping
//! multicast sessions through the planner and a shared-resource simulation.
//!
//! [`execute`](crate::execute) plays *one* schedule on an otherwise idle
//! cluster. A multicast **service** instead sees a stream of sessions
//! against the *same* workstations: while node `w` incurs sending overhead
//! for session A it cannot receive or forward for session B, so overlapping
//! sessions contend for node time. [`TrafficEngine`] models exactly that:
//!
//! 1. **Admission** — [`SessionRequest`]s (from
//!    [`hnow_workload::traffic`]) are planned in arrival order, in batches,
//!    sequentially against one shared [`PlanContext`] (sequential planning
//!    keeps the report's [`CacheStats`] deterministic). Each session is
//!    reduced to its class signature, so the context's canonically-keyed
//!    [`DpCache`](hnow_core::planner::DpCache) shares one Theorem 2 table
//!    across every session of the cluster (bounded by
//!    [`TrafficConfig::dp_cache_capacity`]).
//! 2. **Delivery** — one pass of the shared occupancy kernel
//!    (the crate-private `kernel` module, the same loop behind the
//!    sharded cluster)
//!    executes *all* planned trees against per-node busy state: an activity
//!    wanting a busy node is deferred to the node's release time, with
//!    same-instant ties broken by the kernel's documented `(time, band,
//!    seq)` rule, so runs are reproducible. With no contention each session
//!    reproduces its schedule's analytic times exactly.
//! 3. **Churn** — a session whose source cannot start serving it within its
//!    patience ([`SessionRequest::patience`]) abandons and leaves the
//!    system unserved.
//!
//! The result is a serializable [`TrafficReport`]: per-session latency
//! records plus engine-wide throughput, queueing, utilization and DP-cache
//! statistics. The whole pipeline is deterministic — the same requests over
//! the same pool yield a byte-identical JSON report.

use crate::error::SimError;
use crate::faults::LossProfile;
use crate::kernel;
use hnow_core::planner::{find, Plan, PlanContext, PlanRequest, Planner};
use hnow_core::{RepairPlacement, ScheduleTree};
use hnow_model::{ChunkProfile, NetParams, NodeSpec, Time, TypedMulticast};
use hnow_telemetry::{
    LogHistogram, MemorySink, Recorder, TelemetryConfig, TelemetryReport, TimeSeries, TraceSink,
};
use hnow_workload::{NodePool, SessionRequest};
use serde::Serialize;
use std::sync::Arc;

/// Configuration of a [`TrafficEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Registry name of the planner serving every session.
    pub planner: String,
    /// Number of sessions admitted (planned) per `plan_many` batch.
    pub batch_size: usize,
    /// LRU capacity of the shared DP-table cache; `None` leaves it
    /// unbounded (fine for single-cluster traffic, wasteful for long runs
    /// over many message sizes or latencies).
    pub dp_cache_capacity: Option<usize>,
    /// Seeded message-loss injection; `None` (the default) runs the
    /// lossless model. A `Some` profile with rate 0 everywhere is
    /// guaranteed to reproduce the `None` report byte for byte.
    pub loss: Option<LossProfile>,
    /// Repairer placement policy annotated onto every admitted plan (only
    /// consulted when [`TrafficConfig::loss`] is active).
    pub repair: RepairPlacement,
    /// Run-wide default chunk profile for streaming sessions. A request
    /// carrying its own [`SessionRequest::chunks`] wins; `None` (the
    /// default) leaves profile-less requests on the atomic path.
    pub chunks: Option<ChunkProfile>,
}

impl Default for TrafficConfig {
    /// Refined greedy, batches of 64, at most 128 cached DP tables, no
    /// loss, source-only repair, atomic sessions.
    fn default() -> Self {
        TrafficConfig {
            planner: "greedy+leaf".to_string(),
            batch_size: 64,
            dp_cache_capacity: Some(128),
            loss: None,
            repair: RepairPlacement::SourceOnly,
            chunks: None,
        }
    }
}

/// DP-cache statistics of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Table lookups performed while planning.
    pub lookups: usize,
    /// Lookups served from a cached table.
    pub hits: usize,
    /// Lookups that built a table (exactly one per build).
    pub misses: usize,
    /// Tables evicted by the LRU capacity bound.
    pub evictions: usize,
}

impl CacheStats {
    /// Snapshot of a context's DP-cache counters.
    pub fn from_context(ctx: &PlanContext) -> Self {
        CacheStats {
            lookups: ctx.dp_cache().lookups(),
            hits: ctx.dp_cache().hits(),
            misses: ctx.dp_cache().misses(),
            evictions: ctx.dp_cache().evictions(),
        }
    }

    /// Fraction of lookups served from cache — 0 (never `NaN`) when the run
    /// performed no lookups at all, which is the steady state of every
    /// non-DP planner and of an empty shard.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Outcome of one session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SessionRecord {
    /// Session id from the request.
    pub id: u64,
    /// Arrival time.
    pub arrival: u64,
    /// Number of destinations.
    pub group_size: usize,
    /// The planner's analytic reception completion `R_T` for the session's
    /// schedule on an idle cluster (latency the session would see with zero
    /// contention).
    pub planned_reception: u64,
    /// The analytic delivery completion `D_T` on an idle cluster.
    pub planned_delivery: u64,
    /// Whether the session left unserved (patience exceeded).
    pub abandoned: bool,
    /// When the source actually started serving the session (`None` if
    /// abandoned).
    pub started: Option<u64>,
    /// `started - arrival`: time spent queued behind other sessions.
    pub queue_delay: u64,
    /// Reception completion relative to arrival (0 if abandoned).
    pub reception_latency: u64,
    /// Delivery completion relative to arrival (0 if abandoned).
    pub delivery_latency: u64,
    /// Members given up on after exhausting repair retries (0 on lossless
    /// runs; a session with `failed_members > 0` completed *partially*).
    pub failed_members: usize,
    /// Repair requests the session's receivers issued.
    pub nacks: u64,
    /// Repair retransmissions charged against repairer occupancy.
    pub repair_sends: u64,
    /// Per repaired receiver: reception completion minus the instant the
    /// receiver first learned it missed a delivery, in completion order.
    pub repair_delays: Vec<u64>,
    /// Chunks of the session's payload train (1 = the atomic base model).
    pub chunks: u32,
    /// Chunks that settled past their playout deadline at some member
    /// (always 0 on atomic, abandoned or deadline-less sessions).
    pub chunk_deadline_misses: u64,
    /// `|inter-chunk completion gap − release interval|` per consecutive
    /// chunk pair (empty on atomic and abandoned sessions).
    pub chunk_jitters: Vec<u64>,
}

/// Loss, repair and degradation aggregates of one run (the report's
/// `reliability` section, schema 3; unchanged in schema 4 apart from
/// counting per *chunk*-delivery on streaming runs).
///
/// Like [`TrafficMetrics`], every ratio is defined on an empty denominator:
/// [`delivered_fraction`](ReliabilityReport::delivered_fraction) is **1**
/// (an empty or lossless run delivered everything it was offered) and
/// [`residual_loss`](ReliabilityReport::residual_loss) is **0**, so empty
/// runs serialize as the lossless fixed point rather than `NaN`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReliabilityReport {
    /// Deliveries offered by non-abandoned sessions: group size × chunks,
    /// so a streaming session's chunks count individually (an atomic
    /// session offers its group size, as before).
    pub offered_deliveries: usize,
    /// Deliveries that completed reception (originally or via repair).
    pub delivered: usize,
    /// Deliveries given up on after exhausting repair retries.
    pub failed: usize,
    /// `delivered / offered` (1 when nothing was offered).
    pub delivered_fraction: f64,
    /// `failed / offered` (0 when nothing was offered).
    pub residual_loss: f64,
    /// Non-abandoned sessions that completed partially (≥ 1 failed
    /// member).
    pub degraded_sessions: usize,
    /// Total repair requests issued by receivers.
    pub nacks: u64,
    /// Total repair retransmissions charged against repairer occupancy.
    pub repair_sends: u64,
    /// Median repair delay over repaired receivers (0 when none).
    pub p50_repair_delay: u64,
    /// 95th-percentile repair delay over repaired receivers.
    pub p95_repair_delay: u64,
    /// 99th-percentile repair delay over repaired receivers.
    pub p99_repair_delay: u64,
}

impl ReliabilityReport {
    /// Aggregates the reliability section from per-session records.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a SessionRecord>) -> Self {
        let mut offered = 0usize;
        let mut failed = 0usize;
        let mut degraded = 0usize;
        let mut nacks = 0u64;
        let mut repair_sends = 0u64;
        let mut delays = LogHistogram::new();
        for record in records {
            nacks += record.nacks;
            repair_sends += record.repair_sends;
            if record.abandoned {
                continue;
            }
            offered += record.group_size * record.chunks.max(1) as usize;
            failed += record.failed_members;
            if record.failed_members > 0 {
                degraded += 1;
            }
            for &delay in &record.repair_delays {
                delays.record(delay);
            }
        }
        ReliabilityReport {
            offered_deliveries: offered,
            delivered: offered - failed,
            failed,
            delivered_fraction: if offered == 0 {
                1.0
            } else {
                (offered - failed) as f64 / offered as f64
            },
            residual_loss: if offered == 0 {
                0.0
            } else {
                failed as f64 / offered as f64
            },
            degraded_sessions: degraded,
            nacks,
            repair_sends,
            p50_repair_delay: delays.percentile(50),
            p95_repair_delay: delays.percentile(95),
            p99_repair_delay: delays.percentile(99),
        }
    }
}

/// Streaming aggregates of one run (the report's `streaming` section,
/// schema 4).
///
/// A *chunk* here is one link of a session's payload train (session
/// granularity: released once, delivered group-wide); a *chunk-delivery*
/// is one chunk reaching one member. Atomic sessions contribute their
/// group size to the chunk-delivery counts (they move exactly one payload)
/// but nothing to the chunk counts, deadline statistics or jitter — so a
/// fully atomic run serializes the all-zero fixed point for those fields
/// and every ratio is 0 (never `NaN`) on an empty denominator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamingReport {
    /// Non-abandoned streaming sessions (`chunks > 1`).
    pub streaming_sessions: usize,
    /// Chunks offered by non-abandoned streaming sessions.
    pub offered_chunks: u64,
    /// Chunk-deliveries offered by non-abandoned sessions (group size ×
    /// chunks).
    pub offered_chunk_deliveries: u64,
    /// Chunk-deliveries that completed reception, originally or via
    /// repair.
    pub completed_chunk_deliveries: u64,
    /// Chunks that settled past their playout deadline at some member.
    pub deadline_misses: u64,
    /// `deadline_misses / offered_chunks` (0 when no chunks were offered).
    pub deadline_miss_rate: f64,
    /// Steady-state throughput: completed chunk-deliveries per 1000 time
    /// units of makespan (0 for a zero makespan).
    pub steady_state_throughput: f64,
    /// Median `|inter-chunk completion gap − release interval|` over
    /// consecutive chunk pairs of streaming sessions (0 when none).
    pub p50_interchunk_jitter: u64,
    /// 95th-percentile inter-chunk jitter.
    pub p95_interchunk_jitter: u64,
    /// 99th-percentile inter-chunk jitter.
    pub p99_interchunk_jitter: u64,
}

impl StreamingReport {
    /// Aggregates the streaming section from per-session records;
    /// `makespan` is the run's reception makespan (the throughput
    /// denominator, shared with [`TrafficMetrics`]).
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a SessionRecord>,
        makespan: u64,
    ) -> Self {
        let mut streaming_sessions = 0usize;
        let mut offered_chunks = 0u64;
        let mut offered_deliveries = 0u64;
        let mut failed_deliveries = 0u64;
        let mut deadline_misses = 0u64;
        let mut jitters = LogHistogram::new();
        for record in records {
            if record.abandoned {
                continue;
            }
            let chunks = u64::from(record.chunks.max(1));
            offered_deliveries += record.group_size as u64 * chunks;
            failed_deliveries += record.failed_members as u64;
            if record.chunks > 1 {
                streaming_sessions += 1;
                offered_chunks += chunks;
                deadline_misses += record.chunk_deadline_misses;
                for &jitter in &record.chunk_jitters {
                    jitters.record(jitter);
                }
            }
        }
        let completed = offered_deliveries - failed_deliveries;
        StreamingReport {
            streaming_sessions,
            offered_chunks,
            offered_chunk_deliveries: offered_deliveries,
            completed_chunk_deliveries: completed,
            deadline_misses,
            deadline_miss_rate: if offered_chunks == 0 {
                0.0
            } else {
                deadline_misses as f64 / offered_chunks as f64
            },
            steady_state_throughput: if makespan == 0 {
                0.0
            } else {
                completed as f64 * 1000.0 / makespan as f64
            },
            p50_interchunk_jitter: jitters.percentile(50),
            p95_interchunk_jitter: jitters.percentile(95),
            p99_interchunk_jitter: jitters.percentile(99),
        }
    }
}

/// NaN-free aggregate statistics over a set of session records.
///
/// Every mean, rate and percentile is defined to be **0 when its
/// denominator is empty** (no sessions, no completions, zero makespan), so
/// aggregates of an idle or empty shard serialize as plain zeros instead of
/// poisoning the JSON report with `NaN`. Both the flat [`TrafficReport`]
/// and the sharded cluster's per-shard aggregates are computed through this
/// one implementation.
///
/// Percentiles (here and in the reliability/streaming sections) stream
/// through a fixed-allocation [`LogHistogram`] instead of sorting a cloned
/// sample vector: the reported value is the lower bound of the log bucket
/// holding the exact rank-`q` sample — identical below 64 and at most 1/64
/// low above — while means stay exact (the histogram keeps exact
/// sum/count).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficMetrics {
    /// Number of offered sessions.
    pub sessions: usize,
    /// Sessions fully delivered.
    pub completed: usize,
    /// Sessions that left unserved (churn).
    pub abandoned: usize,
    /// Absolute time at which the last covered session completed (0 when
    /// nothing completed).
    pub makespan: u64,
    /// Completed sessions per 1000 time units of makespan.
    pub throughput_per_kilotick: f64,
    /// Mean reception latency over completed sessions.
    pub mean_reception_latency: f64,
    /// Median reception latency over completed sessions.
    pub p50_reception_latency: u64,
    /// 95th-percentile reception latency over completed sessions.
    pub p95_reception_latency: u64,
    /// 99th-percentile reception latency over completed sessions.
    pub p99_reception_latency: u64,
    /// Mean queue delay (start − arrival) over completed sessions.
    pub mean_queue_delay: f64,
    /// Mean of per-node busy-time / makespan over the covered nodes.
    pub mean_node_utilization: f64,
    /// Maximum per-node busy-time / makespan over the covered nodes.
    pub peak_node_utilization: f64,
}

impl TrafficMetrics {
    /// Aggregates a set of session records against the busy times of the
    /// nodes they ran on (`busy_time` is indexed by whatever node subset the
    /// caller accounts — the whole pool for a flat report, one shard's nodes
    /// for a per-shard aggregate).
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a SessionRecord>,
        busy_time: &[u64],
    ) -> Self {
        let mut sessions = 0usize;
        let mut completed = 0usize;
        let mut abandoned = 0usize;
        let mut makespan = 0u64;
        let mut latencies = LogHistogram::new();
        let mut queue_delay_sum = 0u64;
        for record in records {
            sessions += 1;
            if record.abandoned {
                abandoned += 1;
            } else {
                completed += 1;
                makespan = makespan.max(record.arrival + record.reception_latency);
                latencies.record(record.reception_latency);
                queue_delay_sum += record.queue_delay;
            }
        }
        TrafficMetrics {
            sessions,
            completed,
            abandoned,
            makespan,
            throughput_per_kilotick: if makespan == 0 {
                0.0
            } else {
                completed as f64 * 1000.0 / makespan as f64
            },
            // The histogram keeps the exact sum and count, so the mean is
            // exact; only the percentiles are bucket-quantized (≤ 1/64 low).
            mean_reception_latency: latencies.mean(),
            p50_reception_latency: latencies.percentile(50),
            p95_reception_latency: latencies.percentile(95),
            p99_reception_latency: latencies.percentile(99),
            mean_queue_delay: if completed == 0 {
                0.0
            } else {
                queue_delay_sum as f64 / completed as f64
            },
            mean_node_utilization: Self::utilization_over(busy_time, makespan).0,
            peak_node_utilization: Self::utilization_over(busy_time, makespan).1,
        }
    }

    /// Mean and peak busy-time / horizon over a node subset — 0 (never
    /// `NaN`) for a zero horizon or an empty subset. Callers accounting a
    /// node subset whose busy time includes work for sessions *outside* the
    /// aggregated record set (a shard's nodes serving cross-shard traffic)
    /// must pass the run-wide horizon here rather than rely on
    /// [`TrafficMetrics::from_records`]'s record-derived makespan, or the
    /// ratio can exceed 1.
    pub fn utilization_over(busy_time: &[u64], horizon: u64) -> (f64, f64) {
        if horizon == 0 || busy_time.is_empty() {
            return (0.0, 0.0);
        }
        let mean = busy_time.iter().sum::<u64>() as f64 / (busy_time.len() as f64 * horizon as f64);
        let peak = busy_time.iter().copied().max().unwrap_or(0) as f64 / horizon as f64;
        (mean, peak)
    }
}

/// The serializable result of one traffic run.
///
/// Determinism contract: for a fixed pool, request vector and config, every
/// field — including the full `per_session` vector — is identical across
/// runs and platforms with the same float formatting, so serialized reports
/// can be compared byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficReport {
    /// Schema version of this artifact.
    pub schema: u32,
    /// Planner that served the sessions.
    pub planner: String,
    /// Admission batch size.
    pub batch_size: usize,
    /// Network latency `L` of the run.
    pub net_latency: u64,
    /// Number of offered sessions.
    pub sessions: usize,
    /// Sessions fully delivered.
    pub completed: usize,
    /// Sessions that left unserved (churn).
    pub abandoned: usize,
    /// Time at which the last session completed.
    pub makespan: u64,
    /// Completed sessions per 1000 time units of makespan.
    pub throughput_per_kilotick: f64,
    /// Mean reception latency over completed sessions.
    pub mean_reception_latency: f64,
    /// Median reception latency over completed sessions.
    pub p50_reception_latency: u64,
    /// 95th-percentile reception latency over completed sessions.
    pub p95_reception_latency: u64,
    /// 99th-percentile reception latency over completed sessions.
    pub p99_reception_latency: u64,
    /// Mean queue delay (start − arrival) over completed sessions.
    pub mean_queue_delay: f64,
    /// Mean of per-node busy-time / makespan.
    pub mean_node_utilization: f64,
    /// Maximum per-node busy-time / makespan.
    pub peak_node_utilization: f64,
    /// Loss, repair and degradation aggregates (all-zero/fixed-point on
    /// lossless runs).
    pub reliability: ReliabilityReport,
    /// Streaming aggregates (all-zero/fixed-point on atomic runs).
    pub streaming: StreamingReport,
    /// Shared DP-cache statistics of the planning phase.
    pub cache: CacheStats,
    /// One record per offered session, in request order.
    pub per_session: Vec<SessionRecord>,
    /// Fixed-window time series over the run's trace (schema 5); present
    /// only when the run config attached a
    /// [`TelemetryConfig::with_timeseries`](hnow_telemetry::TelemetryConfig::with_timeseries)
    /// window. Always the report's last field, so untraced reports differ
    /// from their schema-4 ancestors only in this trailing `null`.
    pub telemetry: Option<TelemetryReport>,
}

/// Run-scoped trace destinations, shared by both engines: the user's sink
/// (from [`TelemetryConfig::with_sink`]), the internal memory sink backing
/// the report's `telemetry` time-series section
/// ([`TelemetryConfig::with_timeseries`]), or both. `None` when neither is
/// attached — the kernel then sees no recorder and skips every emission
/// site.
pub(crate) struct TraceDest {
    user: Option<Arc<dyn TraceSink>>,
    internal: Option<(u64, MemorySink)>,
}

impl TraceDest {
    /// The run's destinations, or `None` when nothing needs the trace.
    pub(crate) fn from(telemetry: Option<&TelemetryConfig>) -> Option<TraceDest> {
        let user = telemetry.and_then(|t| t.sink.clone());
        let internal = telemetry
            .and_then(|t| t.timeseries)
            .map(|window| (window, MemorySink::new()));
        if user.is_none() && internal.is_none() {
            None
        } else {
            Some(TraceDest { user, internal })
        }
    }

    /// The sink fan-out list a [`Recorder`] is built over.
    pub(crate) fn sinks(&self) -> Vec<&dyn TraceSink> {
        let mut sinks: Vec<&dyn TraceSink> = Vec::new();
        if let Some(sink) = self.user.as_deref() {
            sinks.push(sink);
        }
        if let Some((_, sink)) = self.internal.as_ref() {
            sinks.push(sink);
        }
        sinks
    }

    /// Folds the internal sink into the report's `telemetry` section
    /// (`None` when no time-series window was attached).
    pub(crate) fn report(self, shard_sizes: &[usize]) -> Option<TelemetryReport> {
        self.internal
            .map(|(window, sink)| TimeSeries::over(&sink.take(), window, shard_sizes))
    }
}

/// Plans and simulates streams of multicast sessions over one shared
/// cluster. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct TrafficEngine<'a> {
    pool: &'a NodePool,
    net: NetParams,
    config: TrafficConfig,
    threads: Option<usize>,
    telemetry: Option<TelemetryConfig>,
}

/// Per-session state during planning and simulation. Shared with the
/// sharded cluster ([`crate::cluster`]), whose dispatcher builds these with
/// pool-global node maps (and, for cross-shard sessions, stitched composed
/// trees) before handing them to a discrete-event pass.
pub(crate) struct SessionRuntime {
    /// Request id; the loss model keys its draws by it (never by slot or
    /// event order), so epoch slicing and sharding cannot change draws.
    pub(crate) id: u64,
    pub(crate) arrival: Time,
    pub(crate) deadline: Option<Time>,
    /// Local schedule-tree node index → pool node id.
    pub(crate) node_map: Vec<usize>,
    /// Local children lists of the schedule tree (delivery order). Shared so
    /// the sharded cluster's plan cache can reuse one tree shape across
    /// thousands of same-signature sessions.
    pub(crate) children: Arc<Vec<Vec<usize>>>,
    /// Local node → local id of its designated repairer (a
    /// [`RepairPlacement`] assignment; `None` means source-only). Only
    /// consulted by faulted kernel runs.
    pub(crate) repairer: Option<Arc<Vec<usize>>>,
    pub(crate) planned_reception: Time,
    pub(crate) planned_delivery: Time,
    pub(crate) started: Option<Time>,
    pub(crate) abandoned: bool,
    /// Destinations still to complete reception.
    pub(crate) pending: usize,
    pub(crate) completed_at: Time,
    pub(crate) delivered_at: Time,
    /// Repair requests issued by this session's receivers.
    pub(crate) nacks: u64,
    /// Repair retransmissions charged against repairer occupancy.
    pub(crate) repair_sends: u64,
    /// Members given up on after exhausting retries. On streaming sessions
    /// each `(chunk, member)` give-up counts once.
    pub(crate) failed_members: usize,
    /// Reception minus first-missed instant per repaired receiver.
    pub(crate) repair_delays: Vec<u64>,
    /// Chunks of the session's payload train (1 = the atomic base model;
    /// the kernel takes no streaming branch at 1).
    pub(crate) chunks: u32,
    /// Release interval between consecutive chunks.
    pub(crate) chunk_interval: Time,
    /// Per-chunk playout deadline past each chunk's release, for the
    /// report's deadline-miss accounting.
    pub(crate) chunk_deadline: Option<Time>,
    /// Pipelined train (source opens the next chunk as soon as its port
    /// frees) vs sequential one-shot re-sends.
    pub(crate) pipelined: bool,
    /// Destinations still to settle each chunk (empty unless `chunks > 1`).
    pub(crate) chunk_pending: Vec<usize>,
    /// Latest reception completion per chunk (empty unless `chunks > 1`).
    pub(crate) chunk_completed_at: Vec<Time>,
}

impl SessionRuntime {
    /// Stamps a chunk profile onto a freshly built atomic runtime: scales
    /// `pending` to members × chunks and sizes the per-chunk bookkeeping.
    /// `None` — or a degenerate 1-chunk profile — leaves the atomic
    /// defaults untouched.
    pub(crate) fn apply_chunks(&mut self, profile: Option<ChunkProfile>) {
        let Some(profile) = profile else { return };
        let chunks = profile.chunks.max(1);
        self.chunks = chunks;
        self.chunk_interval = Time::new(profile.interval);
        self.chunk_deadline = profile.deadline.map(Time::new);
        self.pipelined = profile.pipelined;
        if chunks > 1 {
            let members = self.pending;
            self.pending = members * chunks as usize;
            self.chunk_pending = vec![members; chunks as usize];
            self.chunk_completed_at = vec![self.arrival; chunks as usize];
        }
    }
}

impl<'a> TrafficEngine<'a> {
    /// Creates an engine from the unified [`RunConfig`](crate::config::RunConfig)
    /// surface (its sharding and control fields are ignored here).
    pub fn with_config(
        pool: &'a NodePool,
        net: NetParams,
        config: &crate::config::RunConfig,
    ) -> Self {
        TrafficEngine {
            pool,
            net,
            config: config.traffic(),
            threads: config.threads,
            telemetry: config.telemetry.clone(),
        }
    }

    /// Plans and simulates the given sessions, returning the full report.
    ///
    /// Requests are admitted (planned) in slice order in batches of
    /// [`TrafficConfig::batch_size`]; the simulation then interleaves all
    /// sessions by arrival time against shared per-node busy state. With
    /// [`RunConfig::threads`](crate::config::RunConfig::threads) pinned,
    /// the whole run executes on a dedicated rayon pool of that size — the
    /// report is byte-identical at every thread count.
    pub fn run(&self, requests: &[SessionRequest]) -> Result<TrafficReport, SimError> {
        crate::config::install_pool(self.threads, || self.run_inner(requests))?
    }

    fn run_inner(&self, requests: &[SessionRequest]) -> Result<TrafficReport, SimError> {
        let planner = find(&self.config.planner).ok_or_else(|| SimError::UnknownPlanner {
            name: self.config.planner.clone(),
        })?;
        let ctx = match self.config.dp_cache_capacity {
            Some(cap) => PlanContext::with_dp_capacity(cap),
            None => PlanContext::new(),
        };
        let profiler = self.telemetry.as_ref().and_then(|t| t.profiler.clone());
        let mut sessions = Vec::with_capacity(requests.len());
        {
            let _plan = profiler.as_ref().map(|p| p.span("plan"));
            for batch in requests.chunks(self.config.batch_size.max(1)) {
                sessions.extend(self.admit_batch(planner, batch, &ctx)?);
            }
        }
        let cache = CacheStats::from_context(&ctx);
        let specs: Vec<NodeSpec> = (0..self.pool.len())
            .map(|g| self.pool.spec_of_node(g))
            .collect();
        let class_of: Vec<usize> = (0..self.pool.len())
            .map(|g| self.pool.class_of(g))
            .collect();
        let faults = self.config.loss.as_ref().map(|profile| kernel::FaultCtx {
            profile,
            class_of: &class_of,
        });
        let trace = TraceDest::from(self.telemetry.as_ref());
        let recorder = trace.as_ref().map(|t| Recorder::fanout(t.sinks()));
        let busy_time = {
            let _simulate = profiler.as_ref().map(|p| p.span("simulate"));
            kernel::simulate(
                &specs,
                self.net,
                &mut sessions,
                faults.as_ref(),
                recorder.as_ref(),
            )
        };
        let telemetry = trace.and_then(|t| t.report(&[self.pool.len()]));
        Ok(self.report(requests, &sessions, &busy_time, cache, telemetry))
    }

    /// Plans one admission batch and prepares the per-session runtimes.
    pub(crate) fn admit_batch(
        &self,
        planner: &'static dyn Planner,
        batch: &[SessionRequest],
        ctx: &PlanContext,
    ) -> Result<Vec<SessionRuntime>, SimError> {
        let mut typeds = Vec::with_capacity(batch.len());
        let mut plan_requests = Vec::with_capacity(batch.len());
        for request in batch {
            let typed = typed_for(self.pool, request)?;
            let set = typed
                .to_multicast_set()
                .map_err(|error| SimError::Instance {
                    session: request.id,
                    error,
                })?;
            typeds.push(typed);
            plan_requests.push(PlanRequest::new(set, self.net).with_seed(request.id));
        }
        // Planned sequentially, not through the parallel batch facade: the
        // report's CacheStats are part of the byte-identical determinism
        // contract, and racing parallel misses on the shared DP cache would
        // make the hit/miss split depend on thread timing.
        let repair = self.config.loss.as_ref().map(|_| self.config.repair);
        let mut runtimes = Vec::with_capacity(batch.len());
        for ((request, typed), plan_request) in batch.iter().zip(typeds).zip(&plan_requests) {
            let plan = planner.plan_with(plan_request, ctx)?;
            let mut runtime = runtime_for(self.pool, request, &typed, &plan, repair);
            runtime.apply_chunks(request.chunks.or(self.config.chunks));
            runtimes.push(runtime);
        }
        Ok(runtimes)
    }

    /// Assembles the final report.
    fn report(
        &self,
        requests: &[SessionRequest],
        sessions: &[SessionRuntime],
        busy_time: &[u64],
        cache: CacheStats,
        telemetry: Option<TelemetryReport>,
    ) -> TrafficReport {
        let per_session: Vec<SessionRecord> = requests
            .iter()
            .zip(sessions)
            .map(|(request, session)| record_for(request, session))
            .collect();
        let metrics = TrafficMetrics::from_records(&per_session, busy_time);
        let reliability = ReliabilityReport::from_records(&per_session);
        let streaming = StreamingReport::from_records(&per_session, metrics.makespan);
        TrafficReport {
            // Schema 5: optional trailing `telemetry` time-series section
            // (4 added streaming + per-session chunk fields, 3 the
            // reliability section, 2 the sharded gateway/control
            // extension).
            schema: 5,
            planner: self.config.planner.clone(),
            batch_size: self.config.batch_size,
            net_latency: self.net.latency().raw(),
            sessions: metrics.sessions,
            completed: metrics.completed,
            abandoned: metrics.abandoned,
            makespan: metrics.makespan,
            throughput_per_kilotick: metrics.throughput_per_kilotick,
            mean_reception_latency: metrics.mean_reception_latency,
            p50_reception_latency: metrics.p50_reception_latency,
            p95_reception_latency: metrics.p95_reception_latency,
            p99_reception_latency: metrics.p99_reception_latency,
            mean_queue_delay: metrics.mean_queue_delay,
            mean_node_utilization: metrics.mean_node_utilization,
            peak_node_utilization: metrics.peak_node_utilization,
            reliability,
            streaming,
            cache,
            per_session,
            telemetry,
        }
    }
}

/// The session's class signature over its pool: validates the node ids
/// (distinct, in range) and counts members per class.
pub(crate) fn typed_for(
    pool: &NodePool,
    request: &SessionRequest,
) -> Result<TypedMulticast, SimError> {
    let n = pool.len();
    let mut seen = vec![false; n];
    let mut counts = vec![0usize; pool.k()];
    if request.source >= n {
        return Err(SimError::MalformedSession { id: request.id });
    }
    seen[request.source] = true;
    for &member in &request.members {
        if member >= n || seen[member] {
            return Err(SimError::MalformedSession { id: request.id });
        }
        seen[member] = true;
        counts[pool.class_of(member)] += 1;
    }
    TypedMulticast::new(pool.specs().to_vec(), pool.class_of(request.source), counts).map_err(
        |error| SimError::Instance {
            session: request.id,
            error,
        },
    )
}

/// Binds abstract schedule-tree node ids to concrete pool nodes: tree id 0
/// is the source, and each class's tree ids (`locals_by_class`, from
/// [`TypedMulticast::node_ids_by_class`]) are matched to the session's
/// members of that class in ascending pool-id order, so the binding is
/// deterministic.
pub(crate) fn bind_node_map(
    pool: &NodePool,
    source: usize,
    members: &[usize],
    locals_by_class: &[Vec<hnow_model::NodeId>],
) -> Vec<usize> {
    let n = members.len() + 1;
    let mut node_map = vec![usize::MAX; n];
    node_map[0] = source;
    for (class, locals) in locals_by_class.iter().enumerate() {
        let mut members_of_class: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&v| pool.class_of(v) == class)
            .collect();
        members_of_class.sort_unstable();
        debug_assert_eq!(locals.len(), members_of_class.len());
        for (&local, pool_node) in locals.iter().zip(members_of_class) {
            node_map[local.index()] = pool_node;
        }
    }
    node_map
}

/// The delivery-ordered child lists of a schedule tree, by node index.
pub(crate) fn children_lists(tree: &ScheduleTree) -> Vec<Vec<usize>> {
    (0..tree.num_nodes())
        .map(|v| {
            tree.children(hnow_model::NodeId(v))
                .iter()
                .map(|c| c.index())
                .collect()
        })
        .collect()
}

/// Binds a plan's abstract schedule tree to the session's concrete pool
/// nodes and sets up the runtime bookkeeping. `typed` is the signature
/// [`typed_for`] produced for this request at admission; `repair`, when
/// set, annotates the tree with repairer assignments for faulted runs.
pub(crate) fn runtime_for(
    pool: &NodePool,
    request: &SessionRequest,
    typed: &TypedMulticast,
    plan: &Plan,
    repair: Option<RepairPlacement>,
) -> SessionRuntime {
    // Schedule-tree node ids are over the canonical multicast set; map
    // them back to pool nodes class by class. Within a class both sides
    // are ascending (node_ids_by_class and the sorted member list), so
    // the binding is deterministic.
    let node_map = bind_node_map(
        pool,
        request.source,
        &request.members,
        &typed.node_ids_by_class(),
    );
    let repairer = repair.map(|policy| {
        let specs: Vec<NodeSpec> = node_map.iter().map(|&g| pool.spec_of_node(g)).collect();
        Arc::new(policy.assign(&plan.tree, &specs))
    });
    SessionRuntime {
        id: request.id,
        arrival: request.arrival,
        deadline: request.patience.map(|p| request.arrival.saturating_add(p)),
        node_map,
        children: Arc::new(children_lists(&plan.tree)),
        repairer,
        planned_reception: plan.timing.reception_completion(),
        planned_delivery: plan.timing.delivery_completion(),
        started: None,
        abandoned: false,
        pending: request.members.len(),
        completed_at: request.arrival,
        delivered_at: request.arrival,
        nacks: 0,
        repair_sends: 0,
        failed_members: 0,
        repair_delays: Vec::new(),
        chunks: 1,
        chunk_interval: Time::ZERO,
        chunk_deadline: None,
        pipelined: true,
        chunk_pending: Vec::new(),
        chunk_completed_at: Vec::new(),
    }
}

/// Builds the serializable record of one finished session.
pub(crate) fn record_for(request: &SessionRequest, session: &SessionRuntime) -> SessionRecord {
    let reception_latency = session.completed_at.saturating_sub(session.arrival).raw();
    let delivery_latency = session.delivered_at.saturating_sub(session.arrival).raw();
    let queue_delay = session
        .started
        .map(|s| s.saturating_sub(session.arrival).raw())
        .unwrap_or(0);
    let streamed = !session.abandoned && session.chunks > 1;
    let chunk_deadline_misses = match (streamed, session.chunk_deadline) {
        (true, Some(deadline)) => session
            .chunk_completed_at
            .iter()
            .enumerate()
            .filter(|&(c, &done)| {
                let release = session.arrival + session.chunk_interval * c as u64;
                done > release.saturating_add(deadline)
            })
            .count() as u64,
        _ => 0,
    };
    let chunk_jitters = if streamed {
        // Completion gaps can invert when a late repair drags an earlier
        // chunk past its successor; the saturating gap folds that case into
        // a full-interval jitter rather than going negative.
        session
            .chunk_completed_at
            .windows(2)
            .map(|w| {
                w[1].saturating_sub(w[0])
                    .raw()
                    .abs_diff(session.chunk_interval.raw())
            })
            .collect()
    } else {
        Vec::new()
    };
    SessionRecord {
        id: request.id,
        arrival: session.arrival.raw(),
        group_size: request.members.len(),
        planned_reception: session.planned_reception.raw(),
        planned_delivery: session.planned_delivery.raw(),
        abandoned: session.abandoned,
        started: session.started.map(|s| s.raw()),
        queue_delay,
        reception_latency: if session.abandoned {
            0
        } else {
            reception_latency
        },
        delivery_latency: if session.abandoned {
            0
        } else {
            delivery_latency
        },
        failed_members: session.failed_members,
        nacks: session.nacks,
        repair_sends: session.repair_sends,
        repair_delays: session.repair_delays.clone(),
        chunks: session.chunks,
        chunk_deadline_misses,
        chunk_jitters,
    }
}

/// The pre-unification flat event loop, kept verbatim as the executable
/// specification of the kernel's tie-break rule (the same role
/// `build_reference` plays for the DP kernel). The property test in
/// [`tests`] replays random contended traffic through both this loop and
/// [`crate::kernel::simulate`] and demands identical outcomes.
#[cfg(test)]
pub(crate) mod reference {
    use super::SessionRuntime;
    use hnow_model::{NetParams, NodeSpec, Time};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum SessionEvent {
        WantSend { local: usize, child_idx: usize },
        Arrival { local: usize },
        WantRecv { local: usize },
        NodeFree { node: usize },
    }

    type QueueItem = Reverse<(Time, u64, usize, SessionEvent)>;

    /// The shared-resource discrete-event pass over every session. Returns
    /// the accumulated busy time per pool node (utilization numerator).
    pub(crate) fn simulate(
        specs: &[NodeSpec],
        net: NetParams,
        sessions: &mut [SessionRuntime],
    ) -> Vec<u64> {
        let n = specs.len();
        let mut busy_until = vec![Time::ZERO; n];
        let mut busy_time = vec![0u64; n];
        // Per-node FIFO of parked "want" events. Every activity schedules a
        // NodeFree wake at its end, and every wake re-injects exactly one
        // waiter, so the event count stays linear in the activity count even
        // when hundreds of sessions pile onto one hot node.
        let mut waiting: Vec<std::collections::VecDeque<(usize, SessionEvent)>> =
            vec![std::collections::VecDeque::new(); n];
        let mut heap: BinaryHeap<QueueItem> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<QueueItem>,
                    seq: &mut u64,
                    time: Time,
                    session: usize,
                    event: SessionEvent| {
            heap.push(Reverse((time, *seq, session, event)));
            *seq += 1;
        };
        for (s, session) in sessions.iter().enumerate() {
            if !session.children[0].is_empty() {
                push(
                    &mut heap,
                    &mut seq,
                    session.arrival,
                    s,
                    SessionEvent::WantSend {
                        local: 0,
                        child_idx: 0,
                    },
                );
            }
        }
        while let Some(Reverse((t, _, s, event))) = heap.pop() {
            if let SessionEvent::NodeFree { node } = event {
                // Obsolete when a same-instant event already re-claimed the
                // node; the claimant scheduled its own wake.
                if busy_until[node] <= t {
                    if let Some((waiter, parked)) = waiting[node].pop_front() {
                        push(&mut heap, &mut seq, t, waiter, parked);
                    }
                }
                continue;
            }
            let session = &mut sessions[s];
            if session.abandoned {
                continue;
            }
            match event {
                SessionEvent::WantSend { local, child_idx } => {
                    let node = session.node_map[local];
                    if busy_until[node] > t {
                        waiting[node].push_back((s, event));
                        continue;
                    }
                    if session.started.is_none() {
                        // First activity of the session: the churn gate.
                        if session.deadline.is_some_and(|d| t > d) {
                            session.abandoned = true;
                            // The session declined a free node; pass it on
                            // so parked waiters never starve.
                            if let Some((waiter, parked)) = waiting[node].pop_front() {
                                push(&mut heap, &mut seq, t, waiter, parked);
                            }
                            continue;
                        }
                        session.started = Some(t);
                    }
                    let dur = specs[node].send();
                    let end = t + dur;
                    busy_until[node] = end;
                    busy_time[node] += dur.raw();
                    let child = session.children[local][child_idx];
                    push(
                        &mut heap,
                        &mut seq,
                        end + net.latency(),
                        s,
                        SessionEvent::Arrival { local: child },
                    );
                    if child_idx + 1 < session.children[local].len() {
                        push(
                            &mut heap,
                            &mut seq,
                            end,
                            s,
                            SessionEvent::WantSend {
                                local,
                                child_idx: child_idx + 1,
                            },
                        );
                    }
                    push(&mut heap, &mut seq, end, s, SessionEvent::NodeFree { node });
                }
                SessionEvent::Arrival { local } => {
                    // Delivery is the message hitting the node, busy or not;
                    // the receive overhead queues for node time separately.
                    session.delivered_at = session.delivered_at.max(t);
                    push(&mut heap, &mut seq, t, s, SessionEvent::WantRecv { local });
                }
                SessionEvent::WantRecv { local } => {
                    let node = session.node_map[local];
                    if busy_until[node] > t {
                        waiting[node].push_back((s, event));
                        continue;
                    }
                    let dur = specs[node].recv();
                    let end = t + dur;
                    busy_until[node] = end;
                    busy_time[node] += dur.raw();
                    session.pending -= 1;
                    session.completed_at = session.completed_at.max(end);
                    if !session.children[local].is_empty() {
                        push(
                            &mut heap,
                            &mut seq,
                            end,
                            s,
                            SessionEvent::WantSend {
                                local,
                                child_idx: 0,
                            },
                        );
                    }
                    push(&mut heap, &mut seq, end, s, SessionEvent::NodeFree { node });
                }
                SessionEvent::NodeFree { .. } => unreachable!("handled before the session borrow"),
            }
        }
        debug_assert!(sessions
            .iter()
            .all(|session| session.abandoned || session.pending == 0));
        busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use hnow_workload::{
        default_message_size, two_class_table, ChurnProfile, GroupSizeDist, TrafficPattern,
    };

    fn pool() -> NodePool {
        NodePool::new(two_class_table(), default_message_size(), &[8, 4]).unwrap()
    }

    fn spaced_requests(pool: &NodePool, n: usize, gap: u64) -> Vec<SessionRequest> {
        // Arrivals spaced far beyond any completion time: zero contention.
        let pattern = TrafficPattern::poisson(1.0, 4);
        let mut requests = pattern.generate(pool, n, 5).unwrap();
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = Time::new(i as u64 * gap);
            r.patience = None;
        }
        requests
    }

    #[test]
    fn uncontended_sessions_match_their_analytic_times() {
        let pool = pool();
        let requests = spaced_requests(&pool, 12, 1_000_000);
        for planner in ["greedy", "greedy+leaf", "dp-optimal", "chain", "star"] {
            let engine = TrafficEngine::with_config(
                &pool,
                NetParams::new(2),
                &RunConfig::for_planner(planner),
            );
            let report = engine.run(&requests).unwrap();
            assert_eq!(report.completed, 12);
            assert_eq!(report.abandoned, 0);
            for record in &report.per_session {
                assert_eq!(
                    record.reception_latency, record.planned_reception,
                    "{planner}: session {} diverged from analytic R_T",
                    record.id
                );
                assert_eq!(
                    record.delivery_latency, record.planned_delivery,
                    "{planner}: session {} diverged from analytic D_T",
                    record.id
                );
                assert_eq!(record.queue_delay, 0);
            }
        }
    }

    #[test]
    fn contention_delays_but_never_loses_sessions() {
        let pool = pool();
        // Everyone arrives at once: heavy contention on the shared nodes.
        let mut requests = spaced_requests(&pool, 30, 1_000_000);
        for r in &mut requests {
            r.arrival = Time::ZERO;
        }
        let engine = TrafficEngine::with_config(&pool, NetParams::new(2), &RunConfig::default());
        let report = engine.run(&requests).unwrap();
        assert_eq!(report.completed, 30);
        assert_eq!(report.abandoned, 0);
        // At least one session must have waited for a busy node.
        assert!(
            report
                .per_session
                .iter()
                .any(|r| r.reception_latency > r.planned_reception),
            "30 simultaneous sessions on 12 nodes cannot all run contention-free"
        );
        assert!(report.mean_queue_delay >= 0.0);
        assert!(report.peak_node_utilization > 0.0);
        assert!(report.peak_node_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn reports_are_byte_identical_per_seed() {
        let pool = pool();
        let pattern = TrafficPattern {
            arrivals: hnow_workload::ArrivalProfile::Poisson { mean_gap: 30.0 },
            group_size: GroupSizeDist::Uniform { min: 2, max: 6 },
            class_weights: None,
            churn: Some(ChurnProfile {
                impatient_fraction: 0.3,
                mean_patience: 60.0,
            }),
        };
        let requests = pattern.generate(&pool, 100, 42).unwrap();
        let engine = TrafficEngine::with_config(&pool, NetParams::new(2), &RunConfig::default());
        let a = serde_json::to_string(&engine.run(&requests).unwrap()).unwrap();
        let b = serde_json::to_string(&engine.run(&requests).unwrap()).unwrap();
        assert_eq!(a, b, "same requests must serialize byte-identically");
        let other = pattern.generate(&pool, 100, 43).unwrap();
        let c = serde_json::to_string(&engine.run(&other).unwrap()).unwrap();
        assert_ne!(a, c, "a different seed must change the report");
    }

    #[test]
    fn impatient_sessions_abandon_under_contention() {
        let pool = pool();
        let pattern = TrafficPattern::poisson(1.0, 6);
        // A stampede with tiny patience: some sessions must give up.
        let mut requests = pattern.generate(&pool, 40, 9).unwrap();
        for r in &mut requests {
            r.arrival = Time::ZERO;
            r.patience = Some(Time::new(1));
        }
        let engine = TrafficEngine::with_config(&pool, NetParams::new(2), &RunConfig::default());
        let report = engine.run(&requests).unwrap();
        assert!(report.abandoned > 0, "tiny patience under a stampede");
        assert_eq!(report.completed + report.abandoned, 40);
        for record in report.per_session.iter().filter(|r| r.abandoned) {
            assert_eq!(record.started, None);
            assert_eq!(record.reception_latency, 0);
        }
        // With infinite patience nobody abandons.
        for r in &mut requests {
            r.patience = None;
        }
        let report = engine.run(&requests).unwrap();
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn dp_tables_are_shared_across_a_session_stream() {
        let pool = pool();
        let requests = spaced_requests(&pool, 50, 10_000);
        let engine = TrafficEngine::with_config(
            &pool,
            NetParams::new(2),
            &RunConfig::for_planner("dp-optimal"),
        );
        let report = engine.run(&requests).unwrap();
        assert_eq!(report.cache.lookups, 50);
        assert_eq!(
            report.cache.lookups,
            report.cache.hits + report.cache.misses
        );
        // All sessions share one canonical two-class signature; after the
        // widest table exists everything hits.
        assert!(
            report.cache.misses <= 5,
            "expected near-total table sharing, got {} misses",
            report.cache.misses
        );
        assert_eq!(report.cache.evictions, 0);
    }

    #[test]
    fn config_errors_are_reported() {
        let pool = pool();
        let requests = spaced_requests(&pool, 2, 1000);
        let engine = TrafficEngine::with_config(
            &pool,
            NetParams::new(1),
            &RunConfig::for_planner("no-such-planner"),
        );
        assert!(matches!(
            engine.run(&requests),
            Err(SimError::UnknownPlanner { .. })
        ));

        let engine = TrafficEngine::with_config(&pool, NetParams::new(1), &RunConfig::default());
        let mut bad = requests.clone();
        bad[1].members = vec![0, 0];
        bad[1].source = 3;
        assert!(matches!(
            engine.run(&bad),
            Err(SimError::MalformedSession { id }) if id == bad[1].id
        ));
        let mut oob = requests;
        oob[0].members = vec![pool.len()];
        assert!(matches!(
            engine.run(&oob),
            Err(SimError::MalformedSession { .. })
        ));
    }

    #[test]
    fn empty_runs_and_aggregates_are_nan_free() {
        // An engine offered zero sessions must produce all-zero aggregates
        // (never NaN), and the serialized report must not contain NaN — the
        // empty-shard case of the sharded cluster.
        let pool = pool();
        let engine = TrafficEngine::with_config(&pool, NetParams::new(2), &RunConfig::default());
        let report = engine.run(&[]).unwrap();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, 0);
        assert_eq!(report.throughput_per_kilotick, 0.0);
        assert_eq!(report.mean_reception_latency, 0.0);
        assert_eq!(report.mean_queue_delay, 0.0);
        assert_eq!(report.mean_node_utilization, 0.0);
        assert_eq!(report.peak_node_utilization, 0.0);
        assert_eq!(report.cache.hit_rate(), 0.0, "0 lookups must not be NaN");
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("NaN") && !json.contains("null,"));

        // The shared aggregate helper: empty record set, zero busy time.
        let metrics = TrafficMetrics::from_records(std::iter::empty(), &[]);
        assert_eq!(metrics.sessions, 0);
        assert_eq!(metrics.throughput_per_kilotick, 0.0);
        assert_eq!(metrics.mean_reception_latency, 0.0);
        assert_eq!(metrics.mean_queue_delay, 0.0);
        assert_eq!(metrics.mean_node_utilization, 0.0);
        assert_eq!(metrics.peak_node_utilization, 0.0);
        assert!(!serde_json::to_string(&metrics).unwrap().contains("NaN"));

        // All-abandoned runs have completions = 0 but sessions > 0.
        let record = SessionRecord {
            id: 0,
            arrival: 5,
            group_size: 3,
            planned_reception: 10,
            planned_delivery: 8,
            abandoned: true,
            started: None,
            queue_delay: 0,
            reception_latency: 0,
            delivery_latency: 0,
            failed_members: 0,
            nacks: 0,
            repair_sends: 0,
            repair_delays: Vec::new(),
            chunks: 1,
            chunk_deadline_misses: 0,
            chunk_jitters: Vec::new(),
        };
        let metrics = TrafficMetrics::from_records([&record], &[0, 0]);
        assert_eq!(metrics.sessions, 1);
        assert_eq!(metrics.abandoned, 1);
        assert_eq!(metrics.throughput_per_kilotick, 0.0);
        assert_eq!(metrics.mean_queue_delay, 0.0);
    }

    #[test]
    fn cache_hit_rate_is_zero_without_lookups_and_a_ratio_with() {
        let zero = CacheStats {
            lookups: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        assert_eq!(zero.hit_rate(), 0.0);
        let half = CacheStats {
            lookups: 10,
            hits: 5,
            misses: 5,
            evictions: 0,
        };
        assert!((half.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_size_never_changes_results() {
        let pool = pool();
        let pattern = TrafficPattern::poisson(20.0, 5);
        let requests = pattern.generate(&pool, 60, 17).unwrap();
        let run = |batch_size: usize| {
            let config = RunConfig::default().with_batch_size(batch_size);
            TrafficEngine::with_config(&pool, NetParams::new(2), &config)
                .run(&requests)
                .unwrap()
                .per_session
        };
        let one = run(1);
        assert_eq!(one, run(7));
        assert_eq!(one, run(1000));
    }

    /// Plans `requests` into runtimes exactly the way [`TrafficEngine::run`]
    /// does, without simulating. Planning is deterministic, so calling this
    /// twice yields interchangeable session vectors for the two loops.
    fn admit_all(
        pool: &NodePool,
        net: NetParams,
        config: &RunConfig,
        requests: &[SessionRequest],
    ) -> Vec<SessionRuntime> {
        let engine = TrafficEngine::with_config(pool, net, config);
        let planner = find(&config.planner).unwrap();
        let ctx = PlanContext::with_dp_capacity(128);
        let mut sessions = Vec::new();
        for batch in requests.chunks(config.batch_size.max(1)) {
            sessions.extend(engine.admit_batch(planner, batch, &ctx).unwrap());
        }
        sessions
    }

    #[test]
    fn kernel_reproduces_the_reference_loop_on_random_traffic() {
        // The unified kernel against the pre-unification flat loop (kept
        // verbatim in `reference`): random seeded traffic across light and
        // saturating loads, with and without churn, must produce identical
        // per-session outcomes and per-node busy time.
        let pool = pool();
        let specs: Vec<NodeSpec> = (0..pool.len()).map(|g| pool.spec_of_node(g)).collect();
        let net = NetParams::new(2);
        let config = RunConfig::default();
        let scenarios: &[(f64, bool)] = &[(1.0, false), (4.0, true), (0.5, true), (12.0, false)];
        for seed in 0..12u64 {
            for &(mean_gap, churn) in scenarios {
                let pattern = TrafficPattern {
                    arrivals: hnow_workload::ArrivalProfile::Poisson { mean_gap },
                    group_size: GroupSizeDist::Uniform { min: 2, max: 6 },
                    class_weights: None,
                    churn: churn.then_some(ChurnProfile {
                        impatient_fraction: 0.4,
                        mean_patience: 30.0,
                    }),
                };
                let requests = pattern.generate(&pool, 60, seed).unwrap();
                let mut unified = admit_all(&pool, net, &config, &requests);
                let mut old = admit_all(&pool, net, &config, &requests);
                let unified_busy = kernel::simulate(&specs, net, &mut unified, None, None);
                let old_busy = reference::simulate(&specs, net, &mut old);
                let tag = format!("seed {seed}, mean_gap {mean_gap}, churn {churn}");
                assert_eq!(unified_busy, old_busy, "busy time diverged ({tag})");
                for (slot, (a, b)) in unified.iter().zip(&old).enumerate() {
                    assert_eq!(
                        a.started, b.started,
                        "started diverged, slot {slot} ({tag})"
                    );
                    assert_eq!(
                        a.abandoned, b.abandoned,
                        "abandoned diverged, slot {slot} ({tag})"
                    );
                    assert_eq!(
                        a.completed_at, b.completed_at,
                        "completion diverged, slot {slot} ({tag})"
                    );
                    assert_eq!(
                        a.delivered_at, b.delivered_at,
                        "delivery diverged, slot {slot} ({tag})"
                    );
                }
            }
        }
    }

    fn lossy_config(rate: f64, seed: u64, repair: RepairPlacement) -> RunConfig {
        RunConfig::default()
            .with_loss(LossProfile::iid(rate, seed))
            .with_repair(repair)
    }

    fn contended_requests(pool: &NodePool, n: usize, seed: u64) -> Vec<SessionRequest> {
        let pattern = TrafficPattern {
            arrivals: hnow_workload::ArrivalProfile::Poisson { mean_gap: 4.0 },
            group_size: GroupSizeDist::Uniform { min: 3, max: 7 },
            class_weights: None,
            churn: None,
        };
        pattern.generate(pool, n, seed).unwrap()
    }

    #[test]
    fn rate_zero_loss_reproduces_the_lossless_report_byte_for_byte() {
        // The determinism contract's structural anchor: a configured loss
        // profile that can never lose anything must not perturb a single
        // event — the serialized reports are compared as bytes.
        let pool = pool();
        for seed in [3u64, 17, 99] {
            let requests = contended_requests(&pool, 80, seed);
            let lossless =
                TrafficEngine::with_config(&pool, NetParams::new(2), &RunConfig::default())
                    .run(&requests)
                    .unwrap();
            for repair in [RepairPlacement::SourceOnly, RepairPlacement::SubtreeRoot] {
                let zero = TrafficEngine::with_config(
                    &pool,
                    NetParams::new(2),
                    &lossy_config(0.0, seed, repair),
                )
                .run(&requests)
                .unwrap();
                assert_eq!(
                    serde_json::to_string(&lossless).unwrap(),
                    serde_json::to_string(&zero).unwrap(),
                    "rate-0 run diverged (seed {seed}, {})",
                    repair.name()
                );
            }
            assert_eq!(lossless.reliability.delivered_fraction, 1.0);
            assert_eq!(lossless.reliability.residual_loss, 0.0);
            assert_eq!(lossless.reliability.nacks, 0);
        }
    }

    #[test]
    fn lossy_runs_repair_deterministically_and_report_reliability() {
        let pool = pool();
        let requests = contended_requests(&pool, 120, 21);
        let engine = TrafficEngine::with_config(
            &pool,
            NetParams::new(2),
            &lossy_config(0.1, 77, RepairPlacement::SubtreeRoot),
        );
        let report = engine.run(&requests).unwrap();
        assert_eq!(report.schema, 5);
        let rel = &report.reliability;
        assert!(rel.nacks > 0, "10% loss over 120 sessions must NACK");
        assert!(rel.repair_sends > 0);
        assert!(rel.delivered_fraction > 0.9, "8 retries recover nearly all");
        assert!(rel.delivered_fraction <= 1.0);
        assert_eq!(rel.delivered + rel.failed, rel.offered_deliveries);
        // Repaired receivers pay for their repairs: the delay percentiles
        // are populated and ordered.
        assert!(rel.p50_repair_delay > 0);
        assert!(rel.p50_repair_delay <= rel.p95_repair_delay);
        assert!(rel.p95_repair_delay <= rel.p99_repair_delay);
        // Byte-identical on a second run.
        let again = engine.run(&requests).unwrap();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        // A different fault seed draws different losses.
        let other = TrafficEngine::with_config(
            &pool,
            NetParams::new(2),
            &lossy_config(0.1, 78, RepairPlacement::SubtreeRoot),
        )
        .run(&requests)
        .unwrap();
        assert_ne!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&other).unwrap()
        );
    }

    #[test]
    fn exhausted_retries_degrade_gracefully_to_partial_completion() {
        // Heavy loss with zero retries: failures must surface as partial
        // completions (degraded sessions), never hangs or panics.
        let pool = pool();
        let requests = contended_requests(&pool, 60, 5);
        let config = RunConfig::default().with_loss(LossProfile {
            max_retries: 0,
            ..LossProfile::iid(0.4, 13)
        });
        let report = TrafficEngine::with_config(&pool, NetParams::new(2), &config)
            .run(&requests)
            .unwrap();
        let rel = &report.reliability;
        assert!(rel.failed > 0, "40% loss with no retries must fail members");
        assert!(rel.degraded_sessions > 0);
        assert!(rel.residual_loss > 0.0);
        assert_eq!(report.completed + report.abandoned, 60);
        for record in &report.per_session {
            assert!(record.failed_members <= record.group_size);
        }
        // With ample retries the same traffic recovers everything.
        let recovered = TrafficEngine::with_config(
            &pool,
            NetParams::new(2),
            &lossy_config(0.4, 13, RepairPlacement::SubtreeRoot),
        )
        .run(&requests)
        .unwrap();
        assert!(recovered.reliability.residual_loss < rel.residual_loss);
    }

    #[test]
    fn repair_traffic_respects_one_port_occupancy() {
        // Property: the full activity log of a lossy run — planned sends,
        // receives and band-2 repair retransmissions alike — never
        // double-books a node.
        let pool = pool();
        let specs: Vec<NodeSpec> = (0..pool.len()).map(|g| pool.spec_of_node(g)).collect();
        let class_of: Vec<usize> = (0..pool.len()).map(|g| pool.class_of(g)).collect();
        let net = NetParams::new(2);
        for seed in 0..6u64 {
            let requests = contended_requests(&pool, 50, seed);
            let config = lossy_config(0.15, seed, RepairPlacement::FastestInSubtree);
            let mut sessions = admit_all(&pool, net, &config, &requests);
            let profile = config.loss.as_ref().unwrap();
            let faults = kernel::FaultCtx {
                profile,
                class_of: &class_of,
            };
            let (_, log) = kernel::simulate_logged(&specs, net, &mut sessions, Some(&faults));
            let offenders = crate::validate::check_one_port(pool.len(), &log);
            assert!(
                offenders.is_empty(),
                "seed {seed}: overlap on {offenders:?}"
            );
            assert!(
                sessions.iter().any(|s| s.repair_sends > 0),
                "seed {seed}: the check must actually cover repair traffic"
            );
        }
    }

    #[test]
    fn a_one_chunk_profile_reproduces_the_atomic_report_byte_for_byte() {
        // The streaming acceptance anchor: `chunks == 1` takes no streaming
        // branch anywhere in the kernel, so stamping a one-chunk profile on
        // every session must reproduce the atomic run byte for byte —
        // lossless and under 5% injected loss alike.
        let pool = pool();
        let net = NetParams::new(2);
        for seed in [3u64, 21] {
            let requests = contended_requests(&pool, 80, seed);
            for lossy in [false, true] {
                let mut base = RunConfig::default();
                if lossy {
                    base = base
                        .with_loss(LossProfile::iid(0.05, seed))
                        .with_repair(RepairPlacement::SubtreeRoot);
                }
                let atomic = TrafficEngine::with_config(&pool, net, &base)
                    .run(&requests)
                    .unwrap();
                let one_chunk = base.clone().with_chunks(ChunkProfile::new(1, 25));
                let chunked = TrafficEngine::with_config(&pool, net, &one_chunk)
                    .run(&requests)
                    .unwrap();
                assert_eq!(
                    serde_json::to_string(&atomic).unwrap(),
                    serde_json::to_string(&chunked).unwrap(),
                    "seed {seed}, lossy {lossy}: one-chunk run drifted from atomic"
                );
                assert_eq!(chunked.streaming.streaming_sessions, 0);
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Per-chunk pipelining never double-books a port: the full
        /// activity log of a chunked run — every chunk's planned sends and
        /// receives plus band-2 repair retransmissions — passes the
        /// one-port check, across pipelined and sequential trains, tight
        /// and loose release intervals, lossless and lossy draws.
        #[test]
        fn chunk_trains_never_double_book_a_port(
            seed in 0u64..64,
            chunks in 2u32..=8,
            interval in 0u64..=40,
            sequential in proptest::bool::ANY,
            lossy in proptest::bool::ANY,
        ) {
            use proptest::prelude::prop_assert;
            let pool = pool();
            let specs: Vec<NodeSpec> = (0..pool.len()).map(|g| pool.spec_of_node(g)).collect();
            let class_of: Vec<usize> = (0..pool.len()).map(|g| pool.class_of(g)).collect();
            let net = NetParams::new(2);
            let requests = contended_requests(&pool, 25, seed);
            let mut profile = ChunkProfile::new(chunks, interval);
            if sequential {
                profile = profile.sequential();
            }
            let mut config = RunConfig::default().with_chunks(profile);
            if lossy {
                config = config
                    .with_loss(LossProfile::iid(0.15, seed))
                    .with_repair(RepairPlacement::FastestInSubtree);
            }
            let mut sessions = admit_all(&pool, net, &config, &requests);
            let ctx;
            let faults = match config.loss.as_ref() {
                Some(profile) => {
                    ctx = kernel::FaultCtx {
                        profile,
                        class_of: &class_of,
                    };
                    Some(&ctx)
                }
                None => None,
            };
            let (_, log) = kernel::simulate_logged(&specs, net, &mut sessions, faults);
            prop_assert!(!log.is_empty());
            let offenders = crate::validate::check_one_port(pool.len(), &log);
            prop_assert!(offenders.is_empty(), "overlap on {:?}", offenders);
        }
    }

    #[test]
    fn an_abandoning_session_passes_the_freed_node_on() {
        // Three sessions race for source node 0 at t = 0. The FIFO admits
        // session 0; sessions 1 and 2 park. The node's release wakes session
        // 1, whose zero patience has expired — it abandons while holding the
        // only wake for an idle node, so unless the abandon path re-arms the
        // wake, session 2 starves forever.
        let pool = pool();
        let mut requests = spaced_requests(&pool, 3, 0);
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = Time::ZERO;
            r.source = 0;
            r.members = vec![i + 1];
            r.patience = None;
        }
        requests[1].patience = Some(Time::ZERO);
        let engine = TrafficEngine::with_config(&pool, NetParams::new(2), &RunConfig::default());
        let report = engine.run(&requests).unwrap();
        assert!(
            report.per_session[1].abandoned,
            "session 1's deadline passes while node 0 serves session 0"
        );
        assert_eq!(
            report.completed, 2,
            "the node declined by the abandoning session must reach session 2"
        );
        assert!(!report.per_session[0].abandoned);
        assert!(!report.per_session[2].abandoned);
    }

    #[test]
    fn tracing_is_observation_only_and_thread_count_free() {
        // The telemetry determinism gate: attaching a trace sink and a
        // phase profiler never changes a single report byte — lossless and
        // under 5% injected loss, at 1 and at 8 rayon threads — and the
        // trace stream itself is seed-stable: repeated runs produce
        // identical event sequences, and every thread count produces the
        // same event count.
        use hnow_telemetry::PhaseProfiler;
        let pool = pool();
        let net = NetParams::new(2);
        let requests = contended_requests(&pool, 60, 9);
        for lossy in [false, true] {
            let mut base = RunConfig::default();
            if lossy {
                base = base
                    .with_loss(LossProfile::iid(0.05, 9))
                    .with_repair(RepairPlacement::SubtreeRoot);
            }
            let mut counts = Vec::new();
            for threads in [1usize, 8] {
                let plain = base.clone().with_threads(threads);
                let untraced = TrafficEngine::with_config(&pool, net, &plain)
                    .run(&requests)
                    .unwrap();
                let sink = Arc::new(MemorySink::new());
                let profiler = Arc::new(PhaseProfiler::new());
                let traced_config = plain.telemetry(
                    TelemetryConfig::new()
                        .with_sink(sink.clone())
                        .with_profiler(profiler.clone()),
                );
                let traced = TrafficEngine::with_config(&pool, net, &traced_config)
                    .run(&requests)
                    .unwrap();
                assert_eq!(
                    serde_json::to_string(&untraced).unwrap(),
                    serde_json::to_string(&traced).unwrap(),
                    "lossy {lossy}, threads {threads}: tracing changed the report"
                );
                let first = sink.take();
                assert!(!first.is_empty());
                TrafficEngine::with_config(&pool, net, &traced_config)
                    .run(&requests)
                    .unwrap();
                assert_eq!(
                    first,
                    sink.take(),
                    "lossy {lossy}, threads {threads}: trace not seed-stable"
                );
                for phase in ["plan", "simulate"] {
                    assert!(
                        profiler.spans().iter().any(|s| s.phase == phase),
                        "missing {phase} span"
                    );
                }
                counts.push(first.len());
            }
            assert_eq!(
                counts[0], counts[1],
                "lossy {lossy}: event count must not depend on the thread count"
            );
        }
    }

    #[test]
    fn the_timeseries_section_rides_after_an_unchanged_report() {
        // With a time-series window set, the report gains its optional
        // trailing `telemetry` section — and nothing else: stripping the
        // section reproduces the untraced serialization, and the section
        // itself is byte-identical across thread counts.
        let pool = pool();
        let net = NetParams::new(2);
        let requests = contended_requests(&pool, 60, 5);
        let base = RunConfig::default()
            .with_loss(LossProfile::iid(0.05, 5))
            .with_repair(RepairPlacement::SubtreeRoot);
        let untraced = TrafficEngine::with_config(&pool, net, &base)
            .run(&requests)
            .unwrap();
        assert!(untraced.telemetry.is_none());
        let run = |threads: usize| {
            let config = base
                .clone()
                .with_threads(threads)
                .telemetry(TelemetryConfig::new().with_timeseries(64));
            TrafficEngine::with_config(&pool, net, &config)
                .run(&requests)
                .unwrap()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(
            serde_json::to_string(&one).unwrap(),
            serde_json::to_string(&eight).unwrap(),
            "the telemetry section must not depend on the thread count"
        );
        let telemetry = one.telemetry.as_ref().unwrap();
        assert_eq!(telemetry.window, 64);
        assert!(telemetry.events > 0);
        assert!(telemetry.buckets > 0);
        assert!(telemetry.nacks.iter().sum::<u64>() > 0, "5% loss must NACK");
        let mut stripped = one;
        stripped.telemetry = None;
        assert_eq!(
            serde_json::to_string(&untraced).unwrap(),
            serde_json::to_string(&stripped).unwrap(),
            "outside the telemetry section the report must be unchanged"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// The kernel invariant checker over the engine's trace stream, on
        /// the same scenario grid as `chunk_trains_never_double_book_a_port`:
        /// no port double-booking, FIFO park/wake per node, correct band
        /// labels and session-open causality — across pipelined and
        /// sequential chunk trains, tight and loose release intervals,
        /// lossless and lossy draws.
        #[test]
        fn traced_runs_satisfy_the_kernel_invariants(
            seed in 0u64..64,
            chunks in 2u32..=8,
            interval in 0u64..=40,
            sequential in proptest::bool::ANY,
            lossy in proptest::bool::ANY,
        ) {
            use proptest::prelude::prop_assert;
            let pool = pool();
            let net = NetParams::new(2);
            let requests = contended_requests(&pool, 25, seed);
            let mut profile = ChunkProfile::new(chunks, interval);
            if sequential {
                profile = profile.sequential();
            }
            let mut config = RunConfig::default().with_chunks(profile);
            if lossy {
                config = config
                    .with_loss(LossProfile::iid(0.15, seed))
                    .with_repair(RepairPlacement::FastestInSubtree);
            }
            let sink = Arc::new(MemorySink::new());
            config = config.telemetry(TelemetryConfig::new().with_sink(sink.clone()));
            TrafficEngine::with_config(&pool, net, &config)
                .run(&requests)
                .unwrap();
            let events = sink.take();
            prop_assert!(!events.is_empty());
            if let Err(violation) = hnow_telemetry::check_invariants(&events) {
                prop_assert!(false, "{}", violation);
            }
        }
    }
}
