//! The unified run configuration.
//!
//! Before this module, every execution surface grew its own config type:
//! the flat engine took a [`TrafficConfig`], the sharded service wrapped
//! that in a [`ShardedClusterConfig`], the control plane bolted a
//! [`ControlConfig`] onto the side, and
//! loss, repair and chunk profiles threaded through whichever of those
//! happened to reach the engine. [`RunConfig`] is the one builder-style
//! surface over all of them: pick a planner, dial loss/repair, stamp a
//! default chunk profile, opt into sharding or the control plane, and pin
//! a thread count — then hand the same value to
//! [`TrafficEngine::with_config`](crate::sessions::TrafficEngine::with_config)
//! or
//! [`ShardedCluster::with_config`](crate::cluster::ShardedCluster::with_config).
//!
//! # Migration
//!
//! The pre-unification constructors (`TrafficEngine::new`,
//! `ShardedCluster::new`) and the per-surface config builders
//! (`TrafficConfig::for_planner`, `ShardedClusterConfig::with_shards`,
//! `ShardedClusterConfig::for_planner`) shipped as deprecated shims for
//! one release and are now gone. Ports are mechanical:
//!
//! | before | after |
//! |---|---|
//! | `TrafficEngine::new(p, n, TrafficConfig::default())` | `TrafficEngine::with_config(p, n, &RunConfig::default())` |
//! | `TrafficEngine::new(p, n, TrafficConfig::for_planner("fnf"))` | `TrafficEngine::with_config(p, n, &RunConfig::for_planner("fnf"))` |
//! | `ShardedCluster::new(p, n, ShardedClusterConfig::with_shards(4))` | `ShardedCluster::with_config(p, n, &RunConfig::default().sharded(4))` |
//! | `config.traffic.loss = Some(profile)` | `RunConfig::default().with_loss(profile)` |
//! | `config.control = Some(control)` | `.with_control(control)` |
//!
//! The old structs themselves ([`TrafficConfig`], [`ShardedClusterConfig`])
//! remain as the engines' internal representation; [`RunConfig::traffic`]
//! and [`RunConfig::cluster`] are the documented projections.

use crate::cluster::{ControlConfig, ShardedClusterConfig};
use crate::error::SimError;
use crate::faults::LossProfile;
use crate::sessions::TrafficConfig;
use hnow_core::RepairPlacement;
use hnow_model::ChunkProfile;
use hnow_telemetry::TelemetryConfig;

/// Runs `f` on a freshly built rayon pool of `threads` workers, or inline
/// on the inherited pool when `threads` is `None`. Shared by both engines'
/// `run` entry points so a pinned thread count means the same thing on
/// every surface.
pub(crate) fn install_pool<T: Send>(
    threads: Option<usize>,
    f: impl FnOnce() -> T + Send,
) -> Result<T, SimError> {
    match threads {
        None => Ok(f()),
        Some(n) => Ok(rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .map_err(|e| SimError::ThreadPool {
                reason: e.to_string(),
            })?
            .install(f)),
    }
}

/// One builder-style configuration for every execution surface of the
/// crate: the flat [`TrafficEngine`](crate::sessions::TrafficEngine)
/// ignores the sharding and control fields, the
/// [`ShardedCluster`](crate::cluster::ShardedCluster) consumes all of
/// them. See the [module docs](self) for the migration table.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Registry name of the planner serving every session (and, sharded,
    /// every gateway tree).
    pub planner: String,
    /// Sessions admitted (planned) per batch.
    pub batch_size: usize,
    /// LRU capacity of the shared DP-table cache; `None` = unbounded.
    pub dp_cache_capacity: Option<usize>,
    /// Seeded message-loss injection; `None` runs the lossless model. A
    /// rate-0 profile reproduces the `None` report byte for byte.
    pub loss: Option<LossProfile>,
    /// Repairer placement annotated onto admitted plans (consulted only
    /// when [`RunConfig::loss`] is active).
    pub repair: RepairPlacement,
    /// Run-wide default chunk profile for streaming sessions. A request
    /// carrying its own [`SessionRequest::chunks`](hnow_workload::SessionRequest::chunks)
    /// wins; `None` leaves profile-less requests atomic.
    pub chunks: Option<ChunkProfile>,
    /// Shard count for [`ShardedCluster::with_config`](crate::cluster::ShardedCluster::with_config);
    /// `0` (the default) means "flat" and is clamped to one shard if a
    /// sharded surface consumes the config anyway. The flat engine ignores
    /// this field.
    pub shards: usize,
    /// Whether per-shard plan caches reuse tree shapes across
    /// same-signature sessions (sharded surface only).
    pub plan_cache: bool,
    /// LRU capacity of each plan cache (`None` = unbounded).
    pub plan_cache_capacity: Option<usize>,
    /// Online control plane; `None` runs the batch pipeline (sharded
    /// surface only).
    pub control: Option<ControlConfig>,
    /// Rayon worker threads the run installs; `None` inherits the global
    /// pool. Any value must produce byte-identical reports — the
    /// determinism contract is thread-count-independent and CI pins a
    /// 1-vs-8 comparison.
    pub threads: Option<usize>,
    /// Telemetry attachments (trace sink, time-series window, phase
    /// profiler); `None` — the default — runs fully untraced. Telemetry is
    /// observation-only: attaching any combination never changes a report
    /// outside its optional `telemetry` section.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for RunConfig {
    /// Refined greedy, batches of 64, at most 128 cached DP tables, no
    /// loss, source-only repair, atomic sessions, flat, plan caching ready
    /// at capacity 256, no control plane, inherited thread pool.
    fn default() -> Self {
        RunConfig {
            planner: "greedy+leaf".to_string(),
            batch_size: 64,
            dp_cache_capacity: Some(128),
            loss: None,
            repair: RepairPlacement::SourceOnly,
            chunks: None,
            shards: 0,
            plan_cache: true,
            plan_cache_capacity: Some(256),
            control: None,
            threads: None,
            telemetry: None,
        }
    }
}

impl RunConfig {
    /// The default configuration (same as [`Default`]).
    pub fn new() -> Self {
        RunConfig::default()
    }

    /// Default configuration with a named planner.
    pub fn for_planner(planner: &str) -> Self {
        RunConfig {
            planner: planner.to_string(),
            ..RunConfig::default()
        }
    }

    /// Targets the sharded surface with `shards` shards.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Injects seeded message loss.
    pub fn with_loss(mut self, loss: LossProfile) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Sets the repairer-placement policy.
    pub fn with_repair(mut self, repair: RepairPlacement) -> Self {
        self.repair = repair;
        self
    }

    /// Stamps a run-wide default chunk profile (requests carrying their
    /// own profile still win).
    pub fn with_chunks(mut self, chunks: ChunkProfile) -> Self {
        self.chunks = Some(chunks);
        self
    }

    /// Turns on the online control plane (sharded surface only).
    pub fn with_control(mut self, control: ControlConfig) -> Self {
        self.control = Some(control);
        self
    }

    /// Pins the rayon thread count for the run.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the admission batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the plan-cache switch and capacity (sharded surface only).
    pub fn with_plan_cache(mut self, on: bool, capacity: Option<usize>) -> Self {
        self.plan_cache = on;
        self.plan_cache_capacity = capacity;
        self
    }

    /// Attaches telemetry to the run: a kernel trace sink, a time-series
    /// window, a phase profiler, or any combination. Telemetry is strictly
    /// observation-only — reports stay byte-identical outside the optional
    /// `telemetry` section they gain when a time-series window is set.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use hnow_sim::RunConfig;
    /// use hnow_telemetry::{MemorySink, TelemetryConfig};
    ///
    /// let sink = Arc::new(MemorySink::new());
    /// let config = RunConfig::default().telemetry(
    ///     TelemetryConfig::new()
    ///         .with_sink(sink.clone())
    ///         .with_timeseries(100),
    /// );
    /// assert!(config.telemetry.as_ref().unwrap().is_active());
    /// ```
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Projection onto the flat engine's internal [`TrafficConfig`].
    pub fn traffic(&self) -> TrafficConfig {
        TrafficConfig {
            planner: self.planner.clone(),
            batch_size: self.batch_size,
            dp_cache_capacity: self.dp_cache_capacity,
            loss: self.loss.clone(),
            repair: self.repair,
            chunks: self.chunks,
        }
    }

    /// Projection onto the sharded service's internal
    /// [`ShardedClusterConfig`]. A flat (`shards == 0`) config projects to
    /// one shard.
    pub fn cluster(&self) -> ShardedClusterConfig {
        ShardedClusterConfig {
            shards: self.shards.max(1),
            traffic: self.traffic(),
            plan_cache: self.plan_cache,
            plan_cache_capacity: self.plan_cache_capacity,
            control: self.control.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_match_the_per_surface_defaults() {
        let run = RunConfig::default();
        assert_eq!(run.traffic(), TrafficConfig::default());
        let cluster = run.cluster();
        assert_eq!(cluster.shards, 1);
        assert_eq!(cluster.traffic, TrafficConfig::default());
        assert!(cluster.plan_cache);
        assert_eq!(cluster.plan_cache_capacity, Some(256));
        assert_eq!(cluster.control, None);
    }

    #[test]
    fn builders_compose() {
        let run = RunConfig::for_planner("fnf")
            .sharded(4)
            .with_chunks(ChunkProfile::new(8, 25))
            .with_threads(2)
            .with_batch_size(16);
        assert_eq!(run.planner, "fnf");
        assert_eq!(run.cluster().shards, 4);
        assert_eq!(run.traffic().chunks, Some(ChunkProfile::new(8, 25)));
        assert_eq!(run.threads, Some(2));
        assert_eq!(run.traffic().batch_size, 16);
    }

    #[test]
    fn flat_configs_project_to_one_shard() {
        assert_eq!(RunConfig::default().cluster().shards, 1);
        assert_eq!(RunConfig::default().sharded(0).cluster().shards, 1);
        assert_eq!(RunConfig::default().sharded(3).cluster().shards, 3);
    }
}
