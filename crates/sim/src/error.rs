//! Simulator error types.

use hnow_core::CoreError;
use hnow_model::{NodeId, Time};
use std::error::Error;
use std::fmt;

/// Errors raised while executing a schedule on the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The schedule tree was malformed (incomplete, wrong size, …).
    Schedule(CoreError),
    /// The per-node overhead vector does not match the schedule size.
    SpecLengthMismatch {
        /// Number of overhead entries supplied.
        got: usize,
        /// Number of nodes in the schedule.
        expected: usize,
    },
    /// A node was asked to start a communication overhead while still busy
    /// with another one — the receive-send model forbids this, so hitting it
    /// means the schedule or the engine is inconsistent.
    OccupancyViolation {
        /// The node that would have been double-booked.
        node: NodeId,
        /// The time at which the conflicting activity was to start.
        at: Time,
        /// The time until which the node is already busy.
        busy_until: Time,
    },
    /// A traffic configuration named a planner missing from the registry.
    UnknownPlanner {
        /// The name that failed to resolve.
        name: String,
    },
    /// A traffic session referenced a node outside the pool, or listed the
    /// same node twice (source included).
    MalformedSession {
        /// Id of the offending session.
        id: u64,
    },
    /// A traffic session could not be turned into a valid multicast
    /// instance (e.g. the pool's class table violates the correlation
    /// assumption).
    Instance {
        /// Id of the offending session.
        session: u64,
        /// The model's rejection.
        error: hnow_model::ModelError,
    },
    /// A sharded cluster could not partition its pool (zero shards, or more
    /// shards than nodes).
    Sharding(hnow_workload::WorkloadError),
    /// A control configuration named a gateway policy missing from the
    /// registry.
    UnknownPolicy {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`RunConfig::threads`](crate::config::RunConfig::threads) pin
    /// could not build its rayon pool.
    ThreadPool {
        /// The pool builder's rejection.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Schedule(e) => write!(f, "invalid schedule: {e}"),
            SimError::SpecLengthMismatch { got, expected } => write!(
                f,
                "overhead vector has {got} entries but the schedule has {expected} nodes"
            ),
            SimError::OccupancyViolation {
                node,
                at,
                busy_until,
            } => write!(
                f,
                "node {node} asked to start an overhead at {at} while busy until {busy_until}"
            ),
            SimError::UnknownPlanner { name } => {
                write!(f, "no planner named {name:?} in the registry")
            }
            SimError::MalformedSession { id } => write!(
                f,
                "session {id} references nodes outside the pool or reuses a node"
            ),
            SimError::Instance { session, error } => {
                write!(f, "session {session} is not a valid instance: {error}")
            }
            SimError::Sharding(e) => write!(f, "invalid shard partition: {e}"),
            SimError::UnknownPolicy { name } => {
                write!(f, "no gateway policy named {name:?} in the registry")
            }
            SimError::ThreadPool { reason } => {
                write!(f, "could not build the pinned thread pool: {reason}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Schedule(e) => Some(e),
            SimError::Instance { error, .. } => Some(error),
            SimError::Sharding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::OccupancyViolation {
            node: NodeId(2),
            at: Time::new(5),
            busy_until: Time::new(7),
        };
        assert!(e.to_string().contains("busy until 7"));
        let wrapped: SimError = CoreError::IncompleteSchedule { missing: 1 }.into();
        assert!(wrapped.to_string().contains("invalid schedule"));
        assert!(Error::source(&wrapped).is_some());
        let mism = SimError::SpecLengthMismatch {
            got: 2,
            expected: 3,
        };
        assert!(mism.to_string().contains("2 entries"));
    }
}
