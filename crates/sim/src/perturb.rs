//! Run-time overhead perturbation.
//!
//! The receive-send model's parameters are measured averages; on a real
//! cluster the per-message overheads fluctuate with protocol behaviour,
//! cache state and operating-system noise. Experiment E9 executes planned
//! schedules with *perturbed* actual overheads to measure how robust the
//! different scheduling strategies are to this modelling error. This is the
//! synthetic stand-in for the testbed validation of Banikazemi et al.
//! (documented in DESIGN.md §2).

use hnow_model::{MulticastSet, NodeId, NodeSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a multiplicative overhead perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbConfig {
    /// Maximum relative deviation, e.g. `0.25` means every overhead is
    /// independently scaled by a factor drawn uniformly from
    /// `[1 − 0.25, 1 + 0.25]`.
    pub relative_jitter: f64,
    /// RNG seed, so perturbed runs are reproducible.
    pub seed: u64,
}

impl PerturbConfig {
    /// Creates a configuration with the given jitter and seed.
    pub fn new(relative_jitter: f64, seed: u64) -> Self {
        PerturbConfig {
            relative_jitter: relative_jitter.max(0.0),
            seed,
        }
    }

    /// Draws perturbed per-node overheads for every participant of `set`
    /// (indexed by node id, source first). Sending overheads stay at least 1
    /// so the perturbed values remain valid model parameters.
    pub fn perturb(&self, set: &MulticastSet) -> Vec<NodeSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..set.num_nodes())
            .map(|i| {
                let spec = set.spec(NodeId(i));
                let send = self.scale(spec.send().raw(), &mut rng).max(1);
                let recv = self.scale(spec.recv().raw(), &mut rng);
                NodeSpec::new(send, recv)
            })
            .collect()
    }

    fn scale(&self, value: u64, rng: &mut StdRng) -> u64 {
        if value == 0 || self.relative_jitter == 0.0 {
            return value;
        }
        let factor = 1.0 + rng.gen_range(-self.relative_jitter..=self.relative_jitter);
        (value as f64 * factor).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_model::Time;

    fn sample_set() -> MulticastSet {
        MulticastSet::new(
            NodeSpec::new(10, 15),
            vec![
                NodeSpec::new(8, 9),
                NodeSpec::new(10, 15),
                NodeSpec::new(20, 33),
            ],
        )
        .unwrap()
    }

    #[test]
    fn zero_jitter_is_identity() {
        let set = sample_set();
        let specs = PerturbConfig::new(0.0, 7).perturb(&set);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(*spec, set.spec(NodeId(i)));
        }
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let set = sample_set();
        let a = PerturbConfig::new(0.3, 42).perturb(&set);
        let b = PerturbConfig::new(0.3, 42).perturb(&set);
        assert_eq!(a, b);
        let c = PerturbConfig::new(0.3, 43).perturb(&set);
        assert_ne!(a, c);
    }

    #[test]
    fn perturbed_values_stay_within_the_jitter_band() {
        let set = sample_set();
        let jitter = 0.25;
        for seed in 0..50u64 {
            let specs = PerturbConfig::new(jitter, seed).perturb(&set);
            for (i, spec) in specs.iter().enumerate() {
                let nominal = set.spec(NodeId(i));
                let lo = (nominal.send().as_f64() * (1.0 - jitter)).floor();
                let hi = (nominal.send().as_f64() * (1.0 + jitter)).ceil();
                assert!(spec.send().as_f64() >= lo && spec.send().as_f64() <= hi);
                let lo = (nominal.recv().as_f64() * (1.0 - jitter)).floor();
                let hi = (nominal.recv().as_f64() * (1.0 + jitter)).ceil();
                assert!(spec.recv().as_f64() >= lo && spec.recv().as_f64() <= hi);
            }
        }
    }

    #[test]
    fn send_overheads_never_collapse_to_zero() {
        let set = MulticastSet::new(NodeSpec::new(1, 0), vec![NodeSpec::new(1, 1)]).unwrap();
        for seed in 0..20u64 {
            let specs = PerturbConfig::new(0.9, seed).perturb(&set);
            for spec in specs {
                assert!(spec.send() >= Time::new(1));
            }
        }
    }

    #[test]
    fn negative_jitter_is_clamped() {
        let cfg = PerturbConfig::new(-0.5, 1);
        assert_eq!(cfg.relative_jitter, 0.0);
    }
}
