//! Run-time overhead perturbation.
//!
//! The receive-send model's parameters are measured averages; on a real
//! cluster the per-message overheads fluctuate with protocol behaviour,
//! cache state and operating-system noise. Experiment E9 executes planned
//! schedules with *perturbed* actual overheads to measure how robust the
//! different scheduling strategies are to this modelling error. This is the
//! synthetic stand-in for the testbed validation of Banikazemi et al.
//! (documented in DESIGN.md §2).
//!
//! Perturbed replays run through the crate's unified occupancy kernel
//! ([`kernel_replay`]) — the same event loop behind the traffic engine and
//! the sharded cluster — so a schedule replayed here obeys exactly the
//! tie-break and occupancy semantics every other surface of the crate
//! reports, and a zero-jitter replay reproduces the analytic
//! [`evaluate`](hnow_core::schedule::evaluate) times (pinned by a parity
//! test below).

use crate::kernel;
use crate::sessions::{children_lists, SessionRuntime};
use hnow_core::ScheduleTree;
use hnow_model::{MulticastSet, NetParams, NodeId, NodeSpec, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a multiplicative overhead perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbConfig {
    /// Maximum relative deviation, e.g. `0.25` means every overhead is
    /// independently scaled by a factor drawn uniformly from
    /// `[1 − 0.25, 1 + 0.25]`.
    pub relative_jitter: f64,
    /// RNG seed, so perturbed runs are reproducible.
    pub seed: u64,
}

impl PerturbConfig {
    /// Creates a configuration with the given jitter and seed.
    pub fn new(relative_jitter: f64, seed: u64) -> Self {
        PerturbConfig {
            relative_jitter: relative_jitter.max(0.0),
            seed,
        }
    }

    /// Draws perturbed per-node overheads for every participant of `set`
    /// (indexed by node id, source first). Sending overheads stay at least 1
    /// so the perturbed values remain valid model parameters.
    pub fn perturb(&self, set: &MulticastSet) -> Vec<NodeSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..set.num_nodes())
            .map(|i| {
                let spec = set.spec(NodeId(i));
                let send = self.scale(spec.send().raw(), &mut rng).max(1);
                let recv = self.scale(spec.recv().raw(), &mut rng);
                NodeSpec::new(send, recv)
            })
            .collect()
    }

    fn scale(&self, value: u64, rng: &mut StdRng) -> u64 {
        if value == 0 || self.relative_jitter == 0.0 {
            return value;
        }
        let factor = 1.0 + rng.gen_range(-self.relative_jitter..=self.relative_jitter);
        (value as f64 * factor).round().max(0.0) as u64
    }

    /// Draws perturbed overheads for `set` and replays `tree` with them
    /// through the unified occupancy kernel: `(delivery completion,
    /// reception completion)` of the schedule under this perturbation.
    pub fn replay(&self, tree: &ScheduleTree, set: &MulticastSet, net: NetParams) -> (Time, Time) {
        kernel_replay(tree, &self.perturb(set), net)
    }
}

/// Replays one schedule on an otherwise idle cluster through the unified
/// occupancy kernel and returns its `(delivery completion, reception
/// completion)`. `specs` is indexed by tree node id (source first), the
/// way [`PerturbConfig::perturb`] emits it.
///
/// A single session never contends with itself beyond the one-port
/// constraint the schedule was planned around, so this agrees with the
/// analytic evaluation on nominal specs — but it shares every tie-break
/// rule with the traffic engine, which the pre-unification replay
/// (`execute_with_specs`) only mirrors by construction.
pub fn kernel_replay(tree: &ScheduleTree, specs: &[NodeSpec], net: NetParams) -> (Time, Time) {
    let mut session = SessionRuntime {
        id: 0,
        arrival: Time::ZERO,
        deadline: None,
        node_map: (0..tree.num_nodes()).collect(),
        children: Arc::new(children_lists(tree)),
        repairer: None,
        planned_reception: Time::ZERO,
        planned_delivery: Time::ZERO,
        started: None,
        abandoned: false,
        pending: tree.num_nodes() - 1,
        completed_at: Time::ZERO,
        delivered_at: Time::ZERO,
        nacks: 0,
        repair_sends: 0,
        failed_members: 0,
        repair_delays: Vec::new(),
        chunks: 1,
        chunk_interval: Time::ZERO,
        chunk_deadline: None,
        pipelined: true,
        chunk_pending: Vec::new(),
        chunk_completed_at: Vec::new(),
    };
    kernel::simulate(specs, net, std::slice::from_mut(&mut session), None, None);
    (session.delivered_at, session.completed_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnow_model::Time;

    fn sample_set() -> MulticastSet {
        MulticastSet::new(
            NodeSpec::new(10, 15),
            vec![
                NodeSpec::new(8, 9),
                NodeSpec::new(10, 15),
                NodeSpec::new(20, 33),
            ],
        )
        .unwrap()
    }

    #[test]
    fn zero_jitter_is_identity() {
        let set = sample_set();
        let specs = PerturbConfig::new(0.0, 7).perturb(&set);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(*spec, set.spec(NodeId(i)));
        }
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let set = sample_set();
        let a = PerturbConfig::new(0.3, 42).perturb(&set);
        let b = PerturbConfig::new(0.3, 42).perturb(&set);
        assert_eq!(a, b);
        let c = PerturbConfig::new(0.3, 43).perturb(&set);
        assert_ne!(a, c);
    }

    #[test]
    fn perturbed_values_stay_within_the_jitter_band() {
        let set = sample_set();
        let jitter = 0.25;
        for seed in 0..50u64 {
            let specs = PerturbConfig::new(jitter, seed).perturb(&set);
            for (i, spec) in specs.iter().enumerate() {
                let nominal = set.spec(NodeId(i));
                let lo = (nominal.send().as_f64() * (1.0 - jitter)).floor();
                let hi = (nominal.send().as_f64() * (1.0 + jitter)).ceil();
                assert!(spec.send().as_f64() >= lo && spec.send().as_f64() <= hi);
                let lo = (nominal.recv().as_f64() * (1.0 - jitter)).floor();
                let hi = (nominal.recv().as_f64() * (1.0 + jitter)).ceil();
                assert!(spec.recv().as_f64() >= lo && spec.recv().as_f64() <= hi);
            }
        }
    }

    #[test]
    fn send_overheads_never_collapse_to_zero() {
        let set = MulticastSet::new(NodeSpec::new(1, 0), vec![NodeSpec::new(1, 1)]).unwrap();
        for seed in 0..20u64 {
            let specs = PerturbConfig::new(0.9, seed).perturb(&set);
            for spec in specs {
                assert!(spec.send() >= Time::new(1));
            }
        }
    }

    #[test]
    fn negative_jitter_is_clamped() {
        let cfg = PerturbConfig::new(-0.5, 1);
        assert_eq!(cfg.relative_jitter, 0.0);
    }

    #[test]
    fn zero_jitter_replay_matches_the_analytic_times() {
        // The kernel-parity anchor: an unperturbed kernel replay must land
        // exactly on the closed-form schedule evaluation, for several
        // latencies and planners.
        let set = sample_set();
        for latency in [0u64, 1, 3] {
            let net = hnow_model::NetParams::new(latency);
            let tree = hnow_core::greedy_schedule(&set, net);
            let timing = hnow_core::schedule::evaluate(&tree, &set, net).unwrap();
            let (delivery, reception) = PerturbConfig::new(0.0, 7).replay(&tree, &set, net);
            assert_eq!(reception, timing.reception_completion(), "L = {latency}");
            assert_eq!(delivery, timing.delivery_completion(), "L = {latency}");
        }
    }

    #[test]
    fn jittered_replay_matches_the_single_schedule_executor() {
        // Under perturbation there is no closed form, but the dedicated
        // single-schedule executor plays the same one-port semantics — the
        // kernel replay must agree with its trace on every seed.
        let set = sample_set();
        let net = hnow_model::NetParams::new(2);
        let tree = hnow_core::greedy_schedule(&set, net);
        for seed in 0..20u64 {
            let specs = PerturbConfig::new(0.4, seed).perturb(&set);
            let (_, reception) = kernel_replay(&tree, &specs, net);
            let trace = crate::engine::execute_with_specs(&tree, &specs, net).unwrap();
            assert_eq!(reception, trace.completion, "seed {seed}");
        }
    }
}
