//! The one occupancy kernel: the single discrete-event loop behind both
//! the flat traffic engine ([`crate::sessions::TrafficEngine`]) and the
//! sharded cluster's component simulation ([`crate::cluster`]).
//!
//! Before unification the two engines ran hand-rolled copies of this loop
//! whose same-instant tie-breaks had drifted apart (eager vs lazy arrival
//! injection, fused vs re-queued receive claims, per-claim vs armed
//! wake-ups), so the same request vector could produce different reports
//! depending on which engine served it. This module is now the only event
//! loop in the crate; both engines feed it [`SessionRuntime`]s and get the
//! identical occupancy semantics.
//!
//! # The tie-break rule
//!
//! Events are executed in ascending `(time, band, seq)` order:
//!
//! 1. **Band 0 — session openings.** A session's first claim (its source's
//!    first send) carries band 0 and its injection rank, so at any instant
//!    all newly arriving sessions open *before* every already-scheduled
//!    event of that instant, in request order. Arrivals are still injected
//!    lazily — a session enters the heap only once the clock reaches it —
//!    but the band makes lazy injection observationally identical to
//!    pre-loading every arrival up front.
//! 2. **Band 1 — scheduled events.** Everything else (follow-up sends,
//!    message arrivals, receive claims, node wake-ups) executes in
//!    scheduling order: whichever event was pushed first wins a
//!    same-instant tie.
//! 3. **Deferred claims yield.** A message's delivery is recorded the
//!    instant it arrives, but its receive overhead re-enters the queue as a
//!    fresh band-1 event, so it loses same-instant ties against claims
//!    scheduled before the message landed. Likewise a parked claim woken by
//!    a node release re-enters with a fresh sequence number.
//! 4. **FIFO per node.** Claims finding a node busy park in that node's
//!    FIFO queue; every completed activity schedules a wake at its end
//!    which re-injects exactly one parked waiter (stale wakes — the node
//!    was re-claimed at the same instant — are dropped, because the
//!    claimant scheduled its own). Event count thus stays linear in the
//!    activity count even on a saturated node.
//!
//! The rule is pinned by an executable specification: the pre-unification
//! flat loop survives as a `#[cfg(test)]` reference in `sessions.rs`, and a
//! property test replays random contended traffic through both.

use crate::sessions::SessionRuntime;
use hnow_model::{NetParams, NodeSpec, Time};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A discrete event of the occupancy simulation. "Claim" events ([`Send`],
/// [`Recv`]) ask for node time and park in the node's FIFO wait queue while
/// it is busy.
///
/// [`Send`]: KernelEvent::Send
/// [`Recv`]: KernelEvent::Recv
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum KernelEvent {
    /// The session's tree node `local` wants to start its `child`-th send.
    Send { local: usize, child: usize },
    /// The message reaches tree node `local` (records delivery, then
    /// re-queues the receive claim per tie-break rule 3).
    Arrive { local: usize },
    /// Tree node `local` wants to start its receiving overhead.
    Recv { local: usize },
    /// The node finished an activity; wake its next parked waiter.
    Free { node: usize },
}

/// Heap entry: `(time, band, seq, session slot, event)`. Only the first
/// three fields ever decide an ordering — `seq` is unique within a band —
/// but the trailing fields must still be `Ord` for the tuple.
type HeapItem = Reverse<(Time, u8, u64, usize, KernelEvent)>;

/// Per-node state carried across epoch-synchronous kernel runs: the busy
/// time accumulated by this run (the utilization numerator) and each
/// node's busy horizon at the end of it (the next epoch's carry-in).
pub(crate) struct CarryOut {
    pub(crate) busy_time: Vec<u64>,
    pub(crate) busy_until: Vec<Time>,
}

/// Runs every session to completion against shared per-node busy state and
/// returns the accumulated busy time per node (the utilization numerator).
///
/// `specs` defines the node id space: `node_map` entries in `sessions`
/// index into it. The flat engine passes the whole pool; the sharded
/// cluster passes one contact component's nodes compacted to a dense range.
/// `sessions` must be in request order — the slice position is the
/// tie-break identity of rule 1, so two callers handing the kernel the same
/// sessions in the same order get byte-identical outcomes regardless of how
/// the surrounding work was partitioned or threaded.
pub(crate) fn simulate(
    specs: &[NodeSpec],
    net: NetParams,
    sessions: &mut [SessionRuntime],
) -> Vec<u64> {
    let idle = vec![Time::ZERO; specs.len()];
    simulate_from(specs, net, sessions, &idle).busy_time
}

/// [`simulate`] with carried-in busy state: `busy0[node]` is the node's
/// busy horizon at the start of this run (the control loop's
/// epoch-synchronous carry). Each carried-busy node gets one initial
/// band-1 `Free` wake at its horizon — before any injection, in ascending
/// node order — so claims parking behind carried work are woken exactly
/// like claims parking behind this run's own activities. An all-`ZERO`
/// carry reproduces [`simulate`] event for event.
pub(crate) fn simulate_from(
    specs: &[NodeSpec],
    net: NetParams,
    sessions: &mut [SessionRuntime],
    busy0: &[Time],
) -> CarryOut {
    let n = specs.len();
    debug_assert_eq!(busy0.len(), n);
    let mut busy_until = busy0.to_vec();
    let mut busy_time = vec![0u64; n];
    let mut waiting: Vec<VecDeque<(usize, KernelEvent)>> = vec![VecDeque::new(); n];
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    let mut seq = 0u64;

    // Lazy injection order: by arrival, ties by slot (= request order).
    let mut order: Vec<usize> = (0..sessions.len()).collect();
    order.sort_by_key(|&slot| (sessions[slot].arrival, slot));
    let mut next_inject = 0usize;

    macro_rules! push {
        ($time:expr, $slot:expr, $event:expr) => {{
            heap.push(Reverse(($time, 1u8, seq, $slot, $event)));
            seq += 1;
        }};
    }

    // Arm one wake per carried-busy node (the slot field is meaningless
    // for Free events).
    for (node, &until) in busy_until.iter().enumerate() {
        if until > Time::ZERO {
            push!(until, 0, KernelEvent::Free { node });
        }
    }

    loop {
        // Admit sessions whose arrival is due. Popped times are
        // nondecreasing and `order` ascends by arrival, so every arrival
        // ≤ the current front is injected before anything at that instant
        // executes; band 0 then lets it open first (rule 1).
        while next_inject < order.len() {
            let slot = order[next_inject];
            let arrival = sessions[slot].arrival;
            let due = match heap.peek() {
                Some(Reverse((t, ..))) => arrival <= *t,
                None => true,
            };
            if !due {
                break;
            }
            if !sessions[slot].children[0].is_empty() {
                heap.push(Reverse((
                    arrival,
                    0u8,
                    next_inject as u64,
                    slot,
                    KernelEvent::Send { local: 0, child: 0 },
                )));
            }
            next_inject += 1;
        }
        let Some(Reverse((t, _, _, slot, event))) = heap.pop() else {
            break;
        };

        if let KernelEvent::Free { node } = event {
            // Obsolete when a same-instant event already re-claimed the
            // node; the claimant scheduled its own wake (rule 4).
            if busy_until[node] <= t {
                if let Some((waiter, parked)) = waiting[node].pop_front() {
                    push!(t, waiter, parked);
                }
            }
            continue;
        }

        let session = &mut sessions[slot];
        // A popped claim always belongs to a live session: a session can
        // only abandon at its first-ever claim (`started` is still `None`),
        // and until that claim executes it is the session's *only* event —
        // nothing else of the session is in the heap or parked, and the
        // abandon path schedules nothing. So no event of an abandoned
        // session can surface here. Checked rather than silently skipped:
        // were this reachable, a popped claim on a free node would have to
        // pass the node to the next parked waiter or risk starvation.
        debug_assert!(
            !session.abandoned,
            "event popped for abandoned session in slot {slot}"
        );
        if session.abandoned {
            continue;
        }
        match event {
            KernelEvent::Send { local, child } => {
                let node = session.node_map[local];
                if busy_until[node] > t {
                    waiting[node].push_back((slot, event));
                    continue;
                }
                if session.started.is_none() {
                    // First activity of the session: the churn gate.
                    if session.deadline.is_some_and(|d| t > d) {
                        session.abandoned = true;
                        // The session declined a free node; pass it on so
                        // parked waiters never starve (no wake is pending
                        // for this idle node).
                        if let Some((waiter, parked)) = waiting[node].pop_front() {
                            push!(t, waiter, parked);
                        }
                        continue;
                    }
                    session.started = Some(t);
                }
                let dur = specs[node].send();
                let end = t + dur;
                busy_until[node] = end;
                busy_time[node] += dur.raw();
                let target = session.children[local][child];
                push!(
                    end + net.latency(),
                    slot,
                    KernelEvent::Arrive { local: target }
                );
                if child + 1 < session.children[local].len() {
                    push!(
                        end,
                        slot,
                        KernelEvent::Send {
                            local,
                            child: child + 1,
                        }
                    );
                }
                push!(end, slot, KernelEvent::Free { node });
            }
            KernelEvent::Arrive { local } => {
                // Delivery is the message hitting the node, busy or not;
                // the receive overhead queues for node time separately
                // (rule 3).
                session.delivered_at = session.delivered_at.max(t);
                push!(t, slot, KernelEvent::Recv { local });
            }
            KernelEvent::Recv { local } => {
                let node = session.node_map[local];
                if busy_until[node] > t {
                    waiting[node].push_back((slot, event));
                    continue;
                }
                let dur = specs[node].recv();
                let end = t + dur;
                busy_until[node] = end;
                busy_time[node] += dur.raw();
                session.pending -= 1;
                session.completed_at = session.completed_at.max(end);
                if !session.children[local].is_empty() {
                    push!(end, slot, KernelEvent::Send { local, child: 0 });
                }
                push!(end, slot, KernelEvent::Free { node });
            }
            KernelEvent::Free { .. } => unreachable!("handled before the session borrow"),
        }
    }
    debug_assert!(sessions
        .iter()
        .all(|session| session.abandoned || session.pending == 0));
    CarryOut {
        busy_time,
        busy_until,
    }
}
